//! The simulated host fleet and its per-tick step function.
//!
//! A [`World`] holds one monitored service's hosts in one region (the
//! drill scope: Coldstorage egress of a selected region, §6) plus the
//! shared bottleneck. Each tick it:
//!
//! 1. computes per-host offered load from the service's traffic pattern;
//! 2. splits offered load into conforming / non-conforming according to
//!    the current [`MarkingCommand`] (host-based or flow-based, §5.3);
//! 3. pushes both classes through the [`Bottleneck`];
//! 4. models TCP send-rate adaptation: hosts *send* roughly what the
//!    network delivers (plus retransmit overhead), which is exactly the
//!    feedback loop that makes stateless metering oscillate (§7.4);
//! 5. returns an [`Observation`] for the enforcement layer.

use crate::fabric::{Bottleneck, FabricOutcome};
use crate::tcp::{TcpConfig, TcpTickStats};
use entitlement_core::{DetRng, Rate};
use entitlement_workload::TrafficPattern;
use serde::{Deserialize, Serialize};

/// What the enforcement layer tells the fleet to mark this tick.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MarkingCommand {
    /// Nothing is remarked (enforcement off).
    None,
    /// Host-based remarking (§5.3, production default): the listed hosts
    /// remark *all* their matching traffic.
    HostBased {
        /// `marked[i]` — host `i` is in the non-conforming group.
        marked: Vec<bool>,
    },
    /// Flow-based remarking: every host remarks the flows whose group id
    /// falls in the marked set.
    FlowBased {
        /// `marked[g]` — flow group `g` (0..100) is non-conforming.
        marked_groups: Vec<bool>,
    },
}

impl MarkingCommand {
    /// The fraction of a uniform traffic spread this command remarks.
    pub fn marked_fraction(&self, hosts: usize) -> f64 {
        match self {
            MarkingCommand::None => 0.0,
            MarkingCommand::HostBased { marked } => {
                if hosts == 0 {
                    0.0
                } else {
                    marked.iter().filter(|&&m| m).count() as f64 / hosts as f64
                }
            }
            MarkingCommand::FlowBased { marked_groups } => {
                if marked_groups.is_empty() {
                    0.0
                } else {
                    marked_groups.iter().filter(|&&m| m).count() as f64
                        / marked_groups.len() as f64
                }
            }
        }
    }
}

/// Fleet configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of hosts running the monitored service.
    pub hosts: usize,
    /// Aggregate offered load at pattern factor 1.0.
    pub base_rate: Rate,
    /// The service's time-of-day shape.
    pub pattern: TrafficPattern,
    /// Per-host lognormal sigma of load imbalance.
    pub host_imbalance_sigma: f64,
    /// New TCP connection attempts per host per second.
    pub conn_rate_per_host: f64,
    /// Tick length in seconds.
    pub dt_secs: f64,
    /// TCP model.
    pub tcp: TcpConfig,
    /// Retransmit overhead factor: sent ≈ delivered × (1 + overhead×loss).
    pub retransmit_overhead: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            hosts: 1000,
            base_rate: Rate::tbps(2.0),
            pattern: TrafficPattern::Flat,
            host_imbalance_sigma: 0.2,
            conn_rate_per_host: 2.0,
            dt_secs: 10.0,
            tcp: TcpConfig::default(),
            retransmit_overhead: 0.05,
            seed: 0x5137,
        }
    }
}

/// What the enforcement agents observe after a tick (their inputs are
/// host-measured rates, not ground truth).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Observation {
    /// Tick time, seconds.
    pub t_secs: f64,
    /// Aggregate rate the hosts *sent* this tick (what agents meter).
    pub total_sent: Rate,
    /// Sent rate of traffic currently marked conforming.
    pub conf_sent: Rate,
    /// Sent rate of traffic currently marked non-conforming.
    pub nonconf_sent: Rate,
    /// Offered (demand) rate before network feedback.
    pub offered: Rate,
    /// What the fabric did.
    pub fabric: FabricOutcome,
    /// TCP stats of the conforming slice.
    pub tcp_conf: TcpTickStats,
    /// TCP stats of the non-conforming slice.
    pub tcp_nonconf: TcpTickStats,
    /// Per-host sent rates (for host-level metering/debugging).
    pub per_host_sent: Vec<Rate>,
}

/// The simulated fleet plus bottleneck.
pub struct World {
    config: WorldConfig,
    /// Per-host share of the aggregate load (sums to 1).
    host_weights: Vec<f64>,
    /// Per-host flow-group membership counts (how much of a host's
    /// traffic each of the 100 groups carries — uniform here).
    bottleneck: Bottleneck,
    /// Loss seen by each class last tick (TCP feedback state).
    last_conf_loss: f64,
    last_nonconf_loss: f64,
    rng: DetRng,
    /// Demand multiplier hook (incident injection).
    demand_multiplier: Box<dyn Fn(f64) -> f64 + Send>,
}

impl World {
    /// Build a world over a bottleneck.
    pub fn new(config: WorldConfig, bottleneck: Bottleneck) -> Self {
        let mut rng = DetRng::new(config.seed);
        let mut weights: Vec<f64> = (0..config.hosts)
            .map(|_| rng.lognormal(0.0, config.host_imbalance_sigma))
            .collect();
        let sum: f64 = weights.iter().sum();
        weights.iter_mut().for_each(|w| *w /= sum);
        World {
            config,
            host_weights: weights,
            bottleneck,
            last_conf_loss: 0.0,
            last_nonconf_loss: 0.0,
            rng,
            demand_multiplier: Box::new(|_| 1.0),
        }
    }

    /// Install a demand multiplier (e.g. an incident) applied on top of
    /// the traffic pattern.
    pub fn set_demand_multiplier(&mut self, f: impl Fn(f64) -> f64 + Send + 'static) {
        self.demand_multiplier = Box::new(f);
    }

    /// Mutable access to the bottleneck (drill harness installs ACLs and
    /// changes capacity mid-run).
    pub fn bottleneck_mut(&mut self) -> &mut Bottleneck {
        &mut self.bottleneck
    }

    /// The configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Advance one tick under the given marking.
    pub fn step(&mut self, t_secs: f64, marking: &MarkingCommand) -> Observation {
        let cfg = &self.config;
        let demand_factor =
            cfg.pattern.factor_at(t_secs) * (self.demand_multiplier)(t_secs);
        let offered = cfg.base_rate * demand_factor;

        // Per-host offered with a little per-tick jitter.
        let per_host_offered: Vec<Rate> = self
            .host_weights
            .iter()
            .map(|&w| offered * w * self.rng.range(0.97, 1.03))
            .collect();

        // Split into conforming / non-conforming demand by marking.
        let (mut conf_demand, mut nonconf_demand) = (Rate::ZERO, Rate::ZERO);
        let mut per_host_marked_fraction = vec![0.0; cfg.hosts];
        match marking {
            MarkingCommand::None => {
                conf_demand = per_host_offered.iter().copied().sum();
            }
            MarkingCommand::HostBased { marked } => {
                for (i, &r) in per_host_offered.iter().enumerate() {
                    if marked.get(i).copied().unwrap_or(false) {
                        nonconf_demand += r;
                        per_host_marked_fraction[i] = 1.0;
                    } else {
                        conf_demand += r;
                    }
                }
            }
            MarkingCommand::FlowBased { marked_groups } => {
                let frac = marking.marked_fraction(cfg.hosts);
                for (i, &r) in per_host_offered.iter().enumerate() {
                    nonconf_demand += r * frac;
                    conf_demand += r * (1.0 - frac);
                    per_host_marked_fraction[i] = frac;
                }
                let _ = marked_groups;
            }
        }

        // TCP send-rate feedback: senders throttle toward what the network
        // delivered last tick, but never fully stop — connections keep
        // probing at a small floor rate, which is also how they detect
        // recovery when drops clear.
        const PROBE_FLOOR: f64 = 0.02;
        let throttle = |loss: f64| (1.0 - loss).max(PROBE_FLOOR) * (1.0 + cfg.retransmit_overhead * loss);
        let conf_throttle = throttle(self.last_conf_loss);
        let nonconf_throttle = throttle(self.last_nonconf_loss);
        let conf_sent = conf_demand * conf_throttle;
        let nonconf_sent = nonconf_demand * nonconf_throttle;

        let fabric = self.bottleneck.serve(t_secs, conf_sent, nonconf_sent);
        self.last_conf_loss = fabric.conf_loss;
        self.last_nonconf_loss = fabric.nonconf_loss;

        // TCP connection stats.
        let attempts = cfg.conn_rate_per_host * cfg.hosts as f64 * cfg.dt_secs;
        let marked_frac = marking.marked_fraction(cfg.hosts);
        let tcp_conf = cfg
            .tcp
            .connect_stats(attempts * (1.0 - marked_frac), fabric.conf_loss);
        let tcp_nonconf = cfg
            .tcp
            .connect_stats(attempts * marked_frac, fabric.nonconf_loss);

        // Per-host *sent* rates (what agents meter locally). These must
        // apply the same previous-tick throttle the aggregate used, so
        // that they sum exactly to `total_sent`; `last_*_loss` has
        // already been overwritten with this tick's result by now.
        let per_host_sent: Vec<Rate> = per_host_offered
            .iter()
            .zip(&per_host_marked_fraction)
            .map(|(&r, &mf)| {
                let conf_part = r * (1.0 - mf) * conf_throttle;
                let nonconf_part = r * mf * nonconf_throttle;
                conf_part + nonconf_part
            })
            .collect();

        Observation {
            t_secs,
            total_sent: conf_sent + nonconf_sent,
            conf_sent,
            nonconf_sent,
            offered,
            fabric,
            tcp_conf,
            tcp_nonconf,
            per_host_sent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(cap_t: f64) -> World {
        World::new(
            WorldConfig {
                hosts: 100,
                base_rate: Rate::tbps(2.0),
                dt_secs: 10.0,
                ..Default::default()
            },
            Bottleneck {
                capacity: Rate::tbps(cap_t),
                ..Default::default()
            },
        )
    }

    #[test]
    fn unmarked_uncongested_sends_offered() {
        let mut w = world(10.0);
        let obs = w.step(0.0, &MarkingCommand::None);
        assert!((obs.total_sent.as_tbps() - 2.0).abs() < 0.05);
        assert_eq!(obs.fabric.conf_loss, 0.0);
        assert_eq!(obs.nonconf_sent, Rate::ZERO);
        assert_eq!(obs.per_host_sent.len(), 100);
    }

    #[test]
    fn host_marking_splits_traffic() {
        let mut w = world(10.0);
        // Mark half the hosts.
        let marked: Vec<bool> = (0..100).map(|i| i < 50).collect();
        let obs = w.step(0.0, &MarkingCommand::HostBased { marked });
        let frac = obs.nonconf_sent.as_bps() / obs.total_sent.as_bps();
        // Host weights are lognormal, so ~half ± imbalance.
        assert!((0.3..0.7).contains(&frac), "marked fraction {frac}");
    }

    #[test]
    fn flow_marking_is_exact_fraction() {
        let mut w = world(10.0);
        let marked_groups: Vec<bool> = (0..100).map(|g| g < 20).collect();
        let obs = w.step(0.0, &MarkingCommand::FlowBased { marked_groups });
        let frac = obs.nonconf_sent.as_bps() / obs.total_sent.as_bps();
        assert!((frac - 0.2).abs() < 1e-9, "flow marking is uniform: {frac}");
    }

    #[test]
    fn tcp_backoff_reduces_sent_rate_under_loss() {
        let mut w = world(1.0); // 1T capacity, 2T demand
        let obs1 = w.step(0.0, &MarkingCommand::None);
        // First tick: no feedback yet, conforming overflows.
        assert!(obs1.fabric.conf_loss > 0.0);
        let obs2 = w.step(10.0, &MarkingCommand::None);
        assert!(
            obs2.total_sent.as_bps() < obs1.total_sent.as_bps(),
            "senders back off after loss"
        );
    }

    #[test]
    fn demand_multiplier_injects_incident() {
        let mut w = world(10.0);
        w.set_demand_multiplier(|t| if t > 100.0 { 1.5 } else { 1.0 });
        let before = w.step(0.0, &MarkingCommand::None);
        let after = w.step(200.0, &MarkingCommand::None);
        let ratio = after.offered.as_bps() / before.offered.as_bps();
        assert!((ratio - 1.5).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn nonconforming_drops_do_not_touch_conforming() {
        let mut w = world(10.0);
        w.bottleneck_mut().acls.push(crate::fabric::AclRule {
            from_secs: 0.0,
            to_secs: 1e9,
            drop_fraction: 1.0,
        });
        let marked: Vec<bool> = (0..100).map(|i| i < 30).collect();
        let mut obs = None;
        for k in 0..5 {
            obs = Some(w.step(k as f64 * 10.0, &MarkingCommand::HostBased {
                marked: marked.clone(),
            }));
        }
        let obs = obs.unwrap();
        assert_eq!(obs.fabric.conf_loss, 0.0);
        assert_eq!(obs.fabric.nonconf_loss, 1.0);
        // Non-conforming senders have collapsed to ~zero.
        assert!(obs.nonconf_sent.as_bps() < 0.01 * obs.total_sent.as_bps());
    }

    #[test]
    fn deterministic_with_seed() {
        let run = || {
            let mut w = world(10.0);
            (0..10)
                .map(|k| w.step(k as f64 * 10.0, &MarkingCommand::None).total_sent.as_bps())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
