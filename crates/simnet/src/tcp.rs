//! Statistical TCP behavior under loss.
//!
//! The drill collects "TCP stats (e.g., number of SYN/FIN/RST packets)"
//! (§6); Fig 14 shows SYN counts rising for non-conforming traffic as the
//! drop percentage grows. We model the per-tick aggregate over a pool of
//! connections: expected SYN (re)transmissions, connection successes and
//! failures, FIN/RST volumes, and latency inflation of transfers.

use serde::{Deserialize, Serialize};

/// TCP model parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum SYN transmissions per connection attempt (1 + retries).
    pub syn_attempts: u32,
    /// SYN retransmission timeout in seconds (compounds per retry).
    pub syn_timeout_secs: f64,
    /// Retransmission timeout penalty applied to transfers, seconds.
    pub rto_secs: f64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            syn_attempts: 4,
            syn_timeout_secs: 1.0,
            rto_secs: 0.2,
        }
    }
}

/// Aggregate TCP activity of one tick for one traffic slice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TcpTickStats {
    /// SYN packets sent (including retransmissions).
    pub syn_sent: f64,
    /// Connections successfully established.
    pub established: f64,
    /// Connection attempts that exhausted their retries.
    pub failed: f64,
    /// Expected connect latency of the *successful* attempts, seconds.
    pub connect_latency_secs: f64,
    /// FIN packets (graceful closes — equal to established on average).
    pub fin_sent: f64,
    /// RST packets (failed/aborted attempts emit resets).
    pub rst_sent: f64,
}

impl TcpConfig {
    /// Statistics for `attempts` new connection attempts under packet
    /// loss `p` (applied independently per SYN; the SYN/ACK return path
    /// is assumed to share fate, which is accurate for symmetric
    /// remarking).
    pub fn connect_stats(&self, attempts: f64, p: f64) -> TcpTickStats {
        let p = p.clamp(0.0, 1.0);
        let q = 1.0 - p;
        let k = self.syn_attempts;

        // Expected SYNs per attempt: sum over tries until success or
        // exhaustion = (1 - p^k) / (1 - p) for p < 1, else k.
        let expected_syn = if p >= 1.0 {
            k as f64
        } else if p <= 0.0 {
            1.0
        } else {
            (1.0 - p.powi(k as i32)) / (1.0 - p)
        };
        // Success probability within k attempts.
        let p_success = 1.0 - p.powi(k as i32);

        // Expected latency of successful attempts: geometric over tries,
        // each failed try costs an exponentially backed-off timeout.
        let mut lat_num = 0.0;
        let mut prob_mass = 0.0;
        let mut wait = 0.0;
        for i in 0..k {
            let p_this = p.powi(i as i32) * q; // fail i times then succeed
            lat_num += p_this * wait;
            prob_mass += p_this;
            wait += self.syn_timeout_secs * 2f64.powi(i as i32);
        }
        let connect_latency_secs = if prob_mass > 0.0 {
            lat_num / prob_mass
        } else {
            f64::NAN
        };

        let established = attempts * p_success;
        let failed = attempts - established;
        TcpTickStats {
            syn_sent: attempts * expected_syn,
            established,
            failed,
            connect_latency_secs,
            fin_sent: established,
            rst_sent: failed,
        }
    }

    /// Latency multiplier for a bulk transfer under loss `p`: each lost
    /// segment costs an RTO; goodput roughly scales with `1/sqrt(p)`
    /// (Mathis), which we fold into a bounded slowdown factor.
    pub fn transfer_slowdown(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 0.999);
        if p <= 0.0 {
            return 1.0;
        }
        // Mathis-style: throughput ∝ 1/sqrt(p) relative to a 1% baseline,
        // so slowdown = sqrt(p / 0.0001) clamped to keep the model sane.
        (1.0 + (p / 1e-4).sqrt() * 0.1).min(60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_single_syn() {
        let s = TcpConfig::default().connect_stats(100.0, 0.0);
        assert!((s.syn_sent - 100.0).abs() < 1e-9);
        assert!((s.established - 100.0).abs() < 1e-9);
        assert_eq!(s.failed, 0.0);
        assert_eq!(s.connect_latency_secs, 0.0);
        assert!((s.fin_sent - 100.0).abs() < 1e-9);
        assert_eq!(s.rst_sent, 0.0);
    }

    #[test]
    fn syn_count_grows_with_loss() {
        let cfg = TcpConfig::default();
        let mut prev = 0.0;
        for p in [0.0, 0.125, 0.5, 0.9] {
            let s = cfg.connect_stats(100.0, p);
            assert!(s.syn_sent > prev, "p={p}: {} !> {prev}", s.syn_sent);
            prev = s.syn_sent;
        }
    }

    #[test]
    fn full_loss_fails_everything_with_max_syns() {
        let cfg = TcpConfig::default();
        let s = cfg.connect_stats(10.0, 1.0);
        assert!((s.syn_sent - 40.0).abs() < 1e-9, "4 SYNs per attempt");
        assert_eq!(s.established, 0.0);
        assert!((s.failed - 10.0).abs() < 1e-9);
        assert!((s.rst_sent - 10.0).abs() < 1e-9);
        assert!(s.connect_latency_secs.is_nan(), "no successes to measure");
    }

    #[test]
    fn connect_latency_grows_with_loss() {
        let cfg = TcpConfig::default();
        let lo = cfg.connect_stats(1.0, 0.1).connect_latency_secs;
        let hi = cfg.connect_stats(1.0, 0.6).connect_latency_secs;
        assert!(hi > lo, "{hi} vs {lo}");
        assert!(lo >= 0.0);
    }

    #[test]
    fn transfer_slowdown_monotone_and_bounded() {
        let cfg = TcpConfig::default();
        assert_eq!(cfg.transfer_slowdown(0.0), 1.0);
        let mut prev = 1.0;
        for p in [0.001, 0.01, 0.125, 0.5, 0.9] {
            let s = cfg.transfer_slowdown(p);
            assert!(s >= prev, "p={p}");
            prev = s;
        }
        assert!(cfg.transfer_slowdown(0.999) <= 60.0);
    }

    #[test]
    fn probabilities_conserve_attempts() {
        let cfg = TcpConfig::default();
        for p in [0.0, 0.3, 0.7, 1.0] {
            let s = cfg.connect_stats(42.0, p);
            assert!((s.established + s.failed - 42.0).abs() < 1e-9, "p={p}");
        }
    }
}
