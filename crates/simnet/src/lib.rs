//! # entitlement-simnet
//!
//! A deterministic, tick-based network simulator for the runtime
//! enforcement experiments — the substrate standing in for Meta's
//! production hosts, switches, and the Coldstorage application in the
//! paper's end-to-end drill test (§6, Figs 11–17) and the misbehaving-
//! service incidents (§2.2, Figs 4–5).
//!
//! Fidelity level: fluid rates per host with statistical TCP-connection
//! bookkeeping. Packet-level simulation at O(100 Tbps) is neither
//! feasible nor needed — every metric the paper reports (loss ratio per
//! conformance class, rates, RTT, SYN counts, application latency, block
//! errors) is an aggregate whose dynamics this level reproduces:
//!
//! * [`fabric`] — the bottleneck fabric: strict-priority DSCP queues
//!   (non-conforming traffic maps below every class, §5.1), congestion
//!   drops, M/M/1-style queueing delay, and ACL rules that drop a
//!   configured share of non-conforming traffic (the drill's congestion
//!   mimic);
//! * [`tcp`] — statistical per-tick TCP behavior: SYN retries under
//!   loss, connection failures, goodput/latency inflation;
//! * [`world`] — the simulated host fleet: per-host offered load from a
//!   service's traffic pattern, conformance marking state (host-based or
//!   flow-based, §5.3), and the per-tick step function that produces an
//!   observation for the enforcement layer;
//! * [`app`] — the Coldstorage-like application: reads with host
//!   failover (the mechanism behind Fig 15's latency *drop* at 100%
//!   loss) and sticky write sessions with block errors (Figs 16–17);
//! * [`timeseries`] — a metric recorder shared by all experiments.
//!
//! Enforcement logic is deliberately *not* in this crate: the world
//! exposes [`world::Observation`] and [`world::MarkingCommand`] so the
//! `entitlement-enforcement` crate can drive it, exactly like agents
//! drive kernels in production.

#![forbid(unsafe_code)]

pub mod app;
pub mod fabric;
pub mod netfluid;
pub mod packetsim;
pub mod tcp;
pub mod timeseries;
pub mod world;

pub use app::{AppConfig, AppMetrics, StorageApp};
pub use fabric::{AclRule, Bottleneck, FabricOutcome};
pub use netfluid::{NetTick, NetWorld, NetWorldConfig, ServiceFlow};
pub use packetsim::{simulate_port, PacketSource, PortConfig, PortOutcome};
pub use tcp::{TcpConfig, TcpTickStats};
pub use timeseries::Recorder;
pub use world::{MarkingCommand, Observation, World, WorldConfig};
