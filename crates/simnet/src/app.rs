//! The Coldstorage-like storage application model (paper §6.2).
//!
//! Coldstorage's ingress is uploads (writes), egress is restores (reads).
//! The drill observed, and this model reproduces:
//!
//! * **Read latency** grows with the non-conforming drop rate, then
//!   *falls drastically at 100%*: fully-blackholed hosts never establish
//!   TCP connections, so clients fail over fast to healthy hosts —
//!   possible only because remarking is host-granular (§5.3);
//! * **Write latency** is severely impacted even at small loss because
//!   writes are stateful and sessions take time to move away from
//!   affected hosts;
//! * **Block errors** peak when connections cannot be established at all
//!   (correlating with SYN failures).

use crate::tcp::TcpConfig;
use serde::{Deserialize, Serialize};

/// Application model parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppConfig {
    /// Baseline read (restore) service time, seconds.
    pub base_read_secs: f64,
    /// Baseline write (upload) service time, seconds.
    pub base_write_secs: f64,
    /// Read requests per tick.
    pub reads_per_tick: f64,
    /// Write operations per tick.
    pub writes_per_tick: f64,
    /// Fraction of sticky write sessions that migrate off unhealthy
    /// hosts per tick (writes move slowly — §6.2).
    pub write_migration_rate: f64,
    /// Fraction of read retries that land on a healthy host (reads
    /// rebalance instantly via the application's failover).
    pub read_failover_efficiency: f64,
    /// TCP model shared with the transport layer.
    pub tcp: TcpConfig,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            base_read_secs: 5.0,
            base_write_secs: 3.0,
            reads_per_tick: 1000.0,
            writes_per_tick: 600.0,
            write_migration_rate: 0.04,
            read_failover_efficiency: 0.95,
            tcp: TcpConfig::default(),
        }
    }
}

/// Per-tick application metrics (the Fig 15–17 series).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct AppMetrics {
    /// Mean read latency, seconds.
    pub read_latency_secs: f64,
    /// Mean write latency, seconds.
    pub write_latency_secs: f64,
    /// Block write errors this tick.
    pub block_errors: f64,
    /// Failed read requests this tick.
    pub read_failures: f64,
}

/// The storage application: tracks where sticky write sessions live.
#[derive(Clone, Debug)]
pub struct StorageApp {
    config: AppConfig,
    /// Fraction of write sessions currently on marked (unhealthy) hosts.
    write_sessions_on_marked: f64,
}

impl StorageApp {
    /// Fresh application state.
    pub fn new(config: AppConfig) -> Self {
        StorageApp {
            config,
            write_sessions_on_marked: 0.0,
        }
    }

    /// Fraction of write sessions currently pinned to marked hosts.
    pub fn sessions_on_marked(&self) -> f64 {
        self.write_sessions_on_marked
    }

    /// Advance one tick.
    ///
    /// * `marked_fraction` — share of hosts currently remarked;
    /// * `nonconf_loss` — loss ratio experienced by non-conforming
    ///   traffic (marked hosts);
    /// * `conf_loss` — loss of conforming traffic (normally ~0).
    pub fn step(&mut self, marked_fraction: f64, nonconf_loss: f64, conf_loss: f64) -> AppMetrics {
        let cfg = &self.config;
        let tcp = &cfg.tcp;
        let m = marked_fraction.clamp(0.0, 1.0);
        let p_bad = nonconf_loss.clamp(0.0, 1.0);
        let p_ok = conf_loss.clamp(0.0, 1.0);

        // ---- Reads: stateless, instant failover. -----------------------
        // A read picks a host ∝ capacity: marked with prob m.
        let healthy_read =
            tcp.connect_stats(1.0, p_ok).connect_latency_secs.max(0.0)
                + cfg.base_read_secs * tcp.transfer_slowdown(p_ok);
        // On a marked host the connection may establish (then crawl) or
        // fail entirely (then fail over to a healthy host).
        let s = tcp.connect_stats(1.0, p_bad);
        let p_established = if 1.0 - p_bad > 0.0 {
            1.0 - p_bad.powi(tcp.syn_attempts as i32)
        } else {
            0.0
        };
        // Time wasted before giving up on a dead host: full backoff chain.
        let give_up_secs: f64 = (0..tcp.syn_attempts)
            .map(|i| tcp.syn_timeout_secs * 2f64.powi(i as i32))
            .sum();
        let marked_read = if p_established > 0.0 {
            let slow_read = s.connect_latency_secs.max(0.0)
                + cfg.base_read_secs * tcp.transfer_slowdown(p_bad);
            let failed_then_failover = give_up_secs
                + cfg.read_failover_efficiency * healthy_read
                + (1.0 - cfg.read_failover_efficiency) * (give_up_secs + healthy_read);
            p_established * slow_read + (1.0 - p_established) * failed_then_failover
        } else {
            give_up_secs + healthy_read
        };
        let read_latency_secs = (1.0 - m) * healthy_read + m * marked_read;
        // Reads fail outright only if the failover also fails.
        let read_failures = cfg.reads_per_tick
            * m
            * (1.0 - p_established)
            * (1.0 - cfg.read_failover_efficiency)
            * p_bad;

        // ---- Writes: sticky sessions migrate slowly. --------------------
        // Sessions drift toward the marked share when healthy, and away
        // from marked hosts (at the slow migration rate) when those hosts
        // are hurting.
        let pain = p_bad; // how hard marked hosts are hurting
        let target = m * (1.0 - pain); // load balancer avoids hurting hosts
        let f = self.write_sessions_on_marked;
        self.write_sessions_on_marked = f + (target - f) * cfg.write_migration_rate;
        let on_marked = self.write_sessions_on_marked.clamp(0.0, 1.0);

        let healthy_write = cfg.base_write_secs * tcp.transfer_slowdown(p_ok);
        let marked_write = if p_established > 0.0 {
            cfg.base_write_secs * tcp.transfer_slowdown(p_bad)
                + s.connect_latency_secs.max(0.0)
        } else {
            // Can't even re-establish: stall until migration.
            give_up_secs + cfg.base_write_secs
        };
        let write_latency_secs = (1.0 - on_marked) * healthy_write + on_marked * marked_write;

        // Block errors: write ops on marked hosts whose connection (or
        // re-connection mid-block) fails.
        let block_errors =
            cfg.writes_per_tick * on_marked * (1.0 - p_established).max(p_bad * p_bad * 0.5);

        AppMetrics {
            read_latency_secs,
            write_latency_secs,
            block_errors,
            read_failures,
        }
    }
}

impl StorageApp {
    /// Advance one tick under *flow-based* remarking (§5.3's alternative
    /// strategy): every host remarks `marked_fraction` of its flows, so a
    /// retry lands on another non-conforming flow with the same
    /// probability — "the result may manifest as random individual flow
    /// failures" that host-failover cannot route around.
    pub fn step_flow_based(
        &mut self,
        marked_fraction: f64,
        nonconf_loss: f64,
        conf_loss: f64,
    ) -> AppMetrics {
        let cfg = self.config.clone();
        let tcp = &cfg.tcp;
        let m = marked_fraction.clamp(0.0, 1.0);
        let p_bad = nonconf_loss.clamp(0.0, 1.0);
        let p_ok = conf_loss.clamp(0.0, 1.0);

        let healthy_read = tcp.connect_stats(1.0, p_ok).connect_latency_secs.max(0.0)
            + cfg.base_read_secs * tcp.transfer_slowdown(p_ok);
        let s = tcp.connect_stats(1.0, p_bad);
        let p_established = 1.0 - p_bad.powi(tcp.syn_attempts as i32);
        let give_up_secs: f64 = (0..tcp.syn_attempts)
            .map(|i| tcp.syn_timeout_secs * 2f64.powi(i as i32))
            .sum();
        let slow_read = s.connect_latency_secs.max(0.0)
            + cfg.base_read_secs * tcp.transfer_slowdown(p_bad);

        // Up to 3 application retries; each independently draws a marked
        // flow with probability m (retrying on another host does not
        // help — the flow-group hash is what matters).
        const RETRIES: usize = 3;
        let mut read_latency = 0.0;
        let mut fail_prob = 1.0;
        let mut read_failures_prob = 0.0;
        for attempt in 0..=RETRIES {
            let p_marked_fail = m * (1.0 - p_established);
            let p_marked_slow = m * p_established;
            let p_clean = 1.0 - m;
            // This attempt succeeds (clean or slow) or wastes give_up.
            read_latency += fail_prob * (p_clean * healthy_read + p_marked_slow * slow_read);
            if attempt < RETRIES {
                read_latency += fail_prob * p_marked_fail * give_up_secs;
                fail_prob *= p_marked_fail;
            } else {
                read_failures_prob = fail_prob * p_marked_fail;
                read_latency += read_failures_prob * give_up_secs;
            }
        }

        // Writes: sessions cannot migrate away from marked *flows*; the
        // effective marked share of write operations stays at m.
        self.write_sessions_on_marked = m;
        let healthy_write = cfg.base_write_secs * tcp.transfer_slowdown(p_ok);
        let marked_write = if p_established > 0.0 {
            cfg.base_write_secs * tcp.transfer_slowdown(p_bad) + s.connect_latency_secs.max(0.0)
        } else {
            give_up_secs + cfg.base_write_secs
        };
        let write_latency_secs = (1.0 - m) * healthy_write + m * marked_write;
        let block_errors =
            cfg.writes_per_tick * m * (1.0 - p_established).max(p_bad * p_bad * 0.5);

        AppMetrics {
            read_latency_secs: read_latency,
            write_latency_secs,
            block_errors,
            read_failures: cfg.reads_per_tick * read_failures_prob,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settle(app: &mut StorageApp, m: f64, p: f64, ticks: usize) -> AppMetrics {
        let mut last = AppMetrics::default();
        for _ in 0..ticks {
            last = app.step(m, p, 0.0);
        }
        last
    }

    #[test]
    fn no_marking_is_baseline() {
        let mut app = StorageApp::new(AppConfig::default());
        let m = settle(&mut app, 0.0, 0.0, 10);
        assert!((m.read_latency_secs - 5.0).abs() < 0.1);
        assert!((m.write_latency_secs - 3.0).abs() < 0.1);
        assert_eq!(m.block_errors, 0.0);
        assert_eq!(m.read_failures, 0.0);
    }

    #[test]
    fn read_latency_rises_then_falls_at_full_drop() {
        // The Fig 15 signature.
        let cfg = AppConfig::default();
        let lat = |p: f64| {
            let mut app = StorageApp::new(cfg.clone());
            settle(&mut app, 0.3, p, 30).read_latency_secs
        };
        let l0 = lat(0.0);
        let l125 = lat(0.125);
        let l50 = lat(0.5);
        let l100 = lat(1.0);
        assert!(l125 > l0, "loss hurts: {l125} vs {l0}");
        assert!(l50 > l125, "more loss hurts more: {l50} vs {l125}");
        assert!(
            l100 < l50,
            "at 100% drop, fast failover wins: {l100} vs {l50}"
        );
        assert!(l100 > l0, "but still worse than healthy");
    }

    #[test]
    fn write_latency_severe_even_at_low_loss() {
        // The Fig 16 observation: "The impact on write latency is severe
        // even when loss rate is small."
        let cfg = AppConfig::default();
        let mut app = StorageApp::new(cfg.clone());
        // Sessions settle onto the (healthy) marked hosts first; then the
        // drill starts dropping their traffic.
        settle(&mut app, 0.3, 0.0, 100);
        let m = settle(&mut app, 0.3, 0.125, 3);
        assert!(
            m.write_latency_secs > 1.8 * cfg.base_write_secs,
            "write latency {} should be well above base",
            m.write_latency_secs
        );
    }

    #[test]
    fn write_sessions_migrate_slowly() {
        let mut app = StorageApp::new(AppConfig::default());
        // Put sessions on marked hosts.
        settle(&mut app, 0.3, 0.0, 50);
        let before = app.sessions_on_marked();
        assert!(before > 0.2, "sessions follow the marked share: {before}");
        // Now the marked hosts go fully dark; sessions should drain, but
        // not instantly.
        app.step(0.3, 1.0, 0.0);
        let after_one = app.sessions_on_marked();
        assert!(after_one > 0.15, "one tick does not drain: {after_one}");
        settle(&mut app, 0.3, 1.0, 200);
        assert!(app.sessions_on_marked() < 0.05, "eventually drains");
    }

    #[test]
    fn flow_based_reads_do_not_recover_at_full_drop() {
        // Contrast with host-based: at 100% loss, flow-based retries keep
        // drawing dead flows, so latency stays high instead of dropping.
        let cfg = AppConfig::default();
        let flow_lat = |p: f64| {
            let mut app = StorageApp::new(cfg.clone());
            let mut last = AppMetrics::default();
            for _ in 0..10 {
                last = app.step_flow_based(0.3, p, 0.0);
            }
            last.read_latency_secs
        };
        let host_lat = |p: f64| {
            let mut app = StorageApp::new(cfg.clone());
            let mut last = AppMetrics::default();
            for _ in 0..30 {
                last = app.step(0.3, p, 0.0);
            }
            last.read_latency_secs
        };
        // Host-based recovers at 100% (ratio < 1), flow-based does not
        // recover as much.
        let host_ratio = host_lat(1.0) / host_lat(0.5);
        let flow_ratio = flow_lat(1.0) / flow_lat(0.5);
        assert!(host_ratio < 1.0, "host-based recovers: {host_ratio}");
        assert!(
            flow_ratio > host_ratio,
            "flow-based {flow_ratio} worse than host-based {host_ratio}"
        );
        // Flow-based also produces outright read failures at full drop.
        let mut app = StorageApp::new(cfg);
        let m = app.step_flow_based(0.3, 1.0, 0.0);
        assert!(m.read_failures > 0.0);
    }

    #[test]
    fn block_errors_peak_with_connection_failures() {
        let cfg = AppConfig::default();
        let errs = |p: f64| {
            let mut app = StorageApp::new(cfg.clone());
            // Sessions settle on healthy marked hosts before the drops.
            settle(&mut app, 0.3, 0.0, 100);
            settle(&mut app, 0.3, p, 3).block_errors
        };
        assert!(errs(0.5) > errs(0.125));
        assert!(errs(1.0) > 0.0, "full drop still errors until migration");
        assert_eq!(errs(0.0), 0.0);
    }
}
