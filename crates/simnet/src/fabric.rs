//! The bottleneck fabric: strict-priority queues keyed by conformance,
//! congestion drops, queueing delay, and drill ACL rules.
//!
//! Production behavior being modeled (paper §5.1): endhosts only *mark*
//! packets; switches make the drop decision. The DSCP of non-conforming
//! traffic maps to the lowest-priority queue in every switch, so under
//! congestion non-conforming traffic is hit first while conforming
//! traffic rides unharmed. The September-2021 drill additionally
//! installed ACL rules dropping an increasing percentage of
//! non-conforming traffic to mimic congestion (§6).

use entitlement_core::Rate;
use serde::{Deserialize, Serialize};

/// A drill ACL rule: drop `drop_fraction` of non-conforming traffic
/// during `[from_secs, to_secs)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AclRule {
    /// Activation time.
    pub from_secs: f64,
    /// Deactivation time.
    pub to_secs: f64,
    /// Fraction of non-conforming traffic dropped, in `[0, 1]`.
    pub drop_fraction: f64,
}

impl AclRule {
    /// The drop fraction active at `t`, 0 outside the window.
    pub fn active_fraction(&self, t_secs: f64) -> f64 {
        if t_secs >= self.from_secs && t_secs < self.to_secs {
            self.drop_fraction
        } else {
            0.0
        }
    }
}

/// The shared bottleneck all monitored traffic crosses.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Bottleneck {
    /// Link capacity.
    pub capacity: Rate,
    /// Base propagation RTT in milliseconds.
    pub base_rtt_ms: f64,
    /// Maximum queueing delay a full queue adds (per direction), ms.
    pub max_queue_ms: f64,
    /// Drill ACL rules (applied to non-conforming traffic only).
    pub acls: Vec<AclRule>,
}

impl Default for Bottleneck {
    fn default() -> Self {
        Bottleneck {
            capacity: Rate::tbps(10.0),
            base_rtt_ms: 40.0,
            max_queue_ms: 20.0,
            acls: Vec::new(),
        }
    }
}

/// What the fabric did to one tick of offered traffic.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct FabricOutcome {
    /// Conforming traffic delivered.
    pub conf_delivered: Rate,
    /// Non-conforming traffic delivered.
    pub nonconf_delivered: Rate,
    /// Loss ratio of conforming traffic in `[0, 1]`.
    pub conf_loss: f64,
    /// Loss ratio of non-conforming traffic in `[0, 1]`.
    pub nonconf_loss: f64,
    /// RTT experienced by conforming traffic, ms.
    pub conf_rtt_ms: f64,
    /// RTT experienced by non-conforming traffic, ms.
    pub nonconf_rtt_ms: f64,
}

impl Bottleneck {
    /// Serve one tick of offered load.
    ///
    /// Strict priority: conforming is served first up to capacity;
    /// non-conforming gets the leftover, minus the active ACL share which
    /// is dropped before queueing (ACLs act at ingress).
    pub fn serve(&self, t_secs: f64, conf_offered: Rate, nonconf_offered: Rate) -> FabricOutcome {
        let cap = self.capacity;
        let acl_drop: f64 = self
            .acls
            .iter()
            .map(|a| a.active_fraction(t_secs))
            .fold(0.0, f64::max);

        // ACL hits non-conforming traffic at ingress.
        let nonconf_after_acl = nonconf_offered * (1.0 - acl_drop);

        // Strict priority service.
        let conf_delivered = conf_offered.min(cap);
        let leftover = (cap - conf_delivered).clamp_zero();
        let nonconf_delivered = nonconf_after_acl.min(leftover);

        let conf_loss = if conf_offered.is_zero() {
            0.0
        } else {
            1.0 - conf_delivered.ratio_of(conf_offered).min(1.0)
        };
        let nonconf_loss = if nonconf_offered.is_zero() {
            0.0
        } else {
            1.0 - nonconf_delivered.ratio_of(nonconf_offered).min(1.0)
        };

        // Queueing delay: the conforming queue sees only conforming
        // utilization; the scavenger queue drains behind everything, so
        // its delay grows with total utilization. M/M/1-style shape,
        // capped at max_queue_ms.
        let util_conf = conf_delivered.ratio_of(cap).min(0.999);
        let util_total = (conf_delivered + nonconf_delivered).ratio_of(cap).min(0.999);
        let q = |rho: f64| (self.max_queue_ms * (rho / (1.0 - rho)) / 20.0).min(self.max_queue_ms);
        let conf_rtt_ms = self.base_rtt_ms + q(util_conf);
        // Fully-dropped traffic has no RTT to speak of; report base RTT
        // for delivered packets only.
        let nonconf_rtt_ms = if nonconf_delivered.is_zero() {
            f64::NAN
        } else {
            self.base_rtt_ms + q(util_total)
        };

        FabricOutcome {
            conf_delivered,
            nonconf_delivered,
            conf_loss: conf_loss.clamp(0.0, 1.0),
            nonconf_loss: nonconf_loss.clamp(0.0, 1.0),
            conf_rtt_ms,
            nonconf_rtt_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bn(cap_g: f64) -> Bottleneck {
        Bottleneck {
            capacity: Rate::gbps(cap_g),
            ..Default::default()
        }
    }

    #[test]
    fn uncongested_delivers_everything() {
        let out = bn(100.0).serve(0.0, Rate::gbps(40.0), Rate::gbps(30.0));
        assert_eq!(out.conf_loss, 0.0);
        assert_eq!(out.nonconf_loss, 0.0);
        assert!((out.conf_delivered.as_gbps() - 40.0).abs() < 1e-9);
        assert!((out.nonconf_delivered.as_gbps() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn congestion_hits_nonconforming_first() {
        // 100G capacity: 80G conforming + 50G non-conforming offered.
        let out = bn(100.0).serve(0.0, Rate::gbps(80.0), Rate::gbps(50.0));
        assert_eq!(out.conf_loss, 0.0, "conforming rides unharmed");
        assert!((out.nonconf_delivered.as_gbps() - 20.0).abs() < 1e-9);
        assert!((out.nonconf_loss - 0.6).abs() < 1e-9);
    }

    #[test]
    fn conforming_only_lost_when_it_alone_exceeds_capacity() {
        let out = bn(100.0).serve(0.0, Rate::gbps(120.0), Rate::gbps(10.0));
        assert!((out.conf_loss - 1.0 / 6.0).abs() < 1e-9);
        assert_eq!(out.nonconf_delivered, Rate::ZERO);
        assert_eq!(out.nonconf_loss, 1.0);
    }

    #[test]
    fn acl_drops_apply_only_in_window() {
        let mut b = bn(1000.0);
        b.acls.push(AclRule {
            from_secs: 100.0,
            to_secs: 200.0,
            drop_fraction: 0.5,
        });
        let before = b.serve(50.0, Rate::gbps(10.0), Rate::gbps(100.0));
        assert_eq!(before.nonconf_loss, 0.0);
        let during = b.serve(150.0, Rate::gbps(10.0), Rate::gbps(100.0));
        assert!((during.nonconf_loss - 0.5).abs() < 1e-9);
        assert_eq!(during.conf_loss, 0.0, "ACL never touches conforming");
        let after = b.serve(250.0, Rate::gbps(10.0), Rate::gbps(100.0));
        assert_eq!(after.nonconf_loss, 0.0);
    }

    #[test]
    fn full_acl_blackholes_nonconforming() {
        let mut b = bn(1000.0);
        b.acls.push(AclRule {
            from_secs: 0.0,
            to_secs: 10.0,
            drop_fraction: 1.0,
        });
        let out = b.serve(5.0, Rate::gbps(10.0), Rate::gbps(100.0));
        assert_eq!(out.nonconf_loss, 1.0);
        assert!(out.nonconf_rtt_ms.is_nan(), "no delivered packets, no RTT");
    }

    #[test]
    fn rtt_grows_with_utilization_for_scavenger_queue() {
        let b = bn(100.0);
        let light = b.serve(0.0, Rate::gbps(10.0), Rate::gbps(10.0));
        let heavy = b.serve(0.0, Rate::gbps(70.0), Rate::gbps(40.0));
        assert!(heavy.nonconf_rtt_ms > light.nonconf_rtt_ms);
        // Conforming RTT barely moves while it has headroom.
        assert!(heavy.conf_rtt_ms - light.conf_rtt_ms < 5.0);
        assert!(heavy.conf_rtt_ms >= b.base_rtt_ms);
    }

    #[test]
    fn zero_offered_is_all_zero() {
        let out = bn(100.0).serve(0.0, Rate::ZERO, Rate::ZERO);
        assert_eq!(out.conf_loss, 0.0);
        assert_eq!(out.nonconf_loss, 0.0);
        assert_eq!(out.conf_delivered, Rate::ZERO);
    }
}
