//! Metric recording for simulation runs.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A named collection of time series sampled on the simulation ticks.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Recorder {
    /// Tick timestamps in seconds.
    pub times: Vec<f64>,
    series: BTreeMap<String, Vec<f64>>,
}

impl Recorder {
    /// Fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a new tick at `t_secs`. All series written this tick belong
    /// to this timestamp; series not written get NaN backfill on read.
    pub fn tick(&mut self, t_secs: f64) {
        self.times.push(t_secs);
    }

    /// Record a value for `name` at the current tick.
    pub fn record(&mut self, name: &str, value: f64) {
        let n = self.times.len();
        assert!(n > 0, "record before first tick");
        let series = self.series.entry(name.to_string()).or_default();
        // Backfill missed ticks with NaN so indices align.
        while series.len() + 1 < n {
            series.push(f64::NAN);
        }
        if series.len() < n {
            series.push(value);
        } else {
            // Overwrite within the same tick (last write wins).
            *series.last_mut().unwrap() = value;
        }
    }

    /// A recorded series, NaN-padded to the tick count.
    pub fn series(&self, name: &str) -> Vec<f64> {
        let mut v = self.series.get(name).cloned().unwrap_or_default();
        while v.len() < self.times.len() {
            v.push(f64::NAN);
        }
        v
    }

    /// All series names.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Number of ticks recorded.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Mean of a series over a time window `[from, to)`, ignoring NaN.
    pub fn window_mean(&self, name: &str, from_secs: f64, to_secs: f64) -> f64 {
        let s = self.series(name);
        let vals: Vec<f64> = self
            .times
            .iter()
            .zip(&s)
            .filter(|(&t, &v)| t >= from_secs && t < to_secs && !v.is_nan())
            .map(|(_, &v)| v)
            .collect();
        entitlement_core::stats::mean(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_aligned_series() {
        let mut r = Recorder::new();
        r.tick(0.0);
        r.record("a", 1.0);
        r.tick(1.0);
        r.record("a", 2.0);
        r.record("b", 10.0);
        r.tick(2.0);
        r.record("b", 20.0);
        assert_eq!(r.len(), 3);
        let a = r.series("a");
        assert_eq!(a.len(), 3);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], 2.0);
        assert!(a[2].is_nan(), "unwritten tick backfills with NaN");
        let b = r.series("b");
        assert!(b[0].is_nan());
        assert_eq!(b[1], 10.0);
        assert_eq!(b[2], 20.0);
    }

    #[test]
    fn window_mean_ignores_nan() {
        let mut r = Recorder::new();
        for t in 0..10 {
            r.tick(t as f64);
            if t % 2 == 0 {
                r.record("x", t as f64);
            }
        }
        let m = r.window_mean("x", 0.0, 10.0);
        assert!((m - 4.0).abs() < 1e-12, "mean of 0,2,4,6,8 = 4, got {m}");
    }

    #[test]
    fn overwrite_within_tick() {
        let mut r = Recorder::new();
        r.tick(0.0);
        r.record("x", 1.0);
        r.record("x", 5.0);
        assert_eq!(r.series("x"), vec![5.0]);
    }

    #[test]
    fn unknown_series_is_all_nan() {
        let mut r = Recorder::new();
        r.tick(0.0);
        let s = r.series("nope");
        assert_eq!(s.len(), 1);
        assert!(s[0].is_nan());
        assert!(r.names().is_empty());
    }
}
