//! Topology-aware fluid network simulation.
//!
//! [`crate::world::World`] models one service behind one bottleneck —
//! enough for the §6 drill. Network-wide questions (the §2.2 incidents
//! induce loss "network-wide, instead of just on the bottleneck links")
//! need traffic routed over the real backbone with per-link priority
//! queues. [`NetWorld`] does that at fluid granularity:
//!
//! * each [`ServiceFlow`] is routed over its k shortest paths
//!   (precomputed, split evenly — ECMP-style);
//! * every tick, per-link conforming/non-conforming loads are
//!   accumulated and each link applies the same strict-priority
//!   discipline as [`crate::fabric::Bottleneck`];
//! * a flow's end-to-end loss composes its links' losses; TCP feedback
//!   throttles next tick's sending rate, with the same probe floor as
//!   the single-bottleneck world.

use crate::world::MarkingCommand;
use entitlement_core::{NpgId, QosClass, Rate, RegionId};
use entitlement_topology::{k_shortest_paths, LinkId, Path, Topology};
use entitlement_workload::TrafficPattern;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// One service's traffic between a region pair.
#[derive(Clone, Debug)]
pub struct ServiceFlow {
    /// Owning service.
    pub npg: NpgId,
    /// Traffic class.
    pub qos: QosClass,
    /// Source region.
    pub src: RegionId,
    /// Destination region.
    pub dst: RegionId,
    /// Mean offered rate.
    pub base_rate: Rate,
    /// Time-of-day shape.
    pub pattern: TrafficPattern,
}

/// Network simulation parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetWorldConfig {
    /// Paths per flow (even split).
    pub k_paths: usize,
    /// Tick length, seconds.
    pub dt_secs: f64,
    /// TCP probe floor (senders never drop below this share of demand).
    pub probe_floor: f64,
    /// Retransmit overhead factor.
    pub retransmit_overhead: f64,
}

impl Default for NetWorldConfig {
    fn default() -> Self {
        NetWorldConfig {
            k_paths: 2,
            dt_secs: 30.0,
            probe_floor: 0.02,
            retransmit_overhead: 0.05,
        }
    }
}

/// Per-flow outcome of one tick.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// Offered demand this tick.
    pub offered: Rate,
    /// Conforming traffic sent / delivered.
    pub conf_sent: Rate,
    /// Conforming delivered.
    pub conf_delivered: Rate,
    /// Non-conforming sent.
    pub nonconf_sent: Rate,
    /// Non-conforming delivered.
    pub nonconf_delivered: Rate,
    /// End-to-end conforming loss.
    pub conf_loss: f64,
    /// End-to-end non-conforming loss.
    pub nonconf_loss: f64,
}

/// One tick's network-wide outcome.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NetTick {
    /// Per-flow outcomes (input order).
    pub flows: Vec<FlowOutcome>,
    /// Per-link utilization after serving.
    pub link_utilization: BTreeMap<LinkId, f64>,
}

impl NetTick {
    /// Aggregate loss over all flows of one NPG (volume-weighted,
    /// conforming + non-conforming combined — the "network-wide total
    /// loss" of Fig 5).
    pub fn npg_loss(&self, flows: &[ServiceFlow], npg: NpgId) -> f64 {
        let mut sent = 0.0;
        let mut delivered = 0.0;
        for (f, o) in flows.iter().zip(&self.flows) {
            if f.npg == npg {
                sent += o.conf_sent.as_bps() + o.nonconf_sent.as_bps();
                delivered += o.conf_delivered.as_bps() + o.nonconf_delivered.as_bps();
            }
        }
        if sent <= 0.0 {
            0.0
        } else {
            1.0 - delivered / sent
        }
    }

    /// Aggregate loss over all conforming traffic of one class.
    pub fn class_conf_loss(&self, flows: &[ServiceFlow], qos: QosClass) -> f64 {
        let mut sent = 0.0;
        let mut delivered = 0.0;
        for (f, o) in flows.iter().zip(&self.flows) {
            if f.qos == qos {
                sent += o.conf_sent.as_bps();
                delivered += o.conf_delivered.as_bps();
            }
        }
        if sent <= 0.0 {
            0.0
        } else {
            1.0 - delivered / sent
        }
    }
}

/// The routed fluid network.
pub struct NetWorld {
    topo: Topology,
    config: NetWorldConfig,
    flows: Vec<ServiceFlow>,
    /// Precomputed paths per flow.
    paths: Vec<Vec<Path>>,
    /// (conf, nonconf) loss per flow last tick (TCP feedback).
    last_loss: Vec<(f64, f64)>,
    /// Demand multipliers per NPG (incident hooks).
    multipliers: HashMap<NpgId, Box<dyn Fn(f64) -> f64 + Send>>,
    /// Marking per NPG: the fraction of its traffic remarked.
    marking: HashMap<NpgId, f64>,
}

impl NetWorld {
    /// Build the network, precomputing routes. Flows without any path
    /// are rejected.
    pub fn new(
        topo: Topology,
        flows: Vec<ServiceFlow>,
        config: NetWorldConfig,
    ) -> entitlement_core::Result<Self> {
        let mut paths = Vec::with_capacity(flows.len());
        for f in &flows {
            let p = k_shortest_paths(&topo, f.src, f.dst, config.k_paths, &[])?;
            paths.push(p);
        }
        let n = flows.len();
        Ok(NetWorld {
            topo,
            config,
            flows,
            paths,
            last_loss: vec![(0.0, 0.0); n],
            multipliers: HashMap::new(),
            marking: HashMap::new(),
        })
    }

    /// The flows (for aggregation helpers).
    pub fn flows(&self) -> &[ServiceFlow] {
        &self.flows
    }

    /// Install an incident multiplier for one NPG.
    pub fn set_multiplier(&mut self, npg: NpgId, f: impl Fn(f64) -> f64 + Send + 'static) {
        self.multipliers.insert(npg, Box::new(f));
    }

    /// Set the remarked fraction of one NPG's traffic (0 = none). A
    /// [`MarkingCommand`] can be folded to this via `marked_fraction`.
    pub fn set_marking(&mut self, npg: NpgId, fraction: f64) {
        self.marking.insert(npg, fraction.clamp(0.0, 1.0));
    }

    /// Fold a fleet marking command into the per-NPG fraction.
    pub fn apply_command(&mut self, npg: NpgId, cmd: &MarkingCommand, hosts: usize) {
        self.set_marking(npg, cmd.marked_fraction(hosts));
    }

    /// Advance one tick.
    pub fn step(&mut self, t_secs: f64) -> NetTick {
        let cfg = &self.config;
        // --- Per-flow sending rates with TCP feedback. -----------------
        let mut conf_sent = vec![Rate::ZERO; self.flows.len()];
        let mut nonconf_sent = vec![Rate::ZERO; self.flows.len()];
        let mut offered_v = vec![Rate::ZERO; self.flows.len()];
        for (i, f) in self.flows.iter().enumerate() {
            let mult = self
                .multipliers
                .get(&f.npg)
                .map_or(1.0, |m| m(t_secs));
            let offered = f.base_rate * f.pattern.factor_at(t_secs) * mult;
            offered_v[i] = offered;
            let m = self.marking.get(&f.npg).copied().unwrap_or(0.0);
            let throttle = |loss: f64| {
                (1.0 - loss).max(cfg.probe_floor) * (1.0 + cfg.retransmit_overhead * loss)
            };
            conf_sent[i] = offered * (1.0 - m) * throttle(self.last_loss[i].0);
            nonconf_sent[i] = offered * m * throttle(self.last_loss[i].1);
        }

        // --- Per-link loads. --------------------------------------------
        let mut link_conf: BTreeMap<LinkId, f64> = BTreeMap::new();
        let mut link_nonconf: BTreeMap<LinkId, f64> = BTreeMap::new();
        for (i, paths) in self.paths.iter().enumerate() {
            let share = 1.0 / paths.len() as f64;
            for p in paths {
                for &lid in &p.links {
                    *link_conf.entry(lid).or_default() += conf_sent[i].as_bps() * share;
                    *link_nonconf.entry(lid).or_default() += nonconf_sent[i].as_bps() * share;
                }
            }
        }

        // --- Per-link strict-priority service → per-link loss. ----------
        let mut link_loss: BTreeMap<LinkId, (f64, f64)> = BTreeMap::new();
        let mut link_utilization: BTreeMap<LinkId, f64> = BTreeMap::new();
        for (&lid, &conf) in &link_conf {
            let cap = self.topo.link(lid).map_or(0.0, |l| l.capacity.as_bps());
            let nonconf = link_nonconf.get(&lid).copied().unwrap_or(0.0);
            let conf_deliv = conf.min(cap);
            let leftover = (cap - conf_deliv).max(0.0);
            let nonconf_deliv = nonconf.min(leftover);
            let conf_loss = if conf > 0.0 { 1.0 - conf_deliv / conf } else { 0.0 };
            let nonconf_loss = if nonconf > 0.0 {
                1.0 - nonconf_deliv / nonconf
            } else {
                0.0
            };
            link_loss.insert(lid, (conf_loss, nonconf_loss));
            link_utilization.insert(lid, ((conf_deliv + nonconf_deliv) / cap.max(1.0)).min(1.0));
        }

        // --- Per-flow end-to-end outcome. --------------------------------
        let mut out = NetTick {
            flows: Vec::with_capacity(self.flows.len()),
            link_utilization,
        };
        for (i, paths) in self.paths.iter().enumerate() {
            let share = 1.0 / paths.len() as f64;
            let mut conf_deliv = 0.0;
            let mut nonconf_deliv = 0.0;
            for p in paths {
                let mut conf_pass = 1.0;
                let mut nonconf_pass = 1.0;
                for lid in &p.links {
                    if let Some(&(cl, nl)) = link_loss.get(lid) {
                        conf_pass *= 1.0 - cl;
                        nonconf_pass *= 1.0 - nl;
                    }
                }
                conf_deliv += conf_sent[i].as_bps() * share * conf_pass;
                nonconf_deliv += nonconf_sent[i].as_bps() * share * nonconf_pass;
            }
            let conf_loss = if conf_sent[i].as_bps() > 0.0 {
                1.0 - conf_deliv / conf_sent[i].as_bps()
            } else {
                0.0
            };
            let nonconf_loss = if nonconf_sent[i].as_bps() > 0.0 {
                1.0 - nonconf_deliv / nonconf_sent[i].as_bps()
            } else {
                0.0
            };
            self.last_loss[i] = (conf_loss, nonconf_loss);
            out.flows.push(FlowOutcome {
                offered: offered_v[i],
                conf_sent: conf_sent[i],
                conf_delivered: Rate::bps(conf_deliv),
                nonconf_sent: nonconf_sent[i],
                nonconf_delivered: Rate::bps(nonconf_deliv),
                conf_loss,
                nonconf_loss,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entitlement_topology::BackboneSpec;

    fn build(scale: f64) -> NetWorld {
        // Small backbone; two services sharing the same region pair so
        // their traffic contends on the same links (offender NPG 0 in
        // C1, victim NPG 1 in C2).
        let topo = BackboneSpec::small(71).build();
        let dcs = topo.dc_ids();
        let mut flows = Vec::new();
        for i in 0..4 {
            flows.push(ServiceFlow {
                npg: NpgId((i % 2) as u32),
                qos: if i % 2 == 0 { QosClass::C1 } else { QosClass::C2 },
                src: dcs[0],
                dst: dcs[1],
                base_rate: Rate::gbps(100.0 * scale),
                pattern: TrafficPattern::Flat,
            });
        }
        NetWorld::new(topo, flows, NetWorldConfig::default()).unwrap()
    }

    /// Victim goodput: delivered / offered across NPG 1's flows.
    fn victim_goodput(net: &NetWorld, tick: &NetTick) -> f64 {
        let mut offered = 0.0;
        let mut delivered = 0.0;
        for (f, o) in net.flows().iter().zip(&tick.flows) {
            if f.npg == NpgId(1) {
                offered += o.offered.as_bps();
                delivered += o.conf_delivered.as_bps() + o.nonconf_delivered.as_bps();
            }
        }
        delivered / offered.max(1.0)
    }

    #[test]
    fn light_load_has_no_loss() {
        let mut net = build(1.0);
        let tick = net.step(0.0);
        for o in &tick.flows {
            assert_eq!(o.conf_loss, 0.0);
            assert!((o.conf_delivered.as_bps() - o.conf_sent.as_bps()).abs() < 1.0);
        }
        assert!(tick.link_utilization.values().all(|&u| u < 1.0));
    }

    #[test]
    fn marked_traffic_is_dropped_first_on_shared_links() {
        let mut net = build(8.0); // heavy load
        net.set_marking(NpgId(0), 0.5);
        let mut last = None;
        for k in 0..10 {
            last = Some(net.step(k as f64 * 30.0));
        }
        let tick = last.unwrap();
        // Aggregate non-conforming loss ≥ conforming loss for NPG 0.
        let flows = tick.flows.clone();
        let (mut cs, mut cd, mut ns, mut nd) = (0.0, 0.0, 0.0, 0.0);
        for (f, o) in net.flows().iter().zip(&flows) {
            if f.npg == NpgId(0) {
                cs += o.conf_sent.as_bps();
                cd += o.conf_delivered.as_bps();
                ns += o.nonconf_sent.as_bps();
                nd += o.nonconf_delivered.as_bps();
            }
        }
        let conf_loss = 1.0 - cd / cs.max(1.0);
        let nonconf_loss = 1.0 - nd / ns.max(1.0);
        assert!(
            nonconf_loss >= conf_loss - 1e-9,
            "nonconf {nonconf_loss} vs conf {conf_loss}"
        );
    }

    #[test]
    fn incident_multiplier_reduces_victim_goodput_without_enforcement() {
        // Sized so the shared path is comfortable at baseline and
        // congested once NPG 0 spikes +50%.
        let mut net = build(3.0);
        let mut base_goodput = 0.0;
        for k in 0..10 {
            let t = net.step(k as f64 * 30.0);
            base_goodput = victim_goodput(&net, &t);
        }
        net.set_multiplier(NpgId(0), |_| 1.5);
        let mut spike_goodput = 1.0;
        for k in 10..25 {
            let t = net.step(k as f64 * 30.0);
            spike_goodput = victim_goodput(&net, &t);
        }
        assert!(
            spike_goodput < base_goodput - 0.03,
            "victim goodput falls under the neighbor's spike: {base_goodput} -> {spike_goodput}"
        );
    }

    #[test]
    fn enforcement_protects_victims_network_wide() {
        // Same spike, but NPG 0's over-entitlement share is remarked.
        let run = |mark: f64| {
            let mut net = build(3.0);
            net.set_multiplier(NpgId(0), |t| if t >= 300.0 { 1.5 } else { 1.0 });
            net.set_marking(NpgId(0), mark);
            let mut victim = 1.0f64;
            for k in 0..30 {
                let t = net.step(k as f64 * 30.0);
                if k > 15 {
                    victim = victim.min(victim_goodput(&net, &t));
                }
            }
            victim
        };
        let unprotected = run(0.0);
        let protected = run(1.0 / 3.0);
        assert!(
            protected > unprotected + 0.02,
            "marking shields the victim: {protected} vs {unprotected}"
        );
    }

    #[test]
    fn disconnected_flow_is_rejected_at_build() {
        let mut topo = Topology::new();
        let a = topo.add_region("a", true, 1.0);
        let b = topo.add_region("b", true, 1.0);
        // No links at all.
        let res = NetWorld::new(
            topo,
            vec![ServiceFlow {
                npg: NpgId(0),
                qos: QosClass::C1,
                src: a,
                dst: b,
                base_rate: Rate::gbps(1.0),
                pattern: TrafficPattern::Flat,
            }],
            NetWorldConfig::default(),
        );
        assert!(res.is_err());
    }
}
