//! A packet-granularity micro-simulator for one switch egress port.
//!
//! The fluid [`crate::fabric::Bottleneck`] model asserts that strict
//! priority queueing protects conforming traffic and starves the
//! scavenger queue first. This module validates that claim at per-packet
//! granularity: a deterministic discrete-event simulation of one egress
//! port with DSCP-mapped strict-priority queues, finite buffers, and
//! tail drop — the behavior §5.1 relies on in hardware switches.
//!
//! It is intentionally small-scale (one port, seconds of simulated
//! time); the property test in this module and the cross-validation
//! test against the fluid model are its reason to exist.

use entitlement_core::qos::Dscp;
use entitlement_core::{DetRng, Rate};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, VecDeque};

/// A traffic source feeding the port.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PacketSource {
    /// DSCP its packets carry.
    pub dscp: Dscp,
    /// Offered rate.
    pub rate: Rate,
    /// Packet size in bytes.
    pub packet_bytes: u32,
}

/// Port configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PortConfig {
    /// Line rate.
    pub capacity: Rate,
    /// Buffer per queue, bytes.
    pub buffer_bytes: u64,
    /// Simulated duration, seconds.
    pub duration_secs: f64,
    /// Arrival jitter: inter-arrival times are scaled by a uniform
    /// factor in `[1-j, 1+j]`.
    pub jitter: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for PortConfig {
    fn default() -> Self {
        PortConfig {
            capacity: Rate::gbps(10.0),
            buffer_bytes: 1_000_000,
            duration_secs: 1.0,
            jitter: 0.3,
            seed: 0x9AC7,
        }
    }
}

/// Per-queue outcome of a run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct QueueStats {
    /// Packets enqueued (arrived and accepted).
    pub accepted: u64,
    /// Packets tail-dropped on arrival.
    pub dropped: u64,
    /// Packets transmitted.
    pub transmitted: u64,
    /// Sum of queueing delays (seconds) over transmitted packets.
    pub total_delay_secs: f64,
}

impl QueueStats {
    /// Loss ratio of this queue.
    pub fn loss(&self) -> f64 {
        let offered = self.accepted + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }

    /// Mean queueing delay of transmitted packets, seconds.
    pub fn mean_delay_secs(&self) -> f64 {
        if self.transmitted == 0 {
            f64::NAN
        } else {
            self.total_delay_secs / self.transmitted as f64
        }
    }
}

/// Result of a port simulation, indexed by queue (0 = scavenger, 4 =
/// highest priority; see [`Dscp::queue`]).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PortOutcome {
    /// Stats per queue index.
    pub queues: [QueueStats; 5],
}

impl PortOutcome {
    /// Stats for the queue a DSCP maps to.
    pub fn for_dscp(&self, dscp: Dscp) -> &QueueStats {
        &self.queues[dscp.queue() as usize]
    }
}

#[derive(PartialEq)]
struct Arrival {
    /// Time in nanoseconds (integer for exact ordering).
    t_ns: u64,
    /// Tie-break sequence.
    seq: u64,
    source: usize,
}

impl Eq for Arrival {}
impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap.
        other
            .t_ns
            .cmp(&self.t_ns)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Run the discrete-event simulation.
pub fn simulate_port(sources: &[PacketSource], config: &PortConfig) -> PortOutcome {
    let mut rng = DetRng::new(config.seed);
    let mut heap: BinaryHeap<Arrival> = BinaryHeap::new();
    let mut seq = 0u64;
    let horizon_ns = (config.duration_secs * 1e9) as u64;

    // Prime one arrival per source.
    let next_gap = |src: &PacketSource, rng: &mut DetRng| -> u64 {
        let mean_ns = src.packet_bytes as f64 * 8.0 / src.rate.as_bps() * 1e9;
        (mean_ns * rng.range(1.0 - config.jitter, 1.0 + config.jitter)).max(1.0) as u64
    };
    for (i, s) in sources.iter().enumerate() {
        let t = next_gap(s, &mut rng);
        heap.push(Arrival {
            t_ns: t,
            seq,
            source: i,
        });
        seq += 1;
    }

    // Queues: per priority level, FIFO of (arrival_ns, source).
    let mut queues: [VecDeque<(u64, usize)>; 5] = Default::default();
    let mut queue_bytes = [0u64; 5];
    let mut stats = PortOutcome::default();
    // Time the port becomes free.
    let mut port_free_ns = 0u64;

    // Serve as many packets as possible up to time `now`.
    let serve = |now: u64,
                 port_free_ns: &mut u64,
                 queues: &mut [VecDeque<(u64, usize)>; 5],
                 queue_bytes: &mut [u64; 5],
                 stats: &mut PortOutcome,
                 sources: &[PacketSource],
                 capacity_bps: f64| {
        while *port_free_ns <= now {
            // Highest priority non-empty queue.
            let Some(q) = (0..5).rev().find(|&q| !queues[q].is_empty()) else {
                break;
            };
            let (arr_ns, src) = queues[q].pop_front().unwrap();
            let bytes = sources[src].packet_bytes as u64;
            queue_bytes[q] -= bytes;
            let start = (*port_free_ns).max(arr_ns);
            let tx_ns = (bytes as f64 * 8.0 / capacity_bps * 1e9) as u64;
            *port_free_ns = start + tx_ns.max(1);
            let s = &mut stats.queues[q];
            s.transmitted += 1;
            s.total_delay_secs += (start.saturating_sub(arr_ns)) as f64 / 1e9;
        }
    };

    let capacity_bps = config.capacity.as_bps();
    while let Some(Arrival { t_ns, source, .. }) = heap.pop() {
        if t_ns > horizon_ns {
            break;
        }
        // Drain the port up to this arrival.
        serve(
            t_ns,
            &mut port_free_ns,
            &mut queues,
            &mut queue_bytes,
            &mut stats,
            sources,
            capacity_bps,
        );
        let src = &sources[source];
        let q = src.dscp.queue() as usize;
        if queue_bytes[q] + src.packet_bytes as u64 > config.buffer_bytes {
            stats.queues[q].dropped += 1;
        } else {
            queues[q].push_back((t_ns, source));
            queue_bytes[q] += src.packet_bytes as u64;
            stats.queues[q].accepted += 1;
        }
        // Schedule the next arrival of this source.
        let gap = next_gap(src, &mut rng);
        heap.push(Arrival {
            t_ns: t_ns + gap,
            seq,
            source,
        });
        seq += 1;
    }
    // Final drain.
    serve(
        u64::MAX,
        &mut port_free_ns,
        &mut queues,
        &mut queue_bytes,
        &mut stats,
        sources,
        capacity_bps,
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Bottleneck;
    use entitlement_core::QosClass;

    fn src(dscp: Dscp, gbps: f64) -> PacketSource {
        PacketSource {
            dscp,
            rate: Rate::gbps(gbps),
            packet_bytes: 1500,
        }
    }

    #[test]
    fn uncongested_delivers_everything() {
        let out = simulate_port(
            &[
                src(Dscp::for_class(QosClass::C1), 3.0),
                src(Dscp::NON_CONFORMING, 2.0),
            ],
            &PortConfig::default(),
        );
        assert_eq!(out.for_dscp(Dscp::for_class(QosClass::C1)).loss(), 0.0);
        assert_eq!(out.for_dscp(Dscp::NON_CONFORMING).loss(), 0.0);
        assert!(out.for_dscp(Dscp::for_class(QosClass::C1)).transmitted > 100_000);
    }

    #[test]
    fn congestion_starves_the_scavenger_queue_first() {
        // 8G conforming + 5G non-conforming into a 10G port.
        let out = simulate_port(
            &[
                src(Dscp::for_class(QosClass::C2), 8.0),
                src(Dscp::NON_CONFORMING, 5.0),
            ],
            &PortConfig::default(),
        );
        let conf = out.for_dscp(Dscp::for_class(QosClass::C2));
        let nonconf = out.for_dscp(Dscp::NON_CONFORMING);
        assert!(conf.loss() < 0.01, "conforming loss {}", conf.loss());
        // Fluid prediction: (5 - 2) / 5 = 0.6.
        assert!(
            (nonconf.loss() - 0.6).abs() < 0.1,
            "scavenger loss {} vs fluid 0.6",
            nonconf.loss()
        );
        // Scavenger queueing delay exceeds the premium queue's.
        assert!(nonconf.mean_delay_secs() > conf.mean_delay_secs());
    }

    #[test]
    fn packet_and_fluid_models_agree() {
        // Cross-validate loss ratios across several load points.
        let fluid = Bottleneck {
            capacity: Rate::gbps(10.0),
            ..Default::default()
        };
        for (conf_g, nonconf_g) in [(5.0, 3.0), (7.0, 6.0), (9.5, 4.0)] {
            let fluid_out = fluid.serve(0.0, Rate::gbps(conf_g), Rate::gbps(nonconf_g));
            let pkt = simulate_port(
                &[
                    src(Dscp::for_class(QosClass::C1), conf_g),
                    src(Dscp::NON_CONFORMING, nonconf_g),
                ],
                &PortConfig::default(),
            );
            let pkt_nonconf = pkt.for_dscp(Dscp::NON_CONFORMING).loss();
            assert!(
                (pkt_nonconf - fluid_out.nonconf_loss).abs() < 0.08,
                "({conf_g},{nonconf_g}): packet {pkt_nonconf} vs fluid {}",
                fluid_out.nonconf_loss
            );
            let pkt_conf = pkt.for_dscp(Dscp::for_class(QosClass::C1)).loss();
            assert!(
                (pkt_conf - fluid_out.conf_loss).abs() < 0.05,
                "conforming: packet {pkt_conf} vs fluid {}",
                fluid_out.conf_loss
            );
        }
    }

    #[test]
    fn class_priorities_are_respected_under_overload() {
        // All four classes offered 4G each into 10G: C1 and C2 fit,
        // C3 partially, C4 and scavenger starve.
        let out = simulate_port(
            &[
                src(Dscp::for_class(QosClass::C1), 4.0),
                src(Dscp::for_class(QosClass::C2), 4.0),
                src(Dscp::for_class(QosClass::C3), 4.0),
                src(Dscp::for_class(QosClass::C4), 4.0),
            ],
            &PortConfig::default(),
        );
        let loss = |c: QosClass| out.for_dscp(Dscp::for_class(c)).loss();
        assert!(loss(QosClass::C1) < 0.01, "c1 {}", loss(QosClass::C1));
        assert!(loss(QosClass::C2) < 0.02, "c2 {}", loss(QosClass::C2));
        assert!(
            (loss(QosClass::C3) - 0.5).abs() < 0.12,
            "c3 gets the 2G leftover: {}",
            loss(QosClass::C3)
        );
        assert!(loss(QosClass::C4) > 0.9, "c4 {}", loss(QosClass::C4));
    }

    #[test]
    fn determinism() {
        let sources = [
            src(Dscp::for_class(QosClass::C1), 6.0),
            src(Dscp::NON_CONFORMING, 6.0),
        ];
        let a = simulate_port(&sources, &PortConfig::default());
        let b = simulate_port(&sources, &PortConfig::default());
        assert_eq!(a.queues[0].transmitted, b.queues[0].transmitted);
        assert_eq!(a.queues[4].dropped, b.queues[4].dropped);
    }

    #[test]
    fn conservation_per_queue() {
        let out = simulate_port(
            &[
                src(Dscp::for_class(QosClass::C2), 9.0),
                src(Dscp::NON_CONFORMING, 8.0),
            ],
            &PortConfig::default(),
        );
        for q in &out.queues {
            assert!(q.transmitted <= q.accepted);
            // Anything accepted but not transmitted is still queued at the
            // horizon — bounded by the buffer.
            let queued = q.accepted - q.transmitted;
            assert!(queued * 1500 <= PortConfig::default().buffer_bytes + 1500);
        }
    }
}
