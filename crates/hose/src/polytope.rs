//! The hose polytope.
//!
//! A hose with segments `S_1..S_k` and caps `c_1..c_k` admits every
//! non-negative per-destination flow vector `f` with
//! `Σ_{d∈S_i} f_d ≤ c_i` for each segment — a product of scaled
//! simplexes. Segmentation shrinks the polytope volume, which is the
//! paper's stated objective: "we would reduce the volume of the convex
//! polytope delimited by the Hose, which means we can use less capacity
//! to build the network".

use crate::request::HoseRequest;
use entitlement_core::{Rate, RegionId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A traffic realization of a hose: per-destination flow.
pub type HosePoint = BTreeMap<RegionId, Rate>;

/// Geometry of one hose request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HosePolytope {
    request: HoseRequest,
}

impl HosePolytope {
    /// Wrap a validated request.
    pub fn new(request: HoseRequest) -> entitlement_core::Result<Self> {
        request.validate()?;
        Ok(HosePolytope { request })
    }

    /// The underlying request.
    pub fn request(&self) -> &HoseRequest {
        &self.request
    }

    /// Dimension of the polytope (number of remote regions).
    pub fn dimension(&self) -> usize {
        self.request.remotes().len()
    }

    /// Whether a point lies inside the polytope (within tolerance `tol`
    /// relative to each segment cap). Destinations outside the hose make
    /// the point infeasible.
    pub fn contains(&self, point: &HosePoint, tol: f64) -> bool {
        // Unknown destinations?
        let remotes = self.request.remotes();
        if point.keys().any(|r| !remotes.contains(r)) {
            return false;
        }
        if point.values().any(|v| v.as_bps() < -1e-9) {
            return false;
        }
        for seg in &self.request.segments {
            let used: f64 = point
                .iter()
                .filter(|(r, _)| seg.regions.contains(r))
                .map(|(_, v)| v.as_bps())
                .sum();
            if used > seg.cap.as_bps() * (1.0 + tol) + 1e-6 {
                return false;
            }
        }
        true
    }

    /// Natural-log volume of the polytope. Each segment contributes a
    /// scaled simplex of volume `cap^n / n!`; the product over segments
    /// is the hose volume. Using logs avoids overflow for large caps.
    pub fn log_volume(&self) -> f64 {
        let mut lv = 0.0;
        for seg in &self.request.segments {
            let n = seg.regions.len() as f64;
            lv += n * seg.cap.as_bps().max(f64::MIN_POSITIVE).ln() - ln_factorial(seg.regions.len());
        }
        lv
    }

    /// Volume reduction of this (segmented) hose vs. the general hose
    /// over the same remotes and total: `1 - vol(self)/vol(general)`.
    pub fn volume_reduction_vs_general(&self) -> f64 {
        let general = HoseRequest::general(
            self.request.npg,
            self.request.qos,
            self.request.region,
            self.request.direction,
            self.request.total,
            self.request.remotes(),
        );
        let g = HosePolytope { request: general };
        let ratio = (self.log_volume() - g.log_volume()).exp();
        1.0 - ratio
    }
}

fn ln_factorial(n: usize) -> f64 {
    (1..=n).map(|k| (k as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::HoseSegment;
    use entitlement_core::{Direction, NpgId, QosClass};
    use std::collections::BTreeSet;

    fn seg(regions: &[u16], cap_g: f64) -> HoseSegment {
        HoseSegment {
            regions: regions.iter().map(|&r| RegionId(r)).collect::<BTreeSet<_>>(),
            cap: Rate::gbps(cap_g),
        }
    }

    fn segmented() -> HosePolytope {
        HosePolytope::new(HoseRequest {
            npg: NpgId(1),
            qos: QosClass::C1,
            region: RegionId(0),
            direction: Direction::Egress,
            total: Rate::gbps(900.0),
            segments: vec![seg(&[1, 2], 400.0), seg(&[3, 4], 500.0)],
        })
        .unwrap()
    }

    fn pt(entries: &[(u16, f64)]) -> HosePoint {
        entries
            .iter()
            .map(|&(r, g)| (RegionId(r), Rate::gbps(g)))
            .collect()
    }

    #[test]
    fn membership_basic() {
        let p = segmented();
        assert_eq!(p.dimension(), 4);
        // The original forecast is inside.
        assert!(p.contains(&pt(&[(1, 300.0), (2, 100.0), (3, 250.0), (4, 250.0)]), 0.0));
        // Moving 200G from B to C stays inside (intra-segment agility).
        assert!(p.contains(&pt(&[(1, 100.0), (2, 300.0), (3, 250.0), (4, 250.0)]), 0.0));
        // Moving 200G from B to D violates segment 2's cap.
        assert!(!p.contains(&pt(&[(1, 100.0), (2, 100.0), (3, 450.0), (4, 250.0)]), 0.0));
        // Unknown destination.
        assert!(!p.contains(&pt(&[(9, 1.0)]), 0.0));
    }

    #[test]
    fn segment_cap_is_the_binding_constraint() {
        let p = segmented();
        assert!(p.contains(&pt(&[(1, 400.0)]), 0.0), "full cap to one dst ok");
        assert!(!p.contains(&pt(&[(1, 401.0)]), 0.0));
    }

    #[test]
    fn volume_shrinks_with_segmentation() {
        let p = segmented();
        let reduction = p.volume_reduction_vs_general();
        // General: 900^4/4!; segmented: (400^2/2!)(500^2/2!).
        let expected = 1.0
            - ((400e9f64.powi(2) / 2.0) * (500e9f64.powi(2) / 2.0))
                / (900e9f64.powi(4) / 24.0);
        assert!(
            (reduction - expected).abs() < 1e-9,
            "reduction {reduction} vs {expected}"
        );
        assert!(reduction > 0.5, "4-dim split cuts volume a lot: {reduction}");
    }

    #[test]
    fn general_hose_has_zero_reduction() {
        let g = HosePolytope::new(HoseRequest::general(
            NpgId(1),
            QosClass::C1,
            RegionId(0),
            Direction::Egress,
            Rate::gbps(900.0),
            (1..=4).map(RegionId),
        ))
        .unwrap();
        assert!(g.volume_reduction_vs_general().abs() < 1e-9);
    }

    #[test]
    fn log_volume_matches_monte_carlo() {
        // Validate the analytic volume against rejection sampling: draw
        // points uniformly in the bounding box [0, cap]^n of each
        // segment; the acceptance rate should match vol(simplex)/vol(box)
        // = 1/n! per segment.
        let p = segmented();
        let mut rng = entitlement_core::DetRng::new(99);
        let n_samples = 200_000;
        let mut inside = 0usize;
        for _ in 0..n_samples {
            let mut point = HosePoint::new();
            for seg in &p.request().segments {
                for &r in &seg.regions {
                    point.insert(r, seg.cap * rng.f64());
                }
            }
            if p.contains(&point, 0.0) {
                inside += 1;
            }
        }
        // Expected acceptance: (1/2!) × (1/2!) = 0.25 for two 2-dim
        // segments.
        let acc = inside as f64 / n_samples as f64;
        assert!((acc - 0.25).abs() < 0.01, "MC acceptance {acc}");
        // And the analytic log-volume equals box volume × acceptance.
        let box_log_vol: f64 = p
            .request()
            .segments
            .iter()
            .map(|s| s.regions.len() as f64 * s.cap.as_bps().ln())
            .sum();
        let mc_log_vol = box_log_vol + acc.ln();
        assert!(
            (p.log_volume() - mc_log_vol).abs() < 0.05,
            "analytic {} vs MC {}",
            p.log_volume(),
            mc_log_vol
        );
    }

    #[test]
    fn tolerance_allows_small_overshoot() {
        let p = segmented();
        assert!(!p.contains(&pt(&[(1, 404.0)]), 0.0));
        assert!(p.contains(&pt(&[(1, 404.0)]), 0.02));
    }
}
