//! The segmented-hose algorithm (paper §4.2, Algorithm 1).
//!
//! Input: the time series of per-destination flow out of one source,
//! `F(dst, t)`. For any destination set `S`, the share ratio is
//!
//! `R(S, t) = Σ_{dst∈S} F(dst, t) / Σ_{dst∈N} F(dst, t)`
//!
//! with `α⁻(S) = min_t R(S, t)` and `α⁺(S) = max_t R(S, t)`. The best
//! two-way split (largest polytope-volume reduction, since the volume
//! scales as α(1−α)) is the smallest set `S` with `α⁻(S) > 0.5`; the
//! greedy algorithm sorts destinations by their individual α⁻ and adds
//! them until the set crosses 0.5.
//!
//! Segment capacities use `α⁺(SEG)` for the first segment — the maximum
//! share it ever needed — and `1 − α⁺(SEG) = α⁻(SEG′)` for the second, so
//! the fractions sum to exactly 1 and the hose is never over-provisioned
//! (paper: "if the hose segmentation coefficients sum up to more than 1,
//! then the hose volume reduction would be sub-optimal").

use crate::request::{HoseRequest, HoseSegment};
use entitlement_core::{Direction, EntitlementError, NpgId, QosClass, Rate, RegionId, Result};
use std::collections::{BTreeMap, BTreeSet};

/// Per-destination flow time series `F(dst, t)`; all series must share
/// one length (the same sampling grid).
pub type FlowSeries = BTreeMap<RegionId, Vec<f64>>;

/// `R(S, t)` for every `t`: share of total flow going to set `S`.
fn share_series(flows: &FlowSeries, set: &BTreeSet<RegionId>) -> Vec<f64> {
    let t_len = flows.values().next().map_or(0, Vec::len);
    let mut out = Vec::with_capacity(t_len);
    for t in 0..t_len {
        let total: f64 = flows.values().map(|v| v[t]).sum();
        let in_set: f64 = flows
            .iter()
            .filter(|(r, _)| set.contains(r))
            .map(|(_, v)| v[t])
            .sum();
        out.push(if total > 0.0 { in_set / total } else { 0.0 });
    }
    out
}

/// `α⁻(S)`: minimum share of set `S` over time.
pub fn alpha_minus(flows: &FlowSeries, set: &BTreeSet<RegionId>) -> f64 {
    share_series(flows, set)
        .into_iter()
        .fold(f64::INFINITY, f64::min)
}

/// `α⁺(S)`: maximum share of set `S` over time.
pub fn alpha_plus(flows: &FlowSeries, set: &BTreeSet<RegionId>) -> f64 {
    share_series(flows, set).into_iter().fold(0.0, f64::max)
}

/// Algorithm 1: split the destination set into two segments.
///
/// Returns `(seg, seg_prime)` — the first is the smallest prefix (by
/// descending per-node α⁻) whose α⁻ exceeds 0.5; the second is the rest.
/// With fewer than 2 destinations there is nothing to split and the
/// function errors.
pub fn two_segments(flows: &FlowSeries) -> Result<(BTreeSet<RegionId>, BTreeSet<RegionId>)> {
    let nodes: Vec<RegionId> = flows.keys().copied().collect();
    if nodes.len() < 2 {
        return Err(EntitlementError::EmptyDestinationSet);
    }
    if flows.values().any(Vec::is_empty) {
        return Err(EntitlementError::SeriesTooShort { needed: 1, got: 0 });
    }
    // Line 2-4: per-node α⁻, sorted non-increasing.
    let mut ranked: Vec<(RegionId, f64)> = nodes
        .iter()
        .map(|&n| {
            let singleton: BTreeSet<RegionId> = [n].into_iter().collect();
            (n, alpha_minus(flows, &singleton))
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    // Line 5-9: grow SEG while α⁻(SEG) ≤ 0.5.
    let mut seg: BTreeSet<RegionId> = BTreeSet::new();
    for (n, _) in &ranked {
        if seg.is_empty() || alpha_minus(flows, &seg) <= 0.5 {
            seg.insert(*n);
        } else {
            break;
        }
    }
    // Never swallow the whole set: leave at least one node for SEG'.
    if seg.len() == nodes.len() {
        if let Some(&(last, _)) = ranked.last() {
            seg.remove(&last);
        }
    }
    let seg_prime: BTreeSet<RegionId> = nodes.iter().copied().filter(|n| !seg.contains(n)).collect();
    Ok((seg, seg_prime))
}

/// Build a segmented [`HoseRequest`] from a flow series using Algorithm 1.
///
/// `total` is the hose constraint (e.g. the forecast egress demand).
/// Capacities: first segment gets `α⁺(SEG) × total`, second the
/// complement, so caps sum exactly to `total`.
///
/// ```
/// use entitlement_core::{Direction, NpgId, QosClass, Rate, RegionId};
/// use entitlement_hose::segment::{segment_flow_series, FlowSeries};
///
/// // Two stable destination groups: {r1, r2} carry ~2/3 of the flow.
/// let mut flows = FlowSeries::new();
/// flows.insert(RegionId(1), vec![300.0, 310.0, 295.0]);
/// flows.insert(RegionId(2), vec![100.0, 95.0, 105.0]);
/// flows.insert(RegionId(3), vec![200.0, 205.0, 195.0]);
///
/// let hose = segment_flow_series(
///     NpgId(1), QosClass::C1, RegionId(0), Direction::Egress,
///     Rate::gbps(600.0), &flows,
/// ).unwrap();
/// assert_eq!(hose.segments.len(), 2);
/// // Segmentation reserves less than the general hose's 3 × 600 G.
/// assert!(hose.reserved_capacity().as_gbps() < 1800.0);
/// ```
pub fn segment_flow_series(
    npg: NpgId,
    qos: QosClass,
    region: RegionId,
    direction: Direction,
    total: Rate,
    flows: &FlowSeries,
) -> Result<HoseRequest> {
    let (seg, seg_prime) = two_segments(flows)?;
    let alpha = alpha_plus(flows, &seg).clamp(0.0, 1.0);
    // Degenerate splits (α = 0 or 1) carry no benefit; keep them valid by
    // nudging into the open interval.
    let alpha = alpha.clamp(1e-6, 1.0 - 1e-6);
    let segments = vec![
        HoseSegment {
            regions: seg,
            cap: total * alpha,
        },
        HoseSegment {
            regions: seg_prime,
            cap: total * (1.0 - alpha),
        },
    ];
    let hose = HoseRequest {
        npg,
        qos,
        region,
        direction,
        total,
        segments,
    };
    hose.validate()?;
    Ok(hose)
}

/// Generalized N-way segmentation (the paper's future-work extension):
/// recursively apply the two-way split to the largest remaining segment
/// until `n` segments exist or no segment can be split further. Segment
/// caps are renormalized so they sum to `total`.
pub fn segment_n_way(
    npg: NpgId,
    qos: QosClass,
    region: RegionId,
    direction: Direction,
    total: Rate,
    flows: &FlowSeries,
    n: usize,
) -> Result<HoseRequest> {
    if n < 2 {
        let remotes: Vec<RegionId> = flows.keys().copied().collect();
        if remotes.is_empty() {
            return Err(EntitlementError::EmptyDestinationSet);
        }
        return Ok(HoseRequest::general(npg, qos, region, direction, total, remotes));
    }
    // Start from the 2-way split, then keep splitting.
    let base = segment_flow_series(npg, qos, region, direction, total, flows)?;
    let mut segments: Vec<(BTreeSet<RegionId>, f64)> = base
        .segments
        .iter()
        .map(|s| (s.regions.clone(), s.cap.as_bps()))
        .collect();

    while segments.len() < n {
        // Pick the splittable segment with the most regions.
        let Some(idx) = segments
            .iter()
            .enumerate()
            .filter(|(_, (r, _))| r.len() >= 2)
            .max_by_key(|(_, (r, _))| r.len())
            .map(|(i, _)| i)
        else {
            break;
        };
        let (regions, cap) = segments.remove(idx);
        // Restrict the flow series to this segment's regions.
        let sub: FlowSeries = flows
            .iter()
            .filter(|(r, _)| regions.contains(r))
            .map(|(r, v)| (*r, v.clone()))
            .collect();
        match two_segments(&sub) {
            Ok((a, b)) if !a.is_empty() && !b.is_empty() => {
                let alpha = alpha_plus(&sub, &a).clamp(1e-6, 1.0 - 1e-6);
                segments.push((a, cap * alpha));
                segments.push((b, cap * (1.0 - alpha)));
            }
            _ => {
                segments.push((regions, cap));
                break;
            }
        }
    }

    // Renormalize caps to the hose total (guards against float drift).
    let cap_sum: f64 = segments.iter().map(|(_, c)| c).sum();
    let hose = HoseRequest {
        npg,
        qos,
        region,
        direction,
        total,
        segments: segments
            .into_iter()
            .map(|(regions, c)| HoseSegment {
                regions,
                cap: total * (c / cap_sum),
            })
            .collect(),
    };
    hose.validate()?;
    Ok(hose)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stable flows: {B: 300, C: 100} vs {D: 250, E: 250} with mild noise
    /// that keeps each group's share within a tight band — the Fig 6 shape.
    fn fig6_series() -> FlowSeries {
        let mut flows = FlowSeries::new();
        let t_len = 24;
        let wiggle = |i: usize, base: f64| base * (1.0 + 0.05 * ((i % 3) as f64 - 1.0));
        flows.insert(RegionId(1), (0..t_len).map(|i| wiggle(i, 300.0)).collect());
        flows.insert(RegionId(2), (0..t_len).map(|i| wiggle(i, 100.0)).collect());
        flows.insert(RegionId(3), (0..t_len).map(|i| wiggle(i + 1, 250.0)).collect());
        flows.insert(RegionId(4), (0..t_len).map(|i| wiggle(i + 2, 250.0)).collect());
        flows
    }

    #[test]
    fn alpha_bounds_ordered() {
        let flows = fig6_series();
        let s: BTreeSet<RegionId> = [RegionId(3), RegionId(4)].into_iter().collect();
        let lo = alpha_minus(&flows, &s);
        let hi = alpha_plus(&flows, &s);
        assert!(lo <= hi);
        assert!((0.0..=1.0).contains(&lo));
        assert!((0.0..=1.0).contains(&hi));
    }

    #[test]
    fn complements_sum_to_one() {
        // α⁺(S) + α⁻(S') = 1 — equation (3)'s identity.
        let flows = fig6_series();
        let s: BTreeSet<RegionId> = [RegionId(1), RegionId(2)].into_iter().collect();
        let s_prime: BTreeSet<RegionId> = [RegionId(3), RegionId(4)].into_iter().collect();
        assert!((alpha_plus(&flows, &s) + alpha_minus(&flows, &s_prime) - 1.0).abs() < 1e-9);
        assert!((alpha_minus(&flows, &s) + alpha_plus(&flows, &s_prime) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_segments_partition_everything() {
        let flows = fig6_series();
        let (a, b) = two_segments(&flows).unwrap();
        assert!(!a.is_empty() && !b.is_empty());
        assert!(a.is_disjoint(&b));
        assert_eq!(a.len() + b.len(), 4);
        // First segment crosses the 0.5 boundary.
        assert!(alpha_minus(&flows, &a) > 0.5 || a.len() == 3);
    }

    #[test]
    fn segmented_hose_beats_general_hose_capacity() {
        let flows = fig6_series();
        let hose = segment_flow_series(
            NpgId(1),
            QosClass::C1,
            RegionId(0),
            Direction::Egress,
            Rate::gbps(900.0),
            &flows,
        )
        .unwrap();
        let general = HoseRequest::general(
            NpgId(1),
            QosClass::C1,
            RegionId(0),
            Direction::Egress,
            Rate::gbps(900.0),
            flows.keys().copied(),
        );
        assert!(
            hose.reserved_capacity().as_bps() < general.reserved_capacity().as_bps(),
            "segmented {} must beat general {}",
            hose.reserved_capacity(),
            general.reserved_capacity()
        );
        // Fig 6 ballpark: roughly half of 3600G.
        let ratio = hose.reserved_capacity() / general.reserved_capacity();
        assert!(
            (0.4..=0.65).contains(&ratio),
            "reduction ratio {ratio} out of Fig 6 band"
        );
    }

    #[test]
    fn n_way_splits_do_not_lose_regions() {
        let flows = fig6_series();
        for n in 2..=4 {
            let hose = segment_n_way(
                NpgId(1),
                QosClass::C1,
                RegionId(0),
                Direction::Egress,
                Rate::gbps(900.0),
                &flows,
                n,
            )
            .unwrap();
            assert_eq!(hose.remotes().len(), 4, "n={n}");
            assert!(hose.segments.len() <= n);
            hose.validate().unwrap();
        }
    }

    #[test]
    fn more_segments_reserve_no_more_capacity() {
        let flows = fig6_series();
        let mk = |n| {
            segment_n_way(
                NpgId(1),
                QosClass::C1,
                RegionId(0),
                Direction::Egress,
                Rate::gbps(900.0),
                &flows,
                n,
            )
            .unwrap()
            .reserved_capacity()
            .as_bps()
        };
        let two = mk(2);
        let four = mk(4);
        assert!(four <= two + 1.0, "4-way {four} vs 2-way {two}");
    }

    #[test]
    fn single_destination_errors() {
        let mut flows = FlowSeries::new();
        flows.insert(RegionId(1), vec![1.0, 2.0]);
        assert!(two_segments(&flows).is_err());
    }

    #[test]
    fn n1_returns_general_hose() {
        let flows = fig6_series();
        let hose = segment_n_way(
            NpgId(1),
            QosClass::C1,
            RegionId(0),
            Direction::Egress,
            Rate::gbps(900.0),
            &flows,
            1,
        )
        .unwrap();
        assert_eq!(hose.segments.len(), 1);
        assert!((hose.reserved_capacity().as_gbps() - 3600.0).abs() < 1e-6);
    }
}
