//! Pipe and hose request types.
//!
//! A *pipe* request reserves bandwidth between one (src, dst) pair — it is
//! precise but rigid: moving traffic requires renegotiating with the
//! network team (paper §4.2 strawman 1). A *hose* request caps a region's
//! aggregate ingress or egress and lets the service move traffic freely
//! between destinations (strawman 2) at the price of reserving the cap
//! toward every destination. The *segmented hose* partitions destinations
//! into segments, each with its own sub-cap: flexibility within a
//! segment, efficiency across segments.

use entitlement_core::{Direction, NpgId, QosClass, Rate, RegionId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A pipe request: bandwidth between one source-destination pair.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PipeRequest {
    /// Owning service.
    pub npg: NpgId,
    /// Traffic class.
    pub qos: QosClass,
    /// Source region.
    pub src: RegionId,
    /// Destination region.
    pub dst: RegionId,
    /// Requested bandwidth.
    pub rate: Rate,
}

/// One segment of a (segmented) hose: a subset of remote regions sharing
/// a sub-cap.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HoseSegment {
    /// The remote regions covered by this segment.
    pub regions: BTreeSet<RegionId>,
    /// The segment's bandwidth cap (α × hose constraint).
    pub cap: Rate,
}

/// A hose request for one `(NPG, QoS, region, direction)`.
///
/// A general hose is a single segment covering every remote region with
/// `cap == total`. A segmented hose partitions the remote regions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HoseRequest {
    /// Owning service.
    pub npg: NpgId,
    /// Traffic class.
    pub qos: QosClass,
    /// The region whose aggregate this hose caps.
    pub region: RegionId,
    /// Egress (traffic out of `region`) or ingress (into it).
    pub direction: Direction,
    /// The total hose constraint.
    pub total: Rate,
    /// Segments partitioning the remote region set; caps sum to `total`.
    pub segments: Vec<HoseSegment>,
}

impl HoseRequest {
    /// Build a *general* hose: one segment spanning `remotes`.
    pub fn general(
        npg: NpgId,
        qos: QosClass,
        region: RegionId,
        direction: Direction,
        total: Rate,
        remotes: impl IntoIterator<Item = RegionId>,
    ) -> Self {
        HoseRequest {
            npg,
            qos,
            region,
            direction,
            total,
            segments: vec![HoseSegment {
                regions: remotes.into_iter().collect(),
                cap: total,
            }],
        }
    }

    /// All remote regions across segments.
    pub fn remotes(&self) -> BTreeSet<RegionId> {
        self.segments
            .iter()
            .flat_map(|s| s.regions.iter().copied())
            .collect()
    }

    /// Validates the segment structure: non-empty disjoint segments whose
    /// caps sum to the hose total.
    pub fn validate(&self) -> entitlement_core::Result<()> {
        if self.segments.is_empty() || self.segments.iter().any(|s| s.regions.is_empty()) {
            return Err(entitlement_core::EntitlementError::EmptyDestinationSet);
        }
        let mut seen = BTreeSet::new();
        for s in &self.segments {
            for r in &s.regions {
                if !seen.insert(*r) {
                    return Err(entitlement_core::EntitlementError::Invariant(format!(
                        "region {r} appears in multiple segments"
                    )));
                }
            }
        }
        let cap_sum: Rate = self.segments.iter().map(|s| s.cap).sum();
        if (cap_sum.as_bps() - self.total.as_bps()).abs() > 1e-6 * self.total.as_bps().max(1.0) {
            return Err(entitlement_core::EntitlementError::Invariant(format!(
                "segment caps {cap_sum} do not sum to hose total {}",
                self.total
            )));
        }
        Ok(())
    }

    /// Capacity the network must reserve to honor this hose: each segment
    /// may send its full cap to *any* member destination, so the reserve
    /// is `Σ_seg |seg| × cap_seg` (paper Fig 6: general hose 4 × 900G =
    /// 3600G; segmented {B,C}@400 + {D,E}@500 = 2×400 + 2×500 = 1800G).
    pub fn reserved_capacity(&self) -> Rate {
        self.segments
            .iter()
            .map(|s| s.cap * s.regions.len() as f64)
            .sum()
    }

    /// Reserved capacity of the *pipe* model for the same demand: just
    /// the sum of the pipes (Fig 6: 900G).
    pub fn pipe_reserved_capacity(pipes: &[PipeRequest]) -> Rate {
        pipes.iter().map(|p| p.rate).sum()
    }

    /// The flexibility headroom toward one destination: the most this
    /// hose allows to be sent to `dst` (its segment's full cap), or zero
    /// if `dst` is not covered.
    pub fn max_toward(&self, dst: RegionId) -> Rate {
        self.segments
            .iter()
            .find(|s| s.regions.contains(&dst))
            .map_or(Rate::ZERO, |s| s.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig 6 example: Ads in region A sending to B/C/D/E.
    fn fig6_pipes() -> Vec<PipeRequest> {
        let mk = |dst: u16, g: f64| PipeRequest {
            npg: NpgId(1),
            qos: QosClass::C1,
            src: RegionId(0),
            dst: RegionId(dst),
            rate: Rate::gbps(g),
        };
        vec![mk(1, 300.0), mk(2, 100.0), mk(3, 250.0), mk(4, 250.0)]
    }

    fn fig6_segmented() -> HoseRequest {
        HoseRequest {
            npg: NpgId(1),
            qos: QosClass::C1,
            region: RegionId(0),
            direction: Direction::Egress,
            total: Rate::gbps(900.0),
            segments: vec![
                HoseSegment {
                    regions: [RegionId(1), RegionId(2)].into_iter().collect(),
                    cap: Rate::gbps(400.0),
                },
                HoseSegment {
                    regions: [RegionId(3), RegionId(4)].into_iter().collect(),
                    cap: Rate::gbps(500.0),
                },
            ],
        }
    }

    #[test]
    fn fig6_pipe_model_reserves_900() {
        let pipes = fig6_pipes();
        assert!((HoseRequest::pipe_reserved_capacity(&pipes).as_gbps() - 900.0).abs() < 1e-9);
    }

    #[test]
    fn fig6_general_hose_reserves_3600() {
        let hose = HoseRequest::general(
            NpgId(1),
            QosClass::C1,
            RegionId(0),
            Direction::Egress,
            Rate::gbps(900.0),
            (1..=4).map(RegionId),
        );
        hose.validate().unwrap();
        assert!((hose.reserved_capacity().as_gbps() - 3600.0).abs() < 1e-9);
    }

    #[test]
    fn fig6_segmented_hose_reserves_1800() {
        let hose = fig6_segmented();
        hose.validate().unwrap();
        assert!((hose.reserved_capacity().as_gbps() - 1800.0).abs() < 1e-9);
    }

    #[test]
    fn max_toward_respects_segments() {
        let hose = fig6_segmented();
        // B and C can each receive the full 400G (intra-segment agility).
        assert!((hose.max_toward(RegionId(1)).as_gbps() - 400.0).abs() < 1e-9);
        assert!((hose.max_toward(RegionId(3)).as_gbps() - 500.0).abs() < 1e-9);
        assert_eq!(hose.max_toward(RegionId(9)), Rate::ZERO);
    }

    #[test]
    fn validation_catches_bad_structure() {
        let mut hose = fig6_segmented();
        // Overlapping segments.
        hose.segments[1].regions.insert(RegionId(1));
        assert!(hose.validate().is_err());

        let mut hose2 = fig6_segmented();
        hose2.segments[0].cap = Rate::gbps(999.0);
        assert!(hose2.validate().is_err(), "caps must sum to total");

        let mut hose3 = fig6_segmented();
        hose3.segments.clear();
        assert!(hose3.validate().is_err());
    }

    #[test]
    fn remotes_union() {
        let hose = fig6_segmented();
        let r = hose.remotes();
        assert_eq!(r.len(), 4);
        assert!(r.contains(&RegionId(4)));
    }
}
