//! Ingress/egress hose balancing (paper §8, "Unbalanced ingress and
//! egress Hoses").
//!
//! Forecasts are made per hose independently, so the summed egress and
//! summed ingress demands disagree even though physically every bit sent
//! is received: "To maintain the correctness of the algorithm, we add a
//! preprocessing to balance the ingress and egress by inflating the
//! shortage direction... This delta of the demand is modeled as a dummy
//! service and is evenly attributed to all regions."

use entitlement_core::{Rate, RegionId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of balancing: adjusted per-region totals plus the dummy volume
/// that was added.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BalancedHoses {
    /// Per-region egress totals after balancing.
    pub egress: BTreeMap<RegionId, Rate>,
    /// Per-region ingress totals after balancing.
    pub ingress: BTreeMap<RegionId, Rate>,
    /// Total dummy-service volume added (zero when already balanced).
    pub dummy_volume: Rate,
    /// Which direction was inflated.
    pub inflated_egress: bool,
}

/// Balance total ingress and egress by inflating the shortage direction
/// evenly across all regions present in that direction's map.
pub fn balance_hoses(
    egress: &BTreeMap<RegionId, Rate>,
    ingress: &BTreeMap<RegionId, Rate>,
) -> BalancedHoses {
    let eg_total: Rate = egress.values().copied().sum();
    let in_total: Rate = ingress.values().copied().sum();
    let mut eg = egress.clone();
    let mut ing = ingress.clone();
    let delta = (eg_total - in_total).clamp_zero().max((in_total - eg_total).clamp_zero());

    let inflated_egress = eg_total < in_total;
    if !delta.is_zero() {
        if inflated_egress {
            let n = eg.len().max(1) as f64;
            let share = delta / n;
            for v in eg.values_mut() {
                *v += share;
            }
        } else {
            let n = ing.len().max(1) as f64;
            let share = delta / n;
            for v in ing.values_mut() {
                *v += share;
            }
        }
    }
    BalancedHoses {
        egress: eg,
        ingress: ing,
        dummy_volume: delta,
        inflated_egress,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(entries: &[(u16, f64)]) -> BTreeMap<RegionId, Rate> {
        entries
            .iter()
            .map(|&(r, g)| (RegionId(r), Rate::gbps(g)))
            .collect()
    }

    fn total(map: &BTreeMap<RegionId, Rate>) -> f64 {
        map.values().map(|r| r.as_gbps()).sum()
    }

    #[test]
    fn inflates_the_shortage_direction() {
        // Egress 100, ingress 160 -> inflate egress by 60.
        let out = balance_hoses(&m(&[(0, 40.0), (1, 60.0)]), &m(&[(2, 160.0)]));
        assert!(out.inflated_egress);
        assert!((out.dummy_volume.as_gbps() - 60.0).abs() < 1e-9);
        assert!((total(&out.egress) - 160.0).abs() < 1e-9);
        assert!((total(&out.ingress) - 160.0).abs() < 1e-9);
        // Evenly attributed: +30 each.
        assert!((out.egress[&RegionId(0)].as_gbps() - 70.0).abs() < 1e-9);
        assert!((out.egress[&RegionId(1)].as_gbps() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn inflates_ingress_when_short() {
        let out = balance_hoses(&m(&[(0, 100.0)]), &m(&[(1, 30.0), (2, 30.0)]));
        assert!(!out.inflated_egress);
        assert!((out.dummy_volume.as_gbps() - 40.0).abs() < 1e-9);
        assert!((total(&out.ingress) - 100.0).abs() < 1e-9);
        assert!((out.ingress[&RegionId(1)].as_gbps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_input_is_untouched() {
        let eg = m(&[(0, 50.0), (1, 50.0)]);
        let ing = m(&[(2, 100.0)]);
        let out = balance_hoses(&eg, &ing);
        assert!(out.dummy_volume.is_zero());
        assert_eq!(out.egress, eg);
        assert_eq!(out.ingress, ing);
    }

    #[test]
    fn conservation_always_holds() {
        // Property: after balancing, totals match for arbitrary inputs.
        for seed in 0..20u64 {
            let mut rng = entitlement_core::DetRng::new(seed);
            let eg: BTreeMap<RegionId, Rate> = (0..5)
                .map(|i| (RegionId(i), Rate::gbps(rng.range(0.0, 100.0))))
                .collect();
            let ing: BTreeMap<RegionId, Rate> = (5..9)
                .map(|i| (RegionId(i), Rate::gbps(rng.range(0.0, 100.0))))
                .collect();
            let out = balance_hoses(&eg, &ing);
            assert!(
                (total(&out.egress) - total(&out.ingress)).abs() < 1e-9,
                "seed {seed}"
            );
        }
    }
}
