//! Greedy representative-TM selection.
//!
//! Random boundary sampling (the [`crate::tmgen`] baseline) needs many
//! TMs because samples overlap. The planning system the paper builds on
//! (\[1\]) *selects* a small representative set that still "covers a
//! significant portion of the Hose polytope". This module implements the
//! classic greedy max-coverage selection: from a large candidate pool,
//! repeatedly pick the TM that newly dominates the most probe points.
//! Greedy max-coverage carries the (1 − 1/e) approximation guarantee, so
//! the selected set is provably close to the best possible of its size.

use crate::coverage::{dominates, probe_points, DOMINATION_TOLERANCE};
use crate::polytope::HosePoint;
use crate::request::HoseRequest;
use crate::tmgen::{generate_tms, TmGenConfig};
use serde::{Deserialize, Serialize};

/// Selection configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SelectConfig {
    /// Candidate pool size (random boundary samples to choose from).
    pub candidates: usize,
    /// Probe points used to score coverage.
    pub probes: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for SelectConfig {
    fn default() -> Self {
        SelectConfig {
            candidates: 2000,
            probes: 500,
            seed: 0x5E1E,
        }
    }
}

/// Result of a greedy selection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Selection {
    /// The chosen TMs, in selection order.
    pub tms: Vec<HosePoint>,
    /// Coverage after each selection (monotone).
    pub coverage_curve: Vec<f64>,
}

/// Greedily select up to `k` TMs maximizing probe coverage; stops early
/// when `target` coverage is reached or no candidate adds anything.
pub fn greedy_select(
    hose: &HoseRequest,
    k: usize,
    target: f64,
    config: &SelectConfig,
) -> Selection {
    let candidates = generate_tms(
        hose,
        &TmGenConfig {
            count: config.candidates,
            seed: config.seed,
            ..Default::default()
        },
    );
    let probes = probe_points(hose, config.probes, config.seed ^ 0x9E3779B9);

    // covered_by[c] = bitmask-ish vec of probes candidate c dominates.
    let covered_by: Vec<Vec<usize>> = candidates
        .iter()
        .map(|tm| {
            probes
                .iter()
                .enumerate()
                .filter(|(_, p)| dominates(tm, p, DOMINATION_TOLERANCE))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    let mut probe_covered = vec![false; probes.len()];
    let mut chosen: Vec<usize> = Vec::new();
    let mut curve = Vec::new();
    let mut covered_count = 0usize;

    for _ in 0..k {
        // Candidate with the largest marginal gain.
        let best = (0..candidates.len())
            .filter(|c| !chosen.contains(c))
            .map(|c| {
                let gain = covered_by[c]
                    .iter()
                    .filter(|&&p| !probe_covered[p])
                    .count();
                (c, gain)
            })
            .max_by_key(|&(c, gain)| (gain, std::cmp::Reverse(c)));
        let Some((c, gain)) = best else { break };
        if gain == 0 {
            break;
        }
        for &p in &covered_by[c] {
            if !probe_covered[p] {
                probe_covered[p] = true;
                covered_count += 1;
            }
        }
        chosen.push(c);
        let cov = covered_count as f64 / probes.len() as f64;
        curve.push(cov);
        if cov >= target {
            break;
        }
    }
    Selection {
        tms: chosen.into_iter().map(|c| candidates[c].clone()).collect(),
        coverage_curve: curve,
    }
}

/// The number of greedily-selected TMs needed for `target` coverage
/// (`None` when the candidate pool cannot reach it).
pub fn selected_tms_for_coverage(
    hose: &HoseRequest,
    target: f64,
    config: &SelectConfig,
) -> Option<usize> {
    let sel = greedy_select(hose, config.candidates, target, config);
    if sel.coverage_curve.last().copied().unwrap_or(0.0) >= target {
        Some(sel.tms.len())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::tms_for_coverage;
    use entitlement_core::{Direction, NpgId, QosClass, Rate, RegionId};

    fn hose(dests: u16) -> HoseRequest {
        HoseRequest::general(
            NpgId(1),
            QosClass::C1,
            RegionId(0),
            Direction::Egress,
            Rate::gbps(900.0),
            (1..=dests).map(RegionId),
        )
    }

    #[test]
    fn curve_is_monotone_with_diminishing_gains() {
        let sel = greedy_select(&hose(5), 50, 1.0, &SelectConfig {
            candidates: 500,
            probes: 300,
            ..Default::default()
        });
        assert!(!sel.tms.is_empty());
        for w in sel.coverage_curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Greedy property: marginal gains never increase.
        let mut prev_gain = f64::INFINITY;
        let mut last = 0.0;
        for &c in &sel.coverage_curve {
            let gain = c - last;
            assert!(gain <= prev_gain + 1e-9, "greedy gains must shrink");
            prev_gain = gain;
            last = c;
        }
    }

    #[test]
    fn greedy_beats_random_sampling_substantially() {
        let h = hose(6);
        let target = 0.75;
        let random_n =
            tms_for_coverage(&h, target, 4000, 400, 0x5E1E).expect("random reaches target");
        let greedy_n = selected_tms_for_coverage(
            &h,
            target,
            &SelectConfig {
                candidates: 2000,
                probes: 400,
                seed: 0x5E1E,
            },
        )
        .expect("greedy reaches target");
        assert!(
            (greedy_n as f64) < (random_n as f64) * 0.25,
            "greedy {greedy_n} vs random {random_n}"
        );
    }

    #[test]
    fn selection_respects_budget_and_target() {
        let sel = greedy_select(&hose(4), 3, 1.0, &SelectConfig {
            candidates: 300,
            probes: 200,
            ..Default::default()
        });
        assert!(sel.tms.len() <= 3);
        let sel2 = greedy_select(&hose(4), 100, 0.3, &SelectConfig {
            candidates: 300,
            probes: 200,
            ..Default::default()
        });
        // Stopped at the target, not the budget.
        assert!(sel2.coverage_curve.last().unwrap() >= &0.3);
        assert!(sel2.tms.len() < 100);
    }

    #[test]
    fn deterministic() {
        let a = greedy_select(&hose(5), 10, 1.0, &SelectConfig::default());
        let b = greedy_select(&hose(5), 10, 1.0, &SelectConfig::default());
        assert_eq!(a.tms, b.tms);
    }
}
