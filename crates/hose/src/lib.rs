//! # entitlement-hose
//!
//! Contract representations (paper §4.2): the pipe model, the general
//! hose model, and the paper's contribution — the **segmented hose** —
//! plus the machinery the approval engine needs around them:
//!
//! * [`request`] — pipe and hose request types; reserved-capacity
//!   accounting that reproduces the paper's Fig 6 arithmetic
//!   (pipe 900G → hose 3600G → segmented hose 1800G);
//! * [`segment`] — Algorithm 1: the greedy two-segment split on the
//!   α⁻(S) > 0.5 boundary, generalized to N segments by recursive
//!   splitting (the paper's future-work extension, used for ablations);
//! * [`polytope`] — the hose polytope: membership tests, reserved
//!   capacity, and log-volume (volume reduction is the paper's stated
//!   objective for segmentation);
//! * [`tmgen`] — the Demand Generation Service stand-in: representative
//!   traffic matrices sampled from the polytope boundary, vertex-biased;
//! * [`coverage`] — the hose-coverage metric of Fig 20–21: the fraction
//!   of the hose space dominated by a set of representative TMs, and the
//!   TM count needed to reach a coverage target;
//! * [`balance`] — §8's ingress/egress balancing preprocessing (dummy
//!   service attribution).

#![forbid(unsafe_code)]

pub mod balance;
pub mod coverage;
pub mod polytope;
pub mod request;
pub mod segment;
pub mod select;
pub mod tmgen;

pub use coverage::{coverage_of, tms_for_coverage};
pub use polytope::HosePolytope;
pub use request::{HoseRequest, HoseSegment, PipeRequest};
pub use segment::{segment_flow_series, segment_n_way, FlowSeries};
pub use select::{greedy_select, selected_tms_for_coverage, SelectConfig, Selection};
pub use tmgen::{generate_tms, TmGenConfig};
