//! The hose-coverage metric (paper §7.2, metric from \[24\]).
//!
//! "Hose coverage evaluates the degree to which the generated traffic
//! matrices cover the entire Hose space. Ideally, we want to use a small
//! subset of representative TMs to cover a large Hose space."
//!
//! Operationally: if the network is planned to carry every TM in the
//! representative set, then any *actual* traffic realization that is
//! component-wise dominated by some representative TM is guaranteed
//! feasible. Coverage of a TM set is therefore the probability that a
//! random demand realization of the hose is dominated by at least one
//! representative TM, estimated by Monte Carlo with a fixed probe set.
//!
//! Two calibration choices make the metric match production practice
//! (and the Fig 21 curve shape — diminishing returns approaching high
//! coverage around 2000 TMs):
//!
//! * probes are demand realizations at up to [`PROBE_MAX_UTILIZATION`] of
//!   the hose (live traffic does not pin the planned envelope; planners
//!   leave headroom), and
//! * domination allows [`DOMINATION_TOLERANCE`] relative headroom,
//!   matching the over-provisioning slack link capacity planning already
//!   carries.

use crate::polytope::HosePoint;
use crate::request::HoseRequest;
use crate::tmgen::{generate_tms, TmGenConfig};
use entitlement_core::{DetRng, RegionId};

/// Probes realize at most this fraction of each segment cap.
pub const PROBE_MAX_UTILIZATION: f64 = 0.85;
/// Relative headroom allowed when testing domination.
pub const DOMINATION_TOLERANCE: f64 = 0.1;

/// Whether `a` dominates `b` component-wise (every destination of `b`
/// receives at most `(1 + tol)` times what `a` provides).
pub fn dominates(a: &HosePoint, b: &HosePoint, tol: f64) -> bool {
    b.iter().all(|(r, vb)| {
        let va = a.get(r).copied().unwrap_or(entitlement_core::Rate::ZERO);
        va.as_bps() * (1.0 + tol) + 1e-6 >= vb.as_bps()
    })
}

/// Draw `n` probe points from the hose polytope: per segment a uniform
/// simplex direction (Dirichlet α=1) scaled by `u^(1/dim)` radial density
/// and capped at [`PROBE_MAX_UTILIZATION`] of the segment cap.
pub fn probe_points(hose: &HoseRequest, n: usize, seed: u64) -> Vec<HosePoint> {
    let mut rng = DetRng::new(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut point = HosePoint::new();
        for seg in &hose.segments {
            let members: Vec<RegionId> = seg.regions.iter().copied().collect();
            let dim = members.len() as f64;
            // Uniform over the simplex face, then shrink radially.
            let mut weights: Vec<f64> = (0..members.len())
                .map(|_| -rng.f64().max(1e-300).ln())
                .collect();
            let s: f64 = weights.iter().sum();
            weights.iter_mut().for_each(|w| *w /= s);
            let radial = rng.f64().powf(1.0 / dim) * PROBE_MAX_UTILIZATION;
            for (r, w) in members.into_iter().zip(weights) {
                point.insert(r, seg.cap * (w * radial));
            }
        }
        out.push(point);
    }
    out
}

/// Coverage of a TM set: fraction of probes dominated by ≥1 TM (with the
/// standard [`DOMINATION_TOLERANCE`]).
pub fn coverage_of(tms: &[HosePoint], probes: &[HosePoint]) -> f64 {
    if probes.is_empty() {
        return 0.0;
    }
    let covered = probes
        .iter()
        .filter(|p| tms.iter().any(|tm| dominates(tm, p, DOMINATION_TOLERANCE)))
        .count();
    covered as f64 / probes.len() as f64
}

/// Incremental coverage curve: `out[k]` = coverage of the first `k+1`
/// generated TMs (the Fig 21 series).
pub fn coverage_curve(hose: &HoseRequest, max_tms: usize, probes: usize, seed: u64) -> Vec<f64> {
    let tms = generate_tms(
        hose,
        &TmGenConfig {
            count: max_tms,
            seed,
            ..Default::default()
        },
    );
    let probe = probe_points(hose, probes, seed ^ 0xABCD);
    // Track, per probe, whether any prefix TM dominates it.
    let mut covered = vec![false; probe.len()];
    let mut out = Vec::with_capacity(max_tms);
    let mut count = 0usize;
    for tm in &tms {
        for (i, p) in probe.iter().enumerate() {
            if !covered[i] && dominates(tm, p, DOMINATION_TOLERANCE) {
                covered[i] = true;
                count += 1;
            }
        }
        out.push(count as f64 / probe.len() as f64);
    }
    out
}

/// Number of TMs needed to reach `target` coverage (Fig 20's quantity);
/// `None` if `max_tms` never reaches it.
pub fn tms_for_coverage(
    hose: &HoseRequest,
    target: f64,
    max_tms: usize,
    probes: usize,
    seed: u64,
) -> Option<usize> {
    let curve = coverage_curve(hose, max_tms, probes, seed);
    curve.iter().position(|&c| c >= target).map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::HoseSegment;
    use crate::segment::{segment_flow_series, FlowSeries};
    use entitlement_core::{Direction, NpgId, QosClass, Rate};
    use std::collections::BTreeSet;

    fn general_hose(n_remotes: u16, total_g: f64) -> HoseRequest {
        HoseRequest::general(
            NpgId(1),
            QosClass::C1,
            RegionId(0),
            Direction::Egress,
            Rate::gbps(total_g),
            (1..=n_remotes).map(RegionId),
        )
    }

    #[test]
    fn domination_semantics() {
        let a: HosePoint = [(RegionId(1), Rate::gbps(10.0)), (RegionId(2), Rate::gbps(5.0))]
            .into_iter()
            .collect();
        let b: HosePoint = [(RegionId(1), Rate::gbps(8.0)), (RegionId(2), Rate::gbps(5.0))]
            .into_iter()
            .collect();
        assert!(dominates(&a, &b, 0.0));
        assert!(!dominates(&b, &a, 0.0));
        // Missing destination in the dominator fails.
        let c: HosePoint = [(RegionId(3), Rate::gbps(1.0))].into_iter().collect();
        assert!(!dominates(&a, &c, 0.0));
    }

    #[test]
    fn probes_lie_inside() {
        let hose = general_hose(4, 900.0);
        let poly = crate::polytope::HosePolytope::new(hose.clone()).unwrap();
        for p in probe_points(&hose, 200, 1) {
            assert!(poly.contains(&p, 1e-9));
        }
    }

    #[test]
    fn coverage_curve_is_monotone() {
        let hose = general_hose(4, 900.0);
        let curve = coverage_curve(&hose, 50, 300, 2);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(curve[49] > curve[0]);
    }

    #[test]
    fn coverage_has_diminishing_returns() {
        // Fig 21's shape: marginal gain shrinks as TMs pile up.
        let hose = general_hose(5, 900.0);
        let curve = coverage_curve(&hose, 200, 500, 3);
        let early_gain = curve[19] - curve[0];
        let late_gain = curve[199] - curve[180];
        assert!(
            early_gain > late_gain,
            "early {early_gain} vs late {late_gain}"
        );
    }

    #[test]
    fn segmented_hose_needs_fewer_tms() {
        // Fig 20's core claim. Build a concentrated flow series over six
        // destinations, segment it, and compare TM counts at 60% coverage.
        let mut flows = FlowSeries::new();
        let t_len = 12;
        for (i, base) in [400.0, 250.0, 120.0, 60.0, 40.0, 30.0].iter().enumerate() {
            let series: Vec<f64> = (0..t_len)
                .map(|t| base * (1.0 + 0.1 * ((t + i) % 4) as f64 / 4.0))
                .collect();
            flows.insert(RegionId(1 + i as u16), series);
        }
        let total = Rate::gbps(900.0);
        let segmented = segment_flow_series(
            NpgId(1),
            QosClass::C1,
            RegionId(0),
            Direction::Egress,
            total,
            &flows,
        )
        .unwrap();
        let general = general_hose(6, 900.0);

        let target = 0.6;
        let n_seg = tms_for_coverage(&segmented, target, 4000, 400, 5);
        let n_gen = tms_for_coverage(&general, target, 4000, 400, 5);
        let (n_seg, n_gen) = (n_seg.expect("segmented reaches 60%"), n_gen.expect("general reaches 60%"));
        assert!(
            n_seg < n_gen,
            "segmented needs {n_seg} TMs vs general {n_gen}"
        );
    }

    #[test]
    fn singleton_segments_cover_instantly() {
        // Hose where every segment has one destination: the single
        // boundary point dominates everything.
        let hose = HoseRequest {
            npg: NpgId(1),
            qos: QosClass::C1,
            region: RegionId(0),
            direction: Direction::Egress,
            total: Rate::gbps(100.0),
            segments: vec![
                HoseSegment {
                    regions: [RegionId(1)].into_iter().collect::<BTreeSet<_>>(),
                    cap: Rate::gbps(60.0),
                },
                HoseSegment {
                    regions: [RegionId(2)].into_iter().collect::<BTreeSet<_>>(),
                    cap: Rate::gbps(40.0),
                },
            ],
        };
        assert_eq!(tms_for_coverage(&hose, 0.99, 10, 200, 7), Some(1));
    }
}
