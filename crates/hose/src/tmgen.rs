//! Representative traffic-matrix generation — the Demand Generation
//! Service stand-in.
//!
//! `Hose_Approval` "first converts Hose requests into representative Pipe
//! requests using an algorithm introduced by Meta's long-term network
//! planning work. Its key idea is to narrow down infinite possible Pipe
//! realizations into a small set of representative ones, which still
//! covers a significant portion of the Hose polytope" (paper §4.3).
//!
//! We sample points on the polytope boundary: each segment's cap is fully
//! distributed among its member destinations with a vertex-biased stick-
//! breaking scheme (symmetric Dirichlet with concentration < 1), plus the
//! deterministic extreme points (all cap to one destination, uniform
//! spread) that planners always include.

use crate::polytope::HosePoint;
use crate::request::HoseRequest;
use entitlement_core::{DetRng, Rate, RegionId};
use serde::{Deserialize, Serialize};

/// Configuration for TM generation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TmGenConfig {
    /// Number of TMs to generate.
    pub count: usize,
    /// Dirichlet concentration; < 1 biases samples toward vertices
    /// (realistic — services concentrate traffic), 1 is uniform over the
    /// simplex face.
    pub concentration: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for TmGenConfig {
    fn default() -> Self {
        TmGenConfig {
            count: 100,
            concentration: 0.7,
            seed: 0x7361,
        }
    }
}

/// Sample a symmetric Dirichlet(α) vector of length `n` via Gamma draws
/// (Marsaglia–Tsang for α ≥ 1; boost trick for α < 1).
fn dirichlet(rng: &mut DetRng, n: usize, alpha: f64) -> Vec<f64> {
    let mut g: Vec<f64> = (0..n).map(|_| gamma(rng, alpha)).collect();
    let sum: f64 = g.iter().sum();
    if sum <= 0.0 {
        // Degenerate: put everything on a random coordinate.
        let mut v = vec![0.0; n];
        v[rng.usize(n)] = 1.0;
        return v;
    }
    g.iter_mut().for_each(|x| *x /= sum);
    g
}

fn gamma(rng: &mut DetRng, alpha: f64) -> f64 {
    if alpha < 1.0 {
        // Boost: Gamma(α) = Gamma(α+1) * U^(1/α).
        let u = rng.f64().max(1e-300);
        return gamma(rng, alpha + 1.0) * u.powf(1.0 / alpha);
    }
    // Marsaglia–Tsang.
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = rng.normal();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.f64().max(1e-300);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Generate `config.count` representative TMs for one hose.
///
/// The first TMs are deterministic extremes: one per destination sending
/// its segment's full cap to that destination alone, then the uniform
/// spread; the remainder are vertex-biased random boundary points. Every
/// returned point satisfies all segment constraints with equality
/// (boundary points dominate interior ones, so they are the efficient
/// representatives).
pub fn generate_tms(hose: &HoseRequest, config: &TmGenConfig) -> Vec<HosePoint> {
    let mut rng = DetRng::new(config.seed);
    let mut out: Vec<HosePoint> = Vec::with_capacity(config.count);

    // Extreme 1: per destination, its segment cap entirely on it; other
    // segments spread uniformly.
    let remotes: Vec<RegionId> = hose.remotes().into_iter().collect();
    for &vertex_dst in &remotes {
        if out.len() >= config.count {
            break;
        }
        let mut point = HosePoint::new();
        for seg in &hose.segments {
            if seg.regions.contains(&vertex_dst) {
                point.insert(vertex_dst, seg.cap);
                for &r in seg.regions.iter().filter(|&&r| r != vertex_dst) {
                    point.insert(r, Rate::ZERO);
                }
            } else {
                let share = seg.cap / seg.regions.len() as f64;
                for &r in &seg.regions {
                    point.insert(r, share);
                }
            }
        }
        out.push(point);
    }

    // Extreme 2: uniform spread everywhere.
    if out.len() < config.count {
        let mut point = HosePoint::new();
        for seg in &hose.segments {
            let share = seg.cap / seg.regions.len() as f64;
            for &r in &seg.regions {
                point.insert(r, share);
            }
        }
        out.push(point);
    }

    // Random boundary samples.
    while out.len() < config.count {
        let mut point = HosePoint::new();
        for seg in &hose.segments {
            let members: Vec<RegionId> = seg.regions.iter().copied().collect();
            let weights = dirichlet(&mut rng, members.len(), config.concentration);
            for (r, w) in members.into_iter().zip(weights) {
                point.insert(r, seg.cap * w);
            }
        }
        out.push(point);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polytope::HosePolytope;
    use crate::request::HoseSegment;
    use entitlement_core::{Direction, NpgId, QosClass};
    use std::collections::BTreeSet;

    fn hose() -> HoseRequest {
        HoseRequest {
            npg: NpgId(1),
            qos: QosClass::C1,
            region: RegionId(0),
            direction: Direction::Egress,
            total: Rate::gbps(900.0),
            segments: vec![
                HoseSegment {
                    regions: [RegionId(1), RegionId(2)].into_iter().collect::<BTreeSet<_>>(),
                    cap: Rate::gbps(400.0),
                },
                HoseSegment {
                    regions: [RegionId(3), RegionId(4)].into_iter().collect::<BTreeSet<_>>(),
                    cap: Rate::gbps(500.0),
                },
            ],
        }
    }

    #[test]
    fn all_tms_lie_in_the_polytope() {
        let h = hose();
        let poly = HosePolytope::new(h.clone()).unwrap();
        let tms = generate_tms(&h, &TmGenConfig::default());
        assert_eq!(tms.len(), 100);
        for tm in &tms {
            assert!(poly.contains(tm, 1e-9), "tm outside polytope: {tm:?}");
        }
    }

    #[test]
    fn tms_saturate_segment_caps() {
        let h = hose();
        let tms = generate_tms(&h, &TmGenConfig::default());
        for tm in &tms {
            for seg in &h.segments {
                let used: f64 = tm
                    .iter()
                    .filter(|(r, _)| seg.regions.contains(r))
                    .map(|(_, v)| v.as_bps())
                    .sum();
                assert!(
                    (used - seg.cap.as_bps()).abs() < 1e-3,
                    "boundary points must use the full cap"
                );
            }
        }
    }

    #[test]
    fn deterministic_extremes_present() {
        let h = hose();
        let tms = generate_tms(&h, &TmGenConfig::default());
        // First TM: all 400G of segment 1 to region 1.
        assert!((tms[0][&RegionId(1)].as_gbps() - 400.0).abs() < 1e-9);
        assert_eq!(tms[0][&RegionId(2)], Rate::ZERO);
        // Its segment-2 share is uniform.
        assert!((tms[0][&RegionId(3)].as_gbps() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn generation_is_deterministic() {
        let h = hose();
        let a = generate_tms(&h, &TmGenConfig::default());
        let b = generate_tms(&h, &TmGenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = DetRng::new(3);
        for alpha in [0.3, 0.7, 1.0, 3.0] {
            for _ in 0..100 {
                let v = dirichlet(&mut rng, 5, alpha);
                let s: f64 = v.iter().sum();
                assert!((s - 1.0).abs() < 1e-9);
                assert!(v.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn low_concentration_is_vertex_biased() {
        let mut rng = DetRng::new(4);
        let spread = |alpha: f64, rng: &mut DetRng| {
            let mut max_means = 0.0;
            let n = 500;
            for _ in 0..n {
                let v = dirichlet(rng, 4, alpha);
                max_means += v.iter().copied().fold(0.0, f64::max);
            }
            max_means / n as f64
        };
        let sharp = spread(0.2, &mut rng);
        let flat = spread(5.0, &mut rng);
        assert!(
            sharp > flat + 0.15,
            "low alpha should concentrate mass: {sharp} vs {flat}"
        );
    }
}
