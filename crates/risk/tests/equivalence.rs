//! The deterministic-equivalence harness: every `(workers, dedup)`
//! combination of the risk sweep must produce availability curves that
//! are **bitwise identical** to the serial, non-deduplicated baseline —
//! on enumerated and Monte-Carlo scenario sets, across seeds, with and
//! without background traffic.

use entitlement_core::Rate;
use entitlement_risk::{assess_risk_detailed, AvailabilityCurve, RiskConfig};
use entitlement_topology::routing::Demand;
use entitlement_topology::{BackboneSpec, ScenarioSet, Topology};

/// Collapse curves to raw bits so equality is exact, not approximate.
fn curve_bits(curves: &[AvailabilityCurve]) -> Vec<Vec<(u64, u64)>> {
    curves
        .iter()
        .map(|c| {
            c.samples()
                .iter()
                .map(|&(rate, p)| (rate.as_bps().to_bits(), p.to_bits()))
                .collect()
        })
        .collect()
}

/// A demand batch that stresses the router: per-region pipes of mixed
/// sizes, including one oversubscribed demand so partial admission and
/// residual bookkeeping both matter.
fn demand_batch(topo: &Topology, seed: u64) -> Vec<Demand> {
    let ids = topo.region_ids();
    let mut demands = Vec::new();
    for (i, &src) in ids.iter().enumerate() {
        let dst = ids[(i + 1 + (seed as usize % (ids.len() - 1))) % ids.len()];
        if dst == src {
            continue;
        }
        let gbps = 20.0 + 35.0 * (i as f64);
        demands.push(Demand {
            src,
            dst,
            amount: Rate::gbps(gbps),
        });
    }
    // One demand over the min-cut: admitted < requested even healthy.
    demands.push(Demand {
        src: ids[0],
        dst: ids[ids.len() - 1],
        amount: Rate::tbps(40.0),
    });
    demands
}

fn assert_equivalent(topo: &Topology, demands: &[Demand], scenarios: &ScenarioSet, label: &str) {
    for background in [
        Vec::new(),
        vec![Demand {
            src: topo.region_ids()[0],
            dst: topo.region_ids()[2],
            amount: Rate::tbps(5.0),
        }],
    ] {
        let baseline_cfg = RiskConfig {
            workers: 1,
            dedup: false,
            background: background.clone(),
            ..Default::default()
        };
        let baseline = assess_risk_detailed(topo, demands, scenarios, &baseline_cfg);
        let baseline_bits = curve_bits(&baseline.curves);
        assert_eq!(baseline.routed_scenarios, scenarios.len());

        for workers in [1usize, 2, 8] {
            for dedup in [false, true] {
                let cfg = RiskConfig {
                    workers,
                    dedup,
                    background: background.clone(),
                    ..Default::default()
                };
                let out = assess_risk_detailed(topo, demands, scenarios, &cfg);
                assert_eq!(
                    curve_bits(&out.curves),
                    baseline_bits,
                    "{label}: curves diverged at workers={workers} dedup={dedup} \
                     background={}",
                    !background.is_empty()
                );
                if dedup {
                    assert!(out.routed_scenarios <= out.total_scenarios);
                } else {
                    assert_eq!(out.routed_scenarios, out.total_scenarios);
                }
            }
        }
    }
}

#[test]
fn enumerated_scenarios_equivalent_across_knobs() {
    for seed in [3u64, 41, 0x22] {
        let topo = BackboneSpec::small(seed).build();
        let demands = demand_batch(&topo, seed);
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        assert!(!scenarios.is_empty());
        assert_equivalent(&topo, &demands, &scenarios, &format!("enumerate seed={seed}"));
    }
}

#[test]
fn monte_carlo_scenarios_equivalent_across_knobs() {
    for seed in [7u64, 0xDED0, 0xBEEF] {
        let topo = BackboneSpec::small(seed).build();
        let demands = demand_batch(&topo, seed);
        let scenarios = ScenarioSet::sample(&topo, 600, seed);
        assert_eq!(scenarios.len(), 600);
        assert_equivalent(
            &topo,
            &demands,
            &scenarios,
            &format!("monte-carlo seed={seed}"),
        );
    }
}

#[test]
fn monte_carlo_dedup_actually_collapses_scenarios() {
    // The win the bench banks on: Monte-Carlo draws repeat failure sets
    // (mostly the healthy network), so dedup must route far fewer.
    let topo = BackboneSpec::small(11).build();
    let demands = demand_batch(&topo, 11);
    let scenarios = ScenarioSet::sample(&topo, 2000, 0xD11);
    let out = assess_risk_detailed(
        &topo,
        &demands,
        &scenarios,
        &RiskConfig {
            workers: 2,
            dedup: true,
            ..Default::default()
        },
    );
    assert_eq!(out.total_scenarios, 2000);
    assert!(
        out.dedup_savings() > 0.5,
        "expected >50% of routings skipped, saved {:.1}%",
        out.dedup_savings() * 100.0
    );
}
