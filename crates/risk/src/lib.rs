//! # entitlement-risk
//!
//! The Risk Simulation System (RSS) interface the approval engine calls
//! (paper §4.3 / Algorithm 2 line 19 and reference \[24\]): given the
//! backbone topology with link reliabilities and a batch of pipe demands,
//! produce per-pipe **bandwidth availability curves** — for each volume
//! `b`, the steady-state probability that the surviving network can carry
//! at least `b` of that pipe when the whole batch is placed together.
//!
//! With the curves in hand, "the Pipe approval is calculated by finding
//! the flow volume associated with the desired SLO target".
//!
//! Mechanics: a [`ScenarioSet`](entitlement_topology::ScenarioSet)
//! (exhaustive single/dual fiber cuts or Monte-Carlo samples) is routed
//! scenario-by-scenario with the greedy k-shortest-path multipath router;
//! the admitted volume per pipe per scenario, weighted by scenario
//! probability, is the curve.

#![forbid(unsafe_code)]

pub mod curve;
pub mod simulate;
pub mod sweep;

pub use curve::AvailabilityCurve;
pub use simulate::{
    assess_risk, assess_risk_detailed, assess_risk_detailed_obs, assess_risk_samples_obs,
    RiskAssessment, RiskConfig, RiskSamples,
};
pub use sweep::{sweep_ordered_obs, UniqueScenarios};
