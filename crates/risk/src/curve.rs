//! Bandwidth availability curves.

use entitlement_core::Rate;
use serde::{Deserialize, Serialize};

/// The availability curve of one pipe: a probability-weighted set of
/// admitted volumes across failure scenarios.
///
/// `availability(b) = Σ { p(scenario) : admitted(scenario) ≥ b }`
///
/// ```
/// use entitlement_core::Rate;
/// use entitlement_risk::AvailabilityCurve;
///
/// // Healthy 95% of the time (full 10 G), degraded to 4 G otherwise.
/// let curve = AvailabilityCurve::from_samples(vec![
///     (Rate::gbps(10.0), 0.95),
///     (Rate::gbps(4.0), 0.05),
/// ]);
/// // A 99% SLO can only be promised 4 G; a 95% SLO gets the full 10 G.
/// assert_eq!(curve.bandwidth_at(0.99), Rate::gbps(4.0));
/// assert_eq!(curve.bandwidth_at(0.95), Rate::gbps(10.0));
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AvailabilityCurve {
    /// `(admitted volume, scenario probability)` samples; unsorted on
    /// input, sorted descending by volume internally.
    samples: Vec<(Rate, f64)>,
}

impl AvailabilityCurve {
    /// Build from raw `(admitted, probability)` samples.
    pub fn from_samples(mut samples: Vec<(Rate, f64)>) -> Self {
        samples.sort_by(|a, b| b.0.as_bps().total_cmp(&a.0.as_bps()));
        AvailabilityCurve { samples }
    }

    /// Probability that at least `rate` is admitted.
    pub fn availability_of(&self, rate: Rate) -> f64 {
        self.samples
            .iter()
            .take_while(|(r, _)| r.as_bps() >= rate.as_bps() - 1e-6)
            .map(|(_, p)| p)
            .sum()
    }

    /// The largest volume whose availability meets `slo` — the value the
    /// approval engine grants. Returns [`Rate::ZERO`] when even zero
    /// volume can't meet the target (empty curve).
    pub fn bandwidth_at(&self, slo: f64) -> Rate {
        let mut acc = 0.0;
        for &(rate, p) in &self.samples {
            acc += p;
            if acc >= slo - 1e-12 {
                return rate;
            }
        }
        // The SLO demands more probability mass than the scenarios carry
        // (or the curve is empty): nothing can be guaranteed.
        Rate::ZERO
    }

    /// Total probability mass (≈ 1 for a full scenario set).
    pub fn total_mass(&self) -> f64 {
        self.samples.iter().map(|(_, p)| p).sum()
    }

    /// The samples, sorted by volume descending.
    pub fn samples(&self) -> &[(Rate, f64)] {
        &self.samples
    }

    /// The curve as (volume, availability) points for plotting: for each
    /// distinct volume, the probability of admitting at least it.
    pub fn plot_points(&self) -> Vec<(Rate, f64)> {
        let mut out = Vec::with_capacity(self.samples.len());
        let mut acc = 0.0;
        for &(rate, p) in &self.samples {
            acc += p;
            out.push((rate, acc));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> AvailabilityCurve {
        // 90% of the time full 10G, 8% degraded to 6G, 2% down to 1G.
        AvailabilityCurve::from_samples(vec![
            (Rate::gbps(6.0), 0.08),
            (Rate::gbps(10.0), 0.90),
            (Rate::gbps(1.0), 0.02),
        ])
    }

    #[test]
    fn availability_is_cumulative_from_top() {
        let c = curve();
        assert!((c.availability_of(Rate::gbps(10.0)) - 0.90).abs() < 1e-12);
        assert!((c.availability_of(Rate::gbps(6.0)) - 0.98).abs() < 1e-12);
        assert!((c.availability_of(Rate::gbps(1.0)) - 1.00).abs() < 1e-12);
        assert!((c.availability_of(Rate::gbps(0.5)) - 1.00).abs() < 1e-12);
        assert_eq!(c.availability_of(Rate::gbps(11.0)), 0.0);
    }

    #[test]
    fn bandwidth_at_slo() {
        let c = curve();
        // 0.9 SLO → the full 10G qualifies.
        assert!((c.bandwidth_at(0.90).as_gbps() - 10.0).abs() < 1e-9);
        // 0.95 → must degrade to 6G.
        assert!((c.bandwidth_at(0.95).as_gbps() - 6.0).abs() < 1e-9);
        // 0.999 → only 1G survives everything.
        assert!((c.bandwidth_at(0.999).as_gbps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monotonicity_of_grant_in_slo() {
        let c = curve();
        let mut prev = f64::INFINITY;
        for slo in [0.5, 0.9, 0.95, 0.99, 0.9999] {
            let b = c.bandwidth_at(slo).as_bps();
            assert!(b <= prev, "grant must not grow with stricter SLO");
            prev = b;
        }
    }

    #[test]
    fn empty_curve_grants_zero() {
        let c = AvailabilityCurve::from_samples(vec![]);
        assert_eq!(c.bandwidth_at(0.99), Rate::ZERO);
        assert_eq!(c.total_mass(), 0.0);
    }

    #[test]
    fn impossible_slo_grants_zero() {
        // Scenarios only account for 0.9 of mass.
        let c = AvailabilityCurve::from_samples(vec![(Rate::gbps(5.0), 0.9)]);
        assert_eq!(c.bandwidth_at(0.99), Rate::ZERO);
    }

    #[test]
    fn plot_points_are_monotone() {
        let c = curve();
        let pts = c.plot_points();
        assert_eq!(pts.len(), 3);
        for w in pts.windows(2) {
            assert!(w[0].0.as_bps() >= w[1].0.as_bps());
            assert!(w[0].1 <= w[1].1);
        }
    }
}
