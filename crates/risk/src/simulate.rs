//! Scenario-sweep risk simulation.

use crate::curve::AvailabilityCurve;
use crate::sweep::{sweep_ordered_obs, UniqueScenarios};
use entitlement_core::Rate;
use entitlement_obs::Obs;
use entitlement_topology::routing::Demand;
use entitlement_topology::{route_matrix, route_matrix_on_residual, ScenarioSet, Topology};
use serde::{Deserialize, Serialize};

/// Risk simulation knobs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RiskConfig {
    /// Paths per demand for the multipath router.
    pub k_paths: usize,
    /// Background demands already admitted by more premium classes; they
    /// are placed first in every scenario so lower classes only see
    /// leftover capacity (Algorithm 2's class-by-class sweep).
    pub background: Vec<Demand>,
    /// Worker threads for the scenario sweep: `1` sweeps on the calling
    /// thread, `0` uses one worker per available core. Any value yields
    /// bitwise-identical curves (see [`crate::sweep`]).
    pub workers: usize,
    /// Route each distinct `dead_links` set once instead of once per
    /// scenario. Output-invariant; a large win on Monte-Carlo scenario
    /// sets, which sample the same few failure sets repeatedly.
    pub dedup: bool,
}

impl Default for RiskConfig {
    fn default() -> Self {
        RiskConfig {
            k_paths: 4,
            background: Vec::new(),
            workers: 1,
            dedup: true,
        }
    }
}

/// Curves plus sweep statistics (what deduplication actually saved).
#[derive(Clone, Debug)]
pub struct RiskAssessment {
    /// One availability curve per demand, in demand order.
    pub curves: Vec<AvailabilityCurve>,
    /// Scenarios in the input set.
    pub total_scenarios: usize,
    /// Distinct failure sets actually routed.
    pub routed_scenarios: usize,
}

impl RiskAssessment {
    /// Fraction of scenario routings skipped by deduplication.
    pub fn dedup_savings(&self) -> f64 {
        if self.total_scenarios == 0 {
            0.0
        } else {
            1.0 - self.routed_scenarios as f64 / self.total_scenarios as f64
        }
    }
}

/// Assess one batch of pipe demands against a scenario set.
///
/// Returns one [`AvailabilityCurve`] per demand (same order). In each
/// scenario the background (higher-priority approvals) is routed first,
/// then the batch; a demand's admitted volume under that scenario becomes
/// a probability-weighted curve sample.
pub fn assess_risk(
    topo: &Topology,
    demands: &[Demand],
    scenarios: &ScenarioSet,
    config: &RiskConfig,
) -> Vec<AvailabilityCurve> {
    assess_risk_detailed(topo, demands, scenarios, config).curves
}

/// [`assess_risk`] plus sweep statistics.
///
/// The sweep routes each *distinct* failure set once (when
/// `config.dedup`), fanned out over `config.workers` scoped threads in
/// fixed contiguous chunks, then emits one sample per *original*
/// scenario — in scenario order, with that scenario's own probability.
/// Because routing is a pure function of the failure set and samples are
/// merged in input order, the curves are bitwise identical for every
/// `(workers, dedup)` combination.
pub fn assess_risk_detailed(
    topo: &Topology,
    demands: &[Demand],
    scenarios: &ScenarioSet,
    config: &RiskConfig,
) -> RiskAssessment {
    assess_risk_detailed_obs(topo, demands, scenarios, config, &Obs::disabled())
}

/// [`assess_risk_detailed`] with telemetry: a `risk`/`sweep` span
/// around the scenario fan-out (labelled with scenario, unique-set,
/// and demand counts), a `risk`/`merge` span around the per-scenario
/// sample merge, per-scenario child spans on the serial path, and the
/// sweep's per-scenario timing and worker-utilization histograms in
/// `obs.registry` (see [`crate::sweep::sweep_ordered_obs`]). Curves
/// are bitwise identical to the un-instrumented path.
pub fn assess_risk_detailed_obs(
    topo: &Topology,
    demands: &[Demand],
    scenarios: &ScenarioSet,
    config: &RiskConfig,
    obs: &Obs,
) -> RiskAssessment {
    let s = assess_risk_samples_obs(topo, demands, scenarios, config, obs);
    RiskAssessment {
        curves: s
            .samples
            .into_iter()
            .map(AvailabilityCurve::from_samples)
            .collect(),
        total_scenarios: s.total_scenarios,
        routed_scenarios: s.routed_scenarios,
    }
}

/// The raw per-scenario material an assessment folds away: one
/// `(admitted, probability)` sample per *original* scenario per demand,
/// in scenario order — the decision-provenance layer reads these to
/// name which failure scenario was binding for a grant.
#[derive(Clone, Debug)]
pub struct RiskSamples {
    /// `samples[d][s]` = demand `d`'s admitted volume and probability
    /// under original scenario `s`.
    pub samples: Vec<Vec<(Rate, f64)>>,
    /// Scenarios in the input set.
    pub total_scenarios: usize,
    /// Distinct failure sets actually routed.
    pub routed_scenarios: usize,
}

impl RiskSamples {
    /// The scenario index binding demand `d` at `slo`: walking
    /// scenarios by admitted volume descending (the exact order
    /// [`AvailabilityCurve::bandwidth_at`] uses, ties kept in scenario
    /// order), the scenario at which cumulative probability first
    /// reaches the SLO. Its admitted volume *is* the SLO-feasible
    /// headroom; `None` when even zero volume cannot meet the target.
    #[must_use]
    pub fn binding_scenario(&self, d: usize, slo: f64) -> Option<usize> {
        let s = self.samples.get(d)?;
        let mut order: Vec<usize> = (0..s.len()).collect();
        order.sort_by(|&a, &b| s[b].0.as_bps().total_cmp(&s[a].0.as_bps()));
        let mut acc = 0.0;
        for &i in &order {
            acc += s[i].1;
            if acc >= slo - 1e-12 {
                return Some(i);
            }
        }
        None
    }
}

/// [`assess_risk_detailed_obs`] stopping one step short of curve
/// construction: returns the per-scenario samples themselves. Building
/// [`AvailabilityCurve::from_samples`] over each demand's samples
/// yields exactly the detailed assessment's curves.
pub fn assess_risk_samples_obs(
    topo: &Topology,
    demands: &[Demand],
    scenarios: &ScenarioSet,
    config: &RiskConfig,
    obs: &Obs,
) -> RiskSamples {
    let index = if config.dedup {
        UniqueScenarios::build(scenarios)
    } else {
        UniqueScenarios::identity(scenarios)
    };

    // Route every representative failure set. Background (higher
    // priority) goes first in a pass of its own; the batch is then
    // placed on the leftover capacity via a residual overlay — the
    // router reads only fiber lengths for path selection, so overlaying
    // residuals is exactly the old clone-and-rewrite-capacities path
    // without the per-scenario topology clone.
    let sweep_span = obs
        .span("risk", "sweep")
        .label("scenarios", &scenarios.len().to_string())
        .label("unique", &index.unique_len().to_string())
        .label("demands", &demands.len().to_string());
    let per_unique: Vec<Vec<Rate>> =
        sweep_ordered_obs(&index.representatives, config.workers, obs, |scenario_idx| {
            let dead = &scenarios.scenarios[scenario_idx].dead_links;
            if config.background.is_empty() {
                route_matrix(topo, demands, dead, config.k_paths).admitted
            } else {
                let bg = route_matrix(topo, &config.background, dead, config.k_paths);
                route_matrix_on_residual(topo, demands, dead, config.k_paths, &bg.residual)
                    .admitted
            }
        });
    sweep_span.finish();

    // Merge per original scenario, in scenario order: each scenario
    // contributes its own (admitted, probability) sample even when its
    // routing was shared, keeping the curve construction independent of
    // the dedup decision.
    let merge_span = obs.span("risk", "merge");
    let mut samples: Vec<Vec<(Rate, f64)>> =
        vec![Vec::with_capacity(scenarios.len()); demands.len()];
    for (s_idx, scenario) in scenarios.scenarios.iter().enumerate() {
        let admitted = &per_unique[index.assignment[s_idx]];
        for (i, &a) in admitted.iter().enumerate() {
            samples[i].push((a, scenario.probability));
        }
    }
    merge_span.finish();
    RiskSamples {
        samples,
        total_scenarios: scenarios.len(),
        routed_scenarios: index.unique_len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entitlement_core::Rate;
    use entitlement_topology::{BackboneSpec, ScenarioSet};

    fn small() -> Topology {
        BackboneSpec::small(31).build()
    }

    #[test]
    fn healthy_network_admits_modest_demand() {
        let topo = small();
        let ids = topo.region_ids();
        let demands = vec![Demand {
            src: ids[0],
            dst: ids[2],
            amount: Rate::gbps(10.0),
        }];
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let curves = assess_risk(&topo, &demands, &scenarios, &RiskConfig::default());
        assert_eq!(curves.len(), 1);
        // A 10G demand on a multi-Tbps backbone should survive any dual
        // cut: availability at full volume ≈ 1 - P(blackout residual).
        let avail = curves[0].availability_of(Rate::gbps(10.0));
        assert!(avail > 0.99, "availability {avail}");
    }

    #[test]
    fn absurd_demand_gets_degraded_grant_at_high_slo() {
        let topo = small();
        let ids = topo.region_ids();
        // Demand over the min-cut: admitted < requested even healthy.
        let huge = Rate::tbps(50.0);
        let demands = vec![Demand {
            src: ids[0],
            dst: ids[3],
            amount: huge,
        }];
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let curves = assess_risk(&topo, &demands, &scenarios, &RiskConfig::default());
        let granted = curves[0].bandwidth_at(0.99);
        assert!(granted.as_bps() > 0.0);
        assert!(granted.as_bps() < huge.as_bps());
    }

    #[test]
    fn stricter_slo_grants_less() {
        let topo = small();
        let ids = topo.region_ids();
        let demands = vec![Demand {
            src: ids[1],
            dst: ids[4],
            amount: Rate::tbps(3.0),
        }];
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let curves = assess_risk(&topo, &demands, &scenarios, &RiskConfig::default());
        let loose = curves[0].bandwidth_at(0.95);
        let strict = curves[0].bandwidth_at(0.9999);
        assert!(strict.as_bps() <= loose.as_bps());
    }

    #[test]
    fn background_traffic_reduces_grants() {
        let topo = small();
        let ids = topo.region_ids();
        let demands = vec![Demand {
            src: ids[0],
            dst: ids[2],
            amount: Rate::tbps(2.0),
        }];
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let free = assess_risk(&topo, &demands, &scenarios, &RiskConfig::default());
        let congested = assess_risk(
            &topo,
            &demands,
            &scenarios,
            &RiskConfig {
                background: vec![Demand {
                    src: ids[0],
                    dst: ids[2],
                    amount: Rate::tbps(50.0),
                }],
                ..Default::default()
            },
        );
        assert!(
            congested[0].bandwidth_at(0.99).as_bps() < free[0].bandwidth_at(0.99).as_bps(),
            "premium background must squeeze the batch"
        );
    }

    #[test]
    fn binding_scenario_admits_exactly_the_curve_headroom() {
        let topo = small();
        let ids = topo.region_ids();
        let demands = vec![Demand {
            src: ids[0],
            dst: ids[3],
            amount: Rate::tbps(50.0),
        }];
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let obs = Obs::disabled();
        let s = assess_risk_samples_obs(&topo, &demands, &scenarios, &RiskConfig::default(), &obs);
        let curves = assess_risk(&topo, &demands, &scenarios, &RiskConfig::default());
        for slo in [0.9, 0.99, 0.9999] {
            let b = s.binding_scenario(0, slo).expect("feasible slo");
            assert_eq!(
                s.samples[0][b].0,
                curves[0].bandwidth_at(slo),
                "binding scenario's admitted volume is the headroom at slo {slo}"
            );
        }
        // An SLO above the total scenario mass binds nothing.
        assert_eq!(s.binding_scenario(0, 1.5), None);
    }

    #[test]
    fn curve_mass_matches_scenarios() {
        let topo = small();
        let ids = topo.region_ids();
        let demands = vec![Demand {
            src: ids[0],
            dst: ids[1],
            amount: Rate::gbps(1.0),
        }];
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let curves = assess_risk(&topo, &demands, &scenarios, &RiskConfig::default());
        assert!((curves[0].total_mass() - 1.0).abs() < 1e-9);
    }
}
