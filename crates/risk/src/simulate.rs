//! Scenario-sweep risk simulation.

use crate::curve::AvailabilityCurve;
use entitlement_topology::routing::Demand;
use entitlement_topology::{route_matrix, ScenarioSet, Topology};
use serde::{Deserialize, Serialize};

/// Risk simulation knobs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RiskConfig {
    /// Paths per demand for the multipath router.
    pub k_paths: usize,
    /// Background demands already admitted by more premium classes; they
    /// are placed first in every scenario so lower classes only see
    /// leftover capacity (Algorithm 2's class-by-class sweep).
    pub background: Vec<Demand>,
}

impl Default for RiskConfig {
    fn default() -> Self {
        RiskConfig {
            k_paths: 4,
            background: Vec::new(),
        }
    }
}

/// Assess one batch of pipe demands against a scenario set.
///
/// Returns one [`AvailabilityCurve`] per demand (same order). In each
/// scenario the background (higher-priority approvals) is routed first,
/// then the batch; a demand's admitted volume under that scenario becomes
/// a probability-weighted curve sample.
pub fn assess_risk(
    topo: &Topology,
    demands: &[Demand],
    scenarios: &ScenarioSet,
    config: &RiskConfig,
) -> Vec<AvailabilityCurve> {
    let mut samples: Vec<Vec<(entitlement_core::Rate, f64)>> =
        vec![Vec::with_capacity(scenarios.len()); demands.len()];

    // Combined demand vector: background first (placement is largest-first
    // inside route_matrix, so enforce priority by splitting the call: route
    // background, then route the batch on the residual graph). The router
    // works on topologies, so emulate residual capacity by re-routing both
    // and giving background strict priority via two passes.
    for scenario in &scenarios.scenarios {
        let admitted = if config.background.is_empty() {
            route_matrix(topo, demands, &scenario.dead_links, config.k_paths).admitted
        } else {
            // Pass 1: background on the failed topology.
            let bg = route_matrix(topo, &config.background, &scenario.dead_links, config.k_paths);
            // Pass 2: batch on the residual. Build a residual topology by
            // scaling link capacities down to what's left.
            let mut residual_topo = topo.clone();
            residual_topo.apply_residual(&bg.residual);
            route_matrix(&residual_topo, demands, &scenario.dead_links, config.k_paths).admitted
        };
        for (i, a) in admitted.into_iter().enumerate() {
            samples[i].push((a, scenario.probability));
        }
    }
    samples
        .into_iter()
        .map(AvailabilityCurve::from_samples)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use entitlement_core::Rate;
    use entitlement_topology::{BackboneSpec, ScenarioSet};

    fn small() -> Topology {
        BackboneSpec::small(31).build()
    }

    #[test]
    fn healthy_network_admits_modest_demand() {
        let topo = small();
        let ids = topo.region_ids();
        let demands = vec![Demand {
            src: ids[0],
            dst: ids[2],
            amount: Rate::gbps(10.0),
        }];
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let curves = assess_risk(&topo, &demands, &scenarios, &RiskConfig::default());
        assert_eq!(curves.len(), 1);
        // A 10G demand on a multi-Tbps backbone should survive any dual
        // cut: availability at full volume ≈ 1 - P(blackout residual).
        let avail = curves[0].availability_of(Rate::gbps(10.0));
        assert!(avail > 0.99, "availability {avail}");
    }

    #[test]
    fn absurd_demand_gets_degraded_grant_at_high_slo() {
        let topo = small();
        let ids = topo.region_ids();
        // Demand over the min-cut: admitted < requested even healthy.
        let huge = Rate::tbps(50.0);
        let demands = vec![Demand {
            src: ids[0],
            dst: ids[3],
            amount: huge,
        }];
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let curves = assess_risk(&topo, &demands, &scenarios, &RiskConfig::default());
        let granted = curves[0].bandwidth_at(0.99);
        assert!(granted.as_bps() > 0.0);
        assert!(granted.as_bps() < huge.as_bps());
    }

    #[test]
    fn stricter_slo_grants_less() {
        let topo = small();
        let ids = topo.region_ids();
        let demands = vec![Demand {
            src: ids[1],
            dst: ids[4],
            amount: Rate::tbps(3.0),
        }];
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let curves = assess_risk(&topo, &demands, &scenarios, &RiskConfig::default());
        let loose = curves[0].bandwidth_at(0.95);
        let strict = curves[0].bandwidth_at(0.9999);
        assert!(strict.as_bps() <= loose.as_bps());
    }

    #[test]
    fn background_traffic_reduces_grants() {
        let topo = small();
        let ids = topo.region_ids();
        let demands = vec![Demand {
            src: ids[0],
            dst: ids[2],
            amount: Rate::tbps(2.0),
        }];
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let free = assess_risk(&topo, &demands, &scenarios, &RiskConfig::default());
        let congested = assess_risk(
            &topo,
            &demands,
            &scenarios,
            &RiskConfig {
                background: vec![Demand {
                    src: ids[0],
                    dst: ids[2],
                    amount: Rate::tbps(50.0),
                }],
                ..Default::default()
            },
        );
        assert!(
            congested[0].bandwidth_at(0.99).as_bps() < free[0].bandwidth_at(0.99).as_bps(),
            "premium background must squeeze the batch"
        );
    }

    #[test]
    fn curve_mass_matches_scenarios() {
        let topo = small();
        let ids = topo.region_ids();
        let demands = vec![Demand {
            src: ids[0],
            dst: ids[1],
            amount: Rate::gbps(1.0),
        }];
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let curves = assess_risk(&topo, &demands, &scenarios, &RiskConfig::default());
        assert!((curves[0].total_mass() - 1.0).abs() < 1e-9);
    }
}
