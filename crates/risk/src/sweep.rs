//! Deduplicated, parallel scenario sweep machinery.
//!
//! Routing a failure scenario depends only on its `dead_links` *set* —
//! not on its probability, label, or position in the scenario list — so
//! a sweep only has to route each distinct failure set once. Enumerated
//! sets are already distinct, but Monte-Carlo sampling draws the same
//! few failure sets over and over (the healthy network alone is usually
//! the large majority of draws), which makes deduplication a superlinear
//! win on sampled sets.
//!
//! Parallelism uses a fixed chunk-per-worker partition of the unique
//! list and merges results in list order, so the output is a pure
//! function of the inputs: identical for any worker count, bitwise equal
//! to the serial sweep.

use entitlement_obs::Obs;
use entitlement_topology::{LinkId, ScenarioSet};
use std::thread;

/// Index of distinct `dead_links` sets within a [`ScenarioSet`].
///
/// `representatives[u]` is the index (into the original scenario list)
/// of the first scenario with the `u`-th distinct failure set, in
/// first-appearance order; `assignment[s]` maps every original scenario
/// to its entry in `representatives`. `mass[u]` accumulates the total
/// probability carried by each unique set — the sweep itself never uses
/// it (per-scenario samples keep their own probabilities so that curve
/// construction stays bitwise identical to the non-deduplicated sweep),
/// but it is the interesting statistic: it says how much probability
/// mass each routed failure set actually covers.
#[derive(Clone, Debug)]
pub struct UniqueScenarios {
    /// First-occurrence scenario index per unique failure set.
    pub representatives: Vec<usize>,
    /// Unique-set index for every original scenario.
    pub assignment: Vec<usize>,
    /// Accumulated probability per unique failure set (stats only).
    pub mass: Vec<f64>,
}

impl UniqueScenarios {
    /// Deduplicate `scenarios` by failure set. Two scenarios collapse
    /// when their `dead_links` contain the same links in any order.
    pub fn build(scenarios: &ScenarioSet) -> UniqueScenarios {
        let mut by_set: std::collections::BTreeMap<Vec<LinkId>, usize> =
            std::collections::BTreeMap::new();
        let mut representatives = Vec::new();
        let mut assignment = Vec::with_capacity(scenarios.scenarios.len());
        let mut mass = Vec::new();
        for (idx, scenario) in scenarios.scenarios.iter().enumerate() {
            let mut key = scenario.dead_links.clone();
            key.sort_unstable();
            key.dedup();
            let unique = *by_set.entry(key).or_insert_with(|| {
                representatives.push(idx);
                mass.push(0.0);
                representatives.len() - 1
            });
            assignment.push(unique);
            mass[unique] += scenario.probability;
        }
        UniqueScenarios {
            representatives,
            assignment,
            mass,
        }
    }

    /// The no-dedup index: every scenario is its own representative.
    pub fn identity(scenarios: &ScenarioSet) -> UniqueScenarios {
        let n = scenarios.scenarios.len();
        UniqueScenarios {
            representatives: (0..n).collect(),
            assignment: (0..n).collect(),
            mass: scenarios.scenarios.iter().map(|s| s.probability).collect(),
        }
    }

    /// Number of distinct failure sets.
    pub fn unique_len(&self) -> usize {
        self.representatives.len()
    }

    /// Fraction of scenarios that were duplicates of an earlier one.
    pub fn duplicate_fraction(&self) -> f64 {
        if self.assignment.is_empty() {
            0.0
        } else {
            1.0 - self.unique_len() as f64 / self.assignment.len() as f64
        }
    }
}

/// Resolve a `workers` knob: `0` means one worker per available core,
/// anything else is taken literally; always within `[1, jobs]`.
pub fn effective_workers(workers: usize, jobs: usize) -> usize {
    let requested = if workers == 0 {
        thread::available_parallelism().map_or(1, std::num::NonZero::get)
    } else {
        workers
    };
    requested.clamp(1, jobs.max(1))
}

/// Apply `job` to every element of `items`, fanned out over `workers`
/// scoped threads, returning results in input order.
///
/// The partition is a fixed contiguous chunk per worker (the first
/// `len % workers` chunks get one extra item), and chunk results are
/// concatenated in chunk order after all workers join — thread timing
/// can never reorder the output, so any worker count produces the exact
/// byte-for-byte result of the `workers == 1` path.
pub fn sweep_ordered<T, F>(items: &[usize], workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = items.len();
    let workers = effective_workers(workers, n);
    if workers <= 1 {
        return items.iter().map(|&i| job(i)).collect();
    }
    let base = n / workers;
    let extra = n % workers;
    let mut out = Vec::with_capacity(n);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut start = 0;
        for c in 0..workers {
            let len = base + usize::from(c < extra);
            let chunk = &items[start..start + len];
            start += len;
            let job = &job;
            handles.push(scope.spawn(move || chunk.iter().map(|&i| job(i)).collect::<Vec<T>>()));
        }
        for handle in handles {
            out.extend(handle.join().expect("sweep worker panicked"));
        }
    });
    out
}

/// [`sweep_ordered`] with telemetry: per-item timing lands in the
/// `entitlement_risk_scenario_ms` histogram (timed by the obs clock —
/// a counting clock gives deterministic pseudo-durations, a manual one
/// charges zero), per-worker chunk sizes land in
/// `entitlement_risk_worker_items` (utilization balance), and the
/// resolved worker count in the `entitlement_risk_sweep_workers`
/// gauge. Results are identical to [`sweep_ordered`].
///
/// On the **serial** path (one resolved worker) each item additionally
/// emits a `risk`/`scenario` trace event, parented under whatever span
/// is open (the `risk`/`sweep` span), with the same clock reads the
/// histogram wrapper already paid — so enabling per-scenario spans does
/// not shift any downstream counting-clock timestamp. Parallel sweeps
/// record histograms only: worker threads would otherwise interleave
/// event order by scheduling, breaking byte-identical traces. Every CI
/// byte-equality gate runs `workers = 1`.
pub fn sweep_ordered_obs<T, F>(items: &[usize], workers: usize, obs: &Obs, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = items.len();
    let resolved = effective_workers(workers, n);
    obs.registry
        .gauge(
            "entitlement_risk_sweep_workers",
            "Worker threads used by the last risk sweep",
            &[],
        )
        .set(resolved as f64);
    let chunk_hist = obs.registry.histogram(
        "entitlement_risk_worker_items",
        "Scenarios routed per sweep worker (utilization balance)",
        &[],
    );
    let base = n / resolved;
    let extra = n % resolved;
    for c in 0..resolved {
        chunk_hist.record((base + usize::from(c < extra)) as f64);
    }
    let scenario_ms = obs.registry.histogram(
        "entitlement_risk_scenario_ms",
        "Per-scenario routing time in milliseconds (obs clock)",
        &[],
    );
    let clock = obs.clock.clone();
    if resolved == 1 && obs.enabled() {
        let trace = obs.trace.clone();
        return sweep_ordered(items, 1, move |i| {
            let t0 = clock.now_ms();
            let out = job(i);
            let dur = clock.now_ms().saturating_sub(t0) as f64;
            scenario_ms.record(dur);
            trace.push_child(entitlement_obs::TraceEvent::new(
                t0,
                "risk",
                "scenario",
                vec![("scenario".to_string(), i.to_string())],
                dur,
            ));
            out
        });
    }
    sweep_ordered(items, workers, move |i| {
        let t0 = clock.now_ms();
        let out = job(i);
        scenario_ms.record(clock.now_ms().saturating_sub(t0) as f64);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use entitlement_topology::BackboneSpec;

    #[test]
    fn identity_index_is_one_to_one() {
        let topo = BackboneSpec::small(3).build();
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        let idx = UniqueScenarios::identity(&scenarios);
        assert_eq!(idx.unique_len(), scenarios.len());
        assert_eq!(idx.assignment, idx.representatives);
        assert_eq!(idx.duplicate_fraction(), 0.0);
    }

    #[test]
    fn enumerated_sets_have_no_duplicates() {
        let topo = BackboneSpec::small(3).build();
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let idx = UniqueScenarios::build(&scenarios);
        assert_eq!(idx.unique_len(), scenarios.len());
    }

    #[test]
    fn monte_carlo_sets_deduplicate_heavily() {
        let topo = BackboneSpec::small(3).build();
        let scenarios = ScenarioSet::sample(&topo, 2000, 0xDED0);
        let idx = UniqueScenarios::build(&scenarios);
        assert!(idx.unique_len() < scenarios.len() / 2, "expected heavy duplication, got {} unique of {}", idx.unique_len(), scenarios.len());
        // Mass is conserved exactly as a sum of the original samples.
        let total: f64 = idx.mass.iter().sum();
        assert!((total - scenarios.total_probability()).abs() < 1e-12);
    }

    #[test]
    fn sweep_preserves_order_for_any_worker_count() {
        let items: Vec<usize> = (0..103).collect();
        let serial = sweep_ordered(&items, 1, |i| i * 7);
        for workers in [2, 3, 8, 64] {
            assert_eq!(sweep_ordered(&items, workers, |i| i * 7), serial);
        }
    }

    #[test]
    fn effective_workers_clamps() {
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(1, 100), 1);
        assert_eq!(effective_workers(5, 0), 1);
        assert!(effective_workers(0, 100) >= 1);
    }
}
