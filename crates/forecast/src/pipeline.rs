//! The end-to-end demand forecast pipeline (paper §4.1).
//!
//! 1. Fit the organic decomposable model on daily history and project the
//!    next three months.
//! 2. Fit the inorganic tree model. The paper feeds lagged monthly traffic
//!    and infrastructure regressors (`X_{t-1..t-3}, Y_{t-1..t-3}`) to a
//!    tree with quantile loss. Regression trees cannot extrapolate levels
//!    beyond the training range, so our formulation is scale-free: the
//!    tree learns month-over-month traffic *growth* `X_t / X_{t-1}` from
//!    month-over-month regressor ratios of the current and two preceding
//!    months. A fleet doubling seen once in history then transfers to a
//!    *planned* doubling of any absolute size.
//! 3. At forecast time the tree's prediction is normalized by its output
//!    on a "no change" feature row, isolating the inorganic multiplier;
//!    the organic projection carries trend/seasonality and the multiplier
//!    compounds the planned inorganic steps on top.
//! 4. The three monthly forecasts form the quarterly SLI; following
//!    common capacity practice the SLI is their maximum.

use crate::decompose::{DecomposableModel, ModelConfig};
use crate::tree::{GbdtConfig, QuantileGbdt};
use entitlement_core::period::DAYS_PER_MONTH;
use entitlement_core::Result;
use serde::{Deserialize, Serialize};

/// Pipeline hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Organic model configuration.
    pub organic: ModelConfig,
    /// Inorganic tree configuration.
    pub tree: GbdtConfig,
    /// Disable the tree stage (organic-only ablation).
    pub organic_only: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            organic: ModelConfig::default(),
            // Monthly training sets are tiny (a year = 12 rows), so allow
            // single-sample leaves and learn fast.
            tree: GbdtConfig {
                alpha: 0.5,
                rounds: 60,
                max_depth: 3,
                min_leaf: 1,
                learning_rate: 0.3,
            },
            organic_only: false,
        }
    }
}

/// The pipeline's output for one quarter.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QuarterForecast {
    /// Forecast mean demand (bps) for months t, t+1, t+2.
    pub monthly: [f64; 3],
    /// The quarterly SLI: max of the monthly forecasts.
    pub sli_bps: f64,
}

/// A fitted forecast pipeline for one service-region series.
#[derive(Clone, Debug)]
pub struct ForecastPipeline {
    organic: DecomposableModel,
    tree: Option<QuantileGbdt>,
    /// Actual monthly means of the training window.
    train_monthly: Vec<f64>,
    /// Monthly regressor rows covering train months (and later queried
    /// for planned future months).
    config: PipelineConfig,
}

/// Minimum training months before the tree stage activates.
const MIN_TREE_MONTHS: usize = 8;

fn monthly_means(daily: &[f64]) -> Vec<f64> {
    let m = daily.len() / DAYS_PER_MONTH as usize;
    (0..m)
        .map(|i| {
            let s = &daily[i * DAYS_PER_MONTH as usize..(i + 1) * DAYS_PER_MONTH as usize];
            entitlement_core::stats::mean(s)
        })
        .collect()
}

/// Month-over-month ratio of each regressor; month 0 gets all-ones.
fn regressor_ratios(regressors: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(regressors.len());
    for (m, row) in regressors.iter().enumerate() {
        if m == 0 {
            out.push(vec![1.0; row.len()]);
        } else {
            out.push(
                row.iter()
                    .zip(&regressors[m - 1])
                    .map(|(&cur, &prev)| if prev.abs() > 1e-12 { cur / prev } else { 1.0 })
                    .collect(),
            );
        }
    }
    out
}

/// Feature row for predicting the growth of month `t`: regressor ratios
/// at t, t-1, t-2 (clamped at the series start).
fn growth_features(reg_ratios: &[Vec<f64>], t: usize) -> Vec<f64> {
    let mut row = Vec::new();
    for h in 0..3 {
        let idx = t.saturating_sub(h);
        row.extend_from_slice(&reg_ratios[idx.min(reg_ratios.len() - 1)]);
    }
    row
}

impl ForecastPipeline {
    /// Fit on daily training data.
    ///
    /// `regressors` holds one feature row per training month (e.g. from
    /// `entitlement_workload::history::RegressorRow::features`, passed
    /// as plain vectors to keep this crate decoupled).
    pub fn fit(
        daily: &[f64],
        holidays: &[u32],
        regressors: &[Vec<f64>],
        config: PipelineConfig,
    ) -> Result<Self> {
        let organic = DecomposableModel::fit(daily, holidays, config.organic.clone())?;
        let train_monthly = monthly_means(daily);
        let months = train_monthly.len();

        let tree = if config.organic_only || months < MIN_TREE_MONTHS || regressors.len() < months
        {
            None
        } else {
            // Target: month-over-month traffic growth. Features: the
            // month-over-month regressor ratios of months t, t-1, t-2
            // (delayed effects of a change are common — sessions migrate
            // over weeks).
            let reg_ratios = regressor_ratios(regressors);
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for t in 1..months {
                if train_monthly[t - 1] <= 0.0 {
                    continue;
                }
                xs.push(growth_features(&reg_ratios, t));
                ys.push(train_monthly[t] / train_monthly[t - 1]);
            }
            if xs.is_empty() {
                None
            } else {
                Some(QuantileGbdt::fit(&xs, &ys, config.tree.clone()))
            }
        };

        Ok(ForecastPipeline {
            organic,
            tree,
            train_monthly,
            config,
        })
    }

    /// Whether the inorganic tree stage is active.
    pub fn has_tree(&self) -> bool {
        self.tree.is_some()
    }

    /// Forecast the next quarter. `future_regressors` supplies the
    /// *planned* regressor rows for months t, t+1, t+2 (planned changes
    /// are known in advance, §4.1); `train_regressors` are the same rows
    /// used at fit time.
    pub fn forecast_quarter(
        &self,
        train_regressors: &[Vec<f64>],
        future_regressors: &[Vec<f64>; 3],
    ) -> QuarterForecast {
        let months = self.train_monthly.len();
        let train_days = months * DAYS_PER_MONTH as usize;
        let mut monthly = [0.0; 3];

        // Organic projections for the three future months.
        let mut organic_future = [0.0; 3];
        for (k, of) in organic_future.iter_mut().enumerate() {
            let start = train_days + k * DAYS_PER_MONTH as usize;
            let days = self.organic.predict_range(start, DAYS_PER_MONTH as usize);
            *of = entitlement_core::stats::mean(&days);
        }

        match &self.tree {
            None => monthly.copy_from_slice(&organic_future),
            Some(tree) => {
                // All regressor rows: history then planned future.
                let mut regs: Vec<Vec<f64>> = train_regressors.to_vec();
                regs.extend(future_regressors.iter().cloned());
                let reg_ratios = regressor_ratios(&regs);
                // The tree's output on a "nothing changed" row isolates
                // its organic baseline; dividing by it leaves the pure
                // inorganic multiplier.
                let width = regs.first().map_or(0, Vec::len);
                let neutral = vec![1.0; width * 3];
                let baseline = tree.predict(&neutral).max(1e-9);

                let mut cumulative = 1.0;
                for (k, m) in monthly.iter_mut().enumerate() {
                    let t = months + k;
                    let growth = tree.predict(&growth_features(&reg_ratios, t)).max(0.0);
                    let inorganic_mult = growth / baseline;
                    cumulative *= inorganic_mult;
                    *m = organic_future[k] * cumulative;
                }
            }
        }
        let sli_bps = monthly.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        QuarterForecast { monthly, sli_bps }
    }

    /// sMAPE of a quarter forecast against actual monthly means.
    pub fn score(forecast: &QuarterForecast, actual_monthly: &[f64; 3]) -> f64 {
        entitlement_core::stats::smape(actual_monthly, &forecast.monthly)
    }

    /// Access the organic component (for decomposition plots).
    pub fn organic(&self) -> &DecomposableModel {
        &self.organic
    }

    /// The pipeline configuration used.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Daily series with growth + weekly cycle; regressors flat.
    fn organic_world(months: usize, growth: f64) -> (Vec<f64>, Vec<Vec<f64>>) {
        let days = months * DAYS_PER_MONTH as usize;
        let daily: Vec<f64> = (0..days)
            .map(|d| {
                let trend = 1e9 * (1.0 + growth).powf(d as f64 / DAYS_PER_MONTH as f64);
                let weekly = 1.0 + 0.15 * (2.0 * std::f64::consts::PI * d as f64 / 7.0).sin();
                trend * weekly
            })
            .collect();
        let regs = vec![vec![1000.0, 500.0]; months];
        (daily, regs)
    }

    #[test]
    fn organic_only_quarter_forecast_tracks_growth() {
        let (daily, regs) = organic_world(15, 0.03);
        let (train, test) = daily.split_at(12 * DAYS_PER_MONTH as usize);
        let pipe = ForecastPipeline::fit(
            train,
            &[],
            &regs[..12],
            PipelineConfig {
                organic_only: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!pipe.has_tree());
        let fc = pipe.forecast_quarter(
            &regs[..12],
            &[regs[12].clone(), regs[13].clone(), regs[14].clone()],
        );
        let actual = monthly_means(test);
        let err = ForecastPipeline::score(&fc, &[actual[0], actual[1], actual[2]]);
        assert!(err < 0.05, "organic-only sMAPE {err}");
        assert!(fc.sli_bps >= fc.monthly[0]);
    }

    #[test]
    fn tree_stage_activates_with_enough_months() {
        let (daily, regs) = organic_world(12, 0.02);
        let pipe =
            ForecastPipeline::fit(&daily, &[], &regs, PipelineConfig::default()).unwrap();
        assert!(pipe.has_tree());
    }

    #[test]
    fn tree_captures_planned_fleet_doubling() {
        // World where traffic is proportional to fleet size, and the fleet
        // doubles at month 6 (history) and again at month 12 (planned).
        let months = 15usize;
        let days = months * DAYS_PER_MONTH as usize;
        let mut fleet = vec![1000.0; months];
        for f in fleet.iter_mut().skip(6) {
            *f = 2000.0;
        }
        for f in fleet.iter_mut().skip(12) {
            *f = 4000.0;
        }
        let daily: Vec<f64> = (0..days)
            .map(|d| {
                let m = d / DAYS_PER_MONTH as usize;
                let weekly = 1.0 + 0.1 * (2.0 * std::f64::consts::PI * d as f64 / 7.0).sin();
                1e6 * fleet[m] * weekly
            })
            .collect();
        let regs: Vec<Vec<f64>> = fleet.iter().map(|&f| vec![f, f * 0.5]).collect();
        let (train, test) = daily.split_at(12 * DAYS_PER_MONTH as usize);

        let with_tree =
            ForecastPipeline::fit(train, &[], &regs[..12], PipelineConfig::default()).unwrap();
        let organic_only = ForecastPipeline::fit(
            train,
            &[],
            &regs[..12],
            PipelineConfig {
                organic_only: true,
                ..Default::default()
            },
        )
        .unwrap();

        let future: [Vec<f64>; 3] = [regs[12].clone(), regs[13].clone(), regs[14].clone()];
        let fc_tree = with_tree.forecast_quarter(&regs[..12], &future);
        let fc_org = organic_only.forecast_quarter(&regs[..12], &future);

        let actual_m = monthly_means(test);
        let actual = [actual_m[0], actual_m[1], actual_m[2]];
        let err_tree = ForecastPipeline::score(&fc_tree, &actual);
        let err_org = ForecastPipeline::score(&fc_org, &actual);
        // The tree saw the month-6 doubling (fleet 2x -> traffic 2x) so it
        // should track the planned month-12 doubling far better than the
        // organic-only model.
        assert!(
            err_tree < err_org,
            "tree sMAPE {err_tree} should beat organic-only {err_org}"
        );
    }

    #[test]
    fn short_history_errors() {
        let res = ForecastPipeline::fit(&[1.0; 5], &[], &[], PipelineConfig::default());
        assert!(res.is_err());
    }
}
