//! The Prophet-style decomposable time-series model for organic changes.
//!
//! Paper §4.1: "We use Prophet, Meta's open sourced time-series
//! forecasting algorithm. It takes historical data as the input and
//! decomposes the time series into 3 components: trend, seasonality and
//! holidays, e.g. y(t) = trend(t) + seasonality(t) + holidays(t) + ε_t."
//!
//! Our from-scratch implementation follows the same additive structure,
//! fitted in one ridge regression:
//!
//! * **trend** — piecewise-linear with evenly spaced changepoints; slope
//!   deltas are ridge-shrunk, which is the L2 analogue of Prophet's
//!   Laplace changepoint prior;
//! * **seasonality** — Fourier series for the weekly (period 7) and
//!   yearly (period 360, synthetic calendar) cycles;
//! * **holidays** — one indicator coefficient shared by all holiday days.
//!
//! The model works in log space when all observations are positive (like
//! Prophet's multiplicative mode) so bandwidth growth compounds rather
//! than accumulates.

use crate::linalg::predict_row;
use entitlement_core::{EntitlementError, Result};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the decomposable model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Number of trend changepoints.
    pub changepoints: usize,
    /// Fourier order of the weekly cycle.
    pub weekly_order: usize,
    /// Fourier order of the yearly cycle.
    pub yearly_order: usize,
    /// Days per synthetic year.
    pub year_days: f64,
    /// Ridge strength on seasonal/holiday/changepoint coefficients.
    pub lambda: f64,
    /// Fit in log space (multiplicative model) when data is positive.
    pub log_space: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            changepoints: 8,
            weekly_order: 3,
            yearly_order: 4,
            year_days: 360.0,
            lambda: 0.05,
            log_space: true,
        }
    }
}

/// A fitted decomposable model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecomposableModel {
    config: ModelConfig,
    weights: Vec<f64>,
    /// Changepoint day positions (fractional).
    changepoint_days: Vec<f64>,
    /// Days of training data (defines the in-sample range).
    pub train_days: usize,
    /// Sorted holiday day indices used at fit time; future holidays are
    /// assumed to repeat with the yearly period.
    holidays: Vec<u32>,
    /// Whether the fit ran in log space.
    fitted_log: bool,
    /// Target scale (mean of |y| or |log y|) used to normalize the ridge.
    scale: f64,
}

impl DecomposableModel {
    /// Fit the model on `daily` observations with the given holiday days.
    pub fn fit(daily: &[f64], holidays: &[u32], config: ModelConfig) -> Result<Self> {
        let min_len = 28;
        if daily.len() < min_len {
            return Err(EntitlementError::SeriesTooShort {
                needed: min_len,
                got: daily.len(),
            });
        }
        let use_log = config.log_space && daily.iter().all(|&v| v > 0.0);
        let y_raw: Vec<f64> = if use_log {
            daily.iter().map(|v| v.ln()).collect()
        } else {
            daily.to_vec()
        };
        let scale = entitlement_core::stats::mean(
            &y_raw.iter().map(|v| v.abs()).collect::<Vec<_>>(),
        )
        .max(1e-9);
        let y: Vec<f64> = y_raw.iter().map(|v| v / scale).collect();

        let n = daily.len();
        let changepoint_days: Vec<f64> = (1..=config.changepoints)
            .map(|i| n as f64 * i as f64 / (config.changepoints + 1) as f64)
            .collect();

        let mut sorted_holidays = holidays.to_vec();
        sorted_holidays.sort_unstable();

        let cols = Self::column_count(&config);
        let mut design = Vec::with_capacity(n * cols);
        for t in 0..n {
            Self::push_row(
                &mut design,
                t as f64,
                &config,
                &changepoint_days,
                &sorted_holidays,
                n,
            );
        }
        // The intercept and base slope carry the level and trend and must
        // not be shrunk; only changepoint deltas, seasonality, and the
        // holiday effect get the ridge penalty (Prophet's prior structure).
        let mut penalty = vec![1.0; cols];
        penalty[0] = 0.0;
        penalty[1] = 0.0;
        let weights =
            crate::linalg::ridge_solve_weighted(&design, n, cols, &y, config.lambda, &penalty)?;
        Ok(DecomposableModel {
            config,
            weights,
            changepoint_days,
            train_days: n,
            holidays: sorted_holidays,
            fitted_log: use_log,
            scale,
        })
    }

    fn column_count(config: &ModelConfig) -> usize {
        // intercept + slope + changepoints + 2*weekly + 2*yearly + holiday
        2 + config.changepoints + 2 * config.weekly_order + 2 * config.yearly_order + 1
    }

    fn push_row(
        design: &mut Vec<f64>,
        t: f64,
        config: &ModelConfig,
        changepoint_days: &[f64],
        holidays: &[u32],
        train_days: usize,
    ) {
        // Normalize time so ridge treats slopes sanely.
        let tn = t / train_days as f64;
        design.push(1.0); // intercept
        design.push(tn); // base slope
        for &cp in changepoint_days {
            let cpn = cp / train_days as f64;
            design.push(if tn > cpn { tn - cpn } else { 0.0 });
        }
        for k in 1..=config.weekly_order {
            let arg = 2.0 * std::f64::consts::PI * k as f64 * t / 7.0;
            design.push(arg.sin());
            design.push(arg.cos());
        }
        for k in 1..=config.yearly_order {
            let arg = 2.0 * std::f64::consts::PI * k as f64 * t / config.year_days;
            design.push(arg.sin());
            design.push(arg.cos());
        }
        // Holiday indicator: exact day match in-sample; future days match
        // the yearly image of a training holiday.
        let day = t as i64;
        let year = config.year_days as i64;
        let is_holiday = holidays.iter().any(|&h| {
            let h = h as i64;
            day == h || (day > h && (day - h) % year == 0)
        });
        design.push(if is_holiday { 1.0 } else { 0.0 });
    }

    /// Predict the value at day `t` (may exceed the training range).
    pub fn predict(&self, t: f64) -> f64 {
        let mut row = Vec::with_capacity(Self::column_count(&self.config));
        Self::push_row(
            &mut row,
            t,
            &self.config,
            &self.changepoint_days,
            &self.holidays,
            self.train_days,
        );
        let v = predict_row(&row, &self.weights) * self.scale;
        if self.fitted_log {
            v.exp()
        } else {
            v
        }
    }

    /// Predict a range of days.
    pub fn predict_range(&self, from_day: usize, days: usize) -> Vec<f64> {
        (from_day..from_day + days)
            .map(|d| self.predict(d as f64))
            .collect()
    }

    /// In-sample fitted values.
    pub fn fitted(&self) -> Vec<f64> {
        self.predict_range(0, self.train_days)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entitlement_core::stats::smape;

    /// Synthetic series: exponential trend * weekly cycle, no noise.
    fn synth(days: usize) -> Vec<f64> {
        (0..days)
            .map(|d| {
                let trend = 100.0 * 1.001_f64.powi(d as i32);
                let weekly = 1.0 + 0.2 * (2.0 * std::f64::consts::PI * d as f64 / 7.0).sin();
                trend * weekly
            })
            .collect()
    }

    #[test]
    fn fits_trend_and_seasonality() {
        let data = synth(360);
        let model = DecomposableModel::fit(&data, &[], ModelConfig::default()).unwrap();
        let fitted = model.fitted();
        let err = smape(&data, &fitted);
        assert!(err < 0.02, "in-sample sMAPE {err}");
    }

    #[test]
    fn extrapolates_90_days() {
        let data = synth(450);
        let (train, test) = data.split_at(360);
        let model = DecomposableModel::fit(train, &[], ModelConfig::default()).unwrap();
        let pred = model.predict_range(360, 90);
        let err = smape(test, &pred);
        assert!(err < 0.05, "out-of-sample sMAPE {err}");
    }

    #[test]
    fn holiday_component_learned_and_projected() {
        // Holiday on day 100 and its yearly images.
        let mut data = synth(400);
        let holidays: Vec<u32> = vec![100];
        data[100] *= 1.5;
        let model = DecomposableModel::fit(&data, &holidays, ModelConfig::default()).unwrap();
        // Day 460 = 100 + 360 should also be boosted in the prediction.
        let boosted = model.predict(460.0);
        let neighbor = model.predict(453.0); // same weekday one week earlier
        assert!(
            boosted > neighbor * 1.2,
            "future holiday boost {boosted} vs {neighbor}"
        );
    }

    #[test]
    fn short_series_is_an_error() {
        let err = DecomposableModel::fit(&[1.0; 10], &[], ModelConfig::default());
        assert!(matches!(
            err,
            Err(EntitlementError::SeriesTooShort { .. })
        ));
    }

    #[test]
    fn negative_data_falls_back_to_linear_space() {
        let data: Vec<f64> = (0..60).map(|d| d as f64 - 10.0).collect();
        let model = DecomposableModel::fit(&data, &[], ModelConfig::default()).unwrap();
        // Should track the linear ramp decently.
        let p = model.predict(30.0);
        assert!((p - 20.0).abs() < 6.0, "got {p}");
    }
}
