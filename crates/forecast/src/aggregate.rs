//! Daily aggregation of fine-grained samples.
//!
//! Paper §4.1: "different services need different types of daily data to
//! feed into the model, e.g., daily max average of 6 hours for storage
//! services, and daily p99 for ads service." This module turns a day of
//! intra-day samples into the single daily value the forecaster consumes.

use serde::{Deserialize, Serialize};

/// How one day of samples becomes a daily value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DailyAggregation {
    /// Plain mean of the day's samples.
    Mean,
    /// Maximum over the day of 6-hour rolling averages (storage services:
    /// smooths rack-rotation spikes while tracking sustained load).
    MaxOf6hAverage,
    /// 99th percentile of the day's samples (ads-like latency-sensitive
    /// services that size for peaks).
    P99,
    /// Plain daily maximum (most conservative).
    Max,
}

impl DailyAggregation {
    /// Aggregate one day of evenly spaced samples. `samples_per_hour`
    /// tells the 6-hour window how many samples it spans.
    pub fn aggregate(&self, samples: &[f64], samples_per_hour: usize) -> f64 {
        if samples.is_empty() {
            return f64::NAN;
        }
        match self {
            DailyAggregation::Mean => entitlement_core::stats::mean(samples),
            DailyAggregation::P99 => entitlement_core::stats::percentile(samples, 99.0),
            DailyAggregation::Max => samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            DailyAggregation::MaxOf6hAverage => {
                let window = (6 * samples_per_hour).max(1).min(samples.len());
                let mut best = f64::NEG_INFINITY;
                let mut sum: f64 = samples[..window].iter().sum();
                best = best.max(sum / window as f64);
                for i in window..samples.len() {
                    sum += samples[i] - samples[i - window];
                    best = best.max(sum / window as f64);
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_max() {
        let s = [1.0, 2.0, 3.0];
        assert!((DailyAggregation::Mean.aggregate(&s, 1) - 2.0).abs() < 1e-12);
        assert_eq!(DailyAggregation::Max.aggregate(&s, 1), 3.0);
    }

    #[test]
    fn p99_near_top() {
        let s: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let v = DailyAggregation::P99.aggregate(&s, 1);
        assert!((v - 98.01).abs() < 0.1, "got {v}");
    }

    #[test]
    fn max_of_6h_average_smooths_single_spike() {
        // 24 hourly samples, one spike of 100 among zeros.
        let mut s = vec![0.0; 24];
        s[12] = 100.0;
        let v = DailyAggregation::MaxOf6hAverage.aggregate(&s, 1);
        // Best 6h window contains the spike: 100/6.
        assert!((v - 100.0 / 6.0).abs() < 1e-9, "got {v}");
        // Raw max would be 100; 6h-average is 6x smaller.
        assert!(v < DailyAggregation::Max.aggregate(&s, 1));
    }

    #[test]
    fn max_of_6h_average_tracks_sustained_load() {
        // Sustained 6-hour block at 50.
        let mut s = vec![10.0; 24];
        for v in s.iter_mut().take(18).skip(12) {
            *v = 50.0;
        }
        let v = DailyAggregation::MaxOf6hAverage.aggregate(&s, 1);
        assert!((v - 50.0).abs() < 1e-9, "sustained load fully counted: {v}");
    }

    #[test]
    fn window_larger_than_day_degrades_to_mean() {
        let s = [1.0, 3.0];
        let v = DailyAggregation::MaxOf6hAverage.aggregate(&s, 1);
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_is_nan() {
        assert!(DailyAggregation::Mean.aggregate(&[], 1).is_nan());
    }
}
