//! Naive forecasting baselines.
//!
//! Any forecasting pipeline must beat the cheap baselines to justify its
//! complexity. These are the standard ones used in forecasting practice,
//! at the same interface as the pipeline (fit on daily history, predict
//! a quarter of daily values):
//!
//! * **last-value** — every future day equals the last observed day;
//! * **seasonal naive** — each future day equals the value one season
//!   (week) earlier, repeated;
//! * **drift** — last value plus the average historical daily change.

use entitlement_core::period::DAYS_PER_MONTH;
use serde::{Deserialize, Serialize};

/// Which baseline to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Baseline {
    /// Repeat the last observation.
    LastValue,
    /// Repeat the last full week.
    SeasonalNaive,
    /// Linear drift from first to last observation.
    Drift,
}

impl Baseline {
    /// Predict `days` future daily values from `history`.
    pub fn predict(&self, history: &[f64], days: usize) -> Vec<f64> {
        assert!(!history.is_empty(), "empty history");
        match self {
            Baseline::LastValue => {
                let last = *history.last().unwrap();
                vec![last; days]
            }
            Baseline::SeasonalNaive => {
                let season = 7.min(history.len());
                let tail = &history[history.len() - season..];
                (0..days).map(|d| tail[d % season]).collect()
            }
            Baseline::Drift => {
                let n = history.len();
                let last = history[n - 1];
                let slope = if n > 1 {
                    (last - history[0]) / (n - 1) as f64
                } else {
                    0.0
                };
                (0..days)
                    .map(|d| (last + slope * (d + 1) as f64).max(0.0))
                    .collect()
            }
        }
    }

    /// Quarter forecast: monthly means of the daily prediction.
    pub fn forecast_quarter(&self, history: &[f64]) -> [f64; 3] {
        let daily = self.predict(history, 3 * DAYS_PER_MONTH as usize);
        let mut out = [0.0; 3];
        for (m, o) in out.iter_mut().enumerate() {
            *o = entitlement_core::stats::mean(
                &daily[m * DAYS_PER_MONTH as usize..(m + 1) * DAYS_PER_MONTH as usize],
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{ForecastPipeline, PipelineConfig};
    use entitlement_core::stats::smape;

    /// Synthetic trending series (the forecast crate stays decoupled
    /// from the workload crate, so tests build their own worlds).
    fn world(months: usize, growth: f64) -> Vec<f64> {
        (0..months * DAYS_PER_MONTH as usize)
            .map(|d| {
                let trend = 1e9 * (1.0 + growth).powf(d as f64 / DAYS_PER_MONTH as f64);
                let weekly = 1.0 + 0.15 * (2.0 * std::f64::consts::PI * d as f64 / 7.0).sin();
                trend * weekly
            })
            .collect()
    }

    #[test]
    fn last_value_is_flat() {
        let h = vec![1.0, 2.0, 3.0];
        assert_eq!(Baseline::LastValue.predict(&h, 4), vec![3.0; 4]);
    }

    #[test]
    fn seasonal_naive_repeats_the_week() {
        let h: Vec<f64> = (0..21).map(|d| (d % 7) as f64).collect();
        let p = Baseline::SeasonalNaive.predict(&h, 14);
        assert_eq!(&p[..7], &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(&p[..7], &p[7..14]);
    }

    #[test]
    fn drift_extends_the_trend() {
        let h: Vec<f64> = (0..10).map(|d| d as f64).collect();
        let p = Baseline::Drift.predict(&h, 3);
        assert!((p[0] - 10.0).abs() < 1e-9);
        assert!((p[2] - 12.0).abs() < 1e-9);
        // Never negative.
        let down: Vec<f64> = (0..10).map(|d| 5.0 - d as f64).collect();
        assert!(Baseline::Drift.predict(&down, 50).iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn pipeline_beats_every_baseline_on_trending_series() {
        let daily = world(15, 0.03);
        let (train, test) = daily.split_at(12 * DAYS_PER_MONTH as usize);
        let actual: Vec<f64> = (0..3)
            .map(|m| {
                entitlement_core::stats::mean(
                    &test[m * DAYS_PER_MONTH as usize..(m + 1) * DAYS_PER_MONTH as usize],
                )
            })
            .collect();

        let regs = vec![vec![1.0]; 12];
        let pipe = ForecastPipeline::fit(train, &[], &regs, PipelineConfig::default()).unwrap();
        let fc = pipe.forecast_quarter(&regs, &[vec![1.0], vec![1.0], vec![1.0]]);
        let pipe_err = smape(&actual, &fc.monthly);

        for b in [Baseline::LastValue, Baseline::SeasonalNaive, Baseline::Drift] {
            let base_fc = b.forecast_quarter(train);
            let base_err = smape(&actual, &base_fc);
            assert!(
                pipe_err < base_err,
                "{b:?}: pipeline {pipe_err} must beat baseline {base_err}"
            );
        }
    }
}
