//! # entitlement-forecast
//!
//! Service demand forecasting (paper §4.1). The SLI — quarterly bandwidth
//! demand per `(NPG, QoS, src_region, dst_region)` — is produced by two
//! cooperating models:
//!
//! * **Organic changes** are periodic/systematic and captured by a
//!   decomposable time-series model in the style of Meta's Prophet:
//!   `y(t) = trend(t) + seasonality(t) + holidays(t) + ε_t`
//!   ([`decompose::DecomposableModel`], fitted by ridge least squares over
//!   a piecewise-linear-trend + Fourier + holiday design matrix).
//! * **Inorganic changes** (region moves, QoS changes, architecture
//!   changes) cannot be predicted from patterns; they are modeled by a
//!   tree-based regressor with quantile loss (α = 0.5) over lagged traffic
//!   and infrastructure regressors ([`tree::QuantileGbdt`]), following the
//!   paper's `f(X_{t-1..t-3}, Y_{t-1..t-3})` formulation.
//!
//! [`pipeline::ForecastPipeline`] glues the two together and emits the
//! three monthly forecasts whose maximum becomes the quarterly SLI.
//! Forecast accuracy is scored with sMAPE
//! ([`entitlement_core::stats::smape`]), reproducing Fig 18–19.

#![forbid(unsafe_code)]

pub mod aggregate;
pub mod backtest;
pub mod baselines;
pub mod decompose;
pub mod linalg;
pub mod pipeline;
pub mod tree;

pub use aggregate::DailyAggregation;
pub use backtest::{backtest, BacktestReport, OriginScore};
pub use baselines::Baseline;
pub use decompose::{DecomposableModel, ModelConfig};
pub use pipeline::{ForecastPipeline, PipelineConfig, QuarterForecast};
pub use tree::{GbdtConfig, QuantileGbdt};
