//! Minimal dense linear algebra: just enough to solve ridge-regularized
//! least squares via the normal equations with Cholesky decomposition.
//!
//! Implemented from scratch per DESIGN.md (no external math crates). The
//! design matrices here are small (a few hundred columns), so O(n³)
//! Cholesky is plenty.

use entitlement_core::{EntitlementError, Result};

/// Solve `min_w ||X w - y||² + lambda ||w||²` for `w`.
///
/// `x` is row-major with `rows * cols` entries. The intercept column, if
/// wanted, must be part of `x` and is regularized like everything else;
/// use [`ridge_solve_weighted`] to exempt specific columns.
pub fn ridge_solve(x: &[f64], rows: usize, cols: usize, y: &[f64], lambda: f64) -> Result<Vec<f64>> {
    ridge_solve_weighted(x, rows, cols, y, lambda, &vec![1.0; cols])
}

/// Ridge with a per-column penalty multiplier: the diagonal gets
/// `lambda * penalty[i]`. A zero penalty leaves that coefficient
/// unshrunk (intercept, base trend slope).
pub fn ridge_solve_weighted(
    x: &[f64],
    rows: usize,
    cols: usize,
    y: &[f64],
    lambda: f64,
    penalty: &[f64],
) -> Result<Vec<f64>> {
    assert_eq!(x.len(), rows * cols, "design matrix shape");
    assert_eq!(y.len(), rows, "target length");
    assert_eq!(penalty.len(), cols, "penalty length");
    // Normal equations: (XᵀX + λI) w = Xᵀ y
    let mut xtx = vec![0.0; cols * cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            let xi = row[i];
            if xi == 0.0 {
                continue;
            }
            for j in i..cols {
                xtx[i * cols + j] += xi * row[j];
            }
        }
    }
    // Mirror and add the ridge.
    for i in 0..cols {
        xtx[i * cols + i] += lambda * penalty[i];
        for j in (i + 1)..cols {
            xtx[j * cols + i] = xtx[i * cols + j];
        }
    }
    let mut xty = vec![0.0; cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            xty[i] += row[i] * y[r];
        }
    }
    cholesky_solve(&mut xtx, cols, &xty)
}

/// Solve `A w = b` for symmetric positive-definite `A` (destroyed in
/// place) via Cholesky factorization.
fn cholesky_solve(a: &mut [f64], n: usize, b: &[f64]) -> Result<Vec<f64>> {
    // Factor A = L Lᵀ, storing L in the lower triangle.
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(EntitlementError::SingularSystem);
                }
                a[i * n + j] = sum.sqrt();
            } else {
                a[i * n + j] = sum / a[j * n + j];
            }
        }
    }
    // Forward solve L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= a[i * n + k] * z[k];
        }
        z[i] = sum / a[i * n + i];
    }
    // Back solve Lᵀ w = z.
    let mut w = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in (i + 1)..n {
            sum -= a[k * n + i] * w[k];
        }
        w[i] = sum / a[i * n + i];
    }
    Ok(w)
}

/// Dot product of a design row with weights.
pub fn predict_row(row: &[f64], w: &[f64]) -> f64 {
    row.iter().zip(w).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_without_ridge() {
        // y = 2 + 3x, columns [1, x].
        let xs = [0.0, 1.0, 2.0, 3.0];
        let mut design = Vec::new();
        let mut y = Vec::new();
        for &x in &xs {
            design.extend_from_slice(&[1.0, x]);
            y.push(2.0 + 3.0 * x);
        }
        let w = ridge_solve(&design, 4, 2, &y, 0.0).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-9);
        assert!((w[1] - 3.0).abs() < 1e-9);
        assert!((predict_row(&[1.0, 10.0], &w) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let mut design = Vec::new();
        let mut y = Vec::new();
        for &x in &xs {
            design.extend_from_slice(&[1.0, x]);
            y.push(2.0 + 3.0 * x);
        }
        let w0 = ridge_solve(&design, 4, 2, &y, 0.0).unwrap();
        let w1 = ridge_solve(&design, 4, 2, &y, 10.0).unwrap();
        assert!(w1[1].abs() < w0[1].abs());
    }

    #[test]
    fn singular_without_ridge_errors_but_ridge_rescues() {
        // Duplicate columns -> singular normal equations.
        let design = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let y = [1.0, 2.0, 3.0];
        assert!(ridge_solve(&design, 3, 2, &y, 0.0).is_err());
        let w = ridge_solve(&design, 3, 2, &y, 1e-6).unwrap();
        // Split evenly between the twin columns.
        assert!((w[0] - w[1]).abs() < 1e-3);
    }

    #[test]
    fn overdetermined_least_squares() {
        // Noisy y = 5x; fit should land near 5.
        let mut design = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let x = i as f64 / 10.0;
            design.push(x);
            y.push(5.0 * x + if i % 2 == 0 { 0.1 } else { -0.1 });
        }
        let w = ridge_solve(&design, 100, 1, &y, 0.0).unwrap();
        assert!((w[0] - 5.0).abs() < 0.01);
    }
}
