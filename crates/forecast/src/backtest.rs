//! Rolling-origin backtesting for the forecast pipeline.
//!
//! The paper scores forecasts quarterly against realized usage (§7.1).
//! Production forecasting teams additionally *backtest*: re-fit the
//! pipeline at several historical origins and score each quarter-ahead
//! forecast against what actually happened, yielding an error
//! distribution instead of a single number. This module implements that
//! harness; the Fig 18/19 experiment uses single-origin scoring, while
//! ablation work (organic-only vs full pipeline, hyper-parameters) uses
//! this one.

use crate::pipeline::{ForecastPipeline, PipelineConfig};
use entitlement_core::period::DAYS_PER_MONTH;
use entitlement_core::stats;
use entitlement_core::Result;
use serde::{Deserialize, Serialize};

/// One origin's outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OriginScore {
    /// Training months used.
    pub train_months: usize,
    /// sMAPE of the 3-month-ahead forecast.
    pub smape: f64,
    /// Signed relative error of the quarterly SLI vs the realized peak
    /// month (positive = over-forecast).
    pub sli_bias: f64,
}

/// Backtest summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BacktestReport {
    /// Per-origin scores, oldest origin first.
    pub origins: Vec<OriginScore>,
}

impl BacktestReport {
    /// Mean sMAPE across origins.
    pub fn mean_smape(&self) -> f64 {
        stats::mean(&self.origins.iter().map(|o| o.smape).collect::<Vec<_>>())
    }

    /// Mean SLI bias across origins.
    pub fn mean_bias(&self) -> f64 {
        stats::mean(&self.origins.iter().map(|o| o.sli_bias).collect::<Vec<_>>())
    }
}

/// Run a rolling-origin backtest.
///
/// For each origin `m` in `min_train_months..=max`, fit on the first `m`
/// months and score the forecast for months `m..m+3` against the actual
/// data. `regressors` must cover every month of `daily`.
pub fn backtest(
    daily: &[f64],
    holidays: &[u32],
    regressors: &[Vec<f64>],
    config: &PipelineConfig,
    min_train_months: usize,
) -> Result<BacktestReport> {
    let total_months = daily.len() / DAYS_PER_MONTH as usize;
    assert!(regressors.len() >= total_months, "regressors cover history");
    let mut origins = Vec::new();
    let mut m = min_train_months;
    while m + 3 <= total_months {
        let train = &daily[..m * DAYS_PER_MONTH as usize];
        let pipe = ForecastPipeline::fit(train, holidays, &regressors[..m], config.clone())?;
        let future = [
            regressors[m].clone(),
            regressors[m + 1].clone(),
            regressors[m + 2].clone(),
        ];
        let fc = pipe.forecast_quarter(&regressors[..m], &future);
        let actual: Vec<f64> = (0..3)
            .map(|k| {
                stats::mean(
                    &daily[(m + k) * DAYS_PER_MONTH as usize
                        ..(m + k + 1) * DAYS_PER_MONTH as usize],
                )
            })
            .collect();
        let actual_arr = [actual[0], actual[1], actual[2]];
        let realized_peak = actual.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        origins.push(OriginScore {
            train_months: m,
            smape: ForecastPipeline::score(&fc, &actual_arr),
            sli_bias: (fc.sli_bps - realized_peak) / realized_peak,
        });
        m += 1;
    }
    Ok(BacktestReport { origins })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(months: usize, growth: f64, noise: f64) -> (Vec<f64>, Vec<Vec<f64>>) {
        let mut rng = entitlement_core::DetRng::new(0xBACC);
        let days = months * DAYS_PER_MONTH as usize;
        let daily: Vec<f64> = (0..days)
            .map(|d| {
                let trend = 1e9 * (1.0 + growth).powf(d as f64 / DAYS_PER_MONTH as f64);
                let weekly = 1.0 + 0.1 * (2.0 * std::f64::consts::PI * d as f64 / 7.0).sin();
                trend * weekly * rng.lognormal(-noise * noise / 2.0, noise)
            })
            .collect();
        let regs = vec![vec![1000.0, 500.0]; months];
        (daily, regs)
    }

    #[test]
    fn backtest_produces_one_score_per_origin() {
        let (daily, regs) = world(18, 0.02, 0.03);
        let report = backtest(&daily, &[], &regs, &PipelineConfig::default(), 9).unwrap();
        // Origins 9..=15 (m + 3 <= 18).
        assert_eq!(report.origins.len(), 7);
        assert_eq!(report.origins[0].train_months, 9);
        assert_eq!(report.origins.last().unwrap().train_months, 15);
    }

    #[test]
    fn well_behaved_series_scores_well_at_every_origin() {
        let (daily, regs) = world(18, 0.02, 0.03);
        let report = backtest(&daily, &[], &regs, &PipelineConfig::default(), 9).unwrap();
        assert!(report.mean_smape() < 0.1, "mean sMAPE {}", report.mean_smape());
        for o in &report.origins {
            assert!(o.smape < 0.2, "origin {}: {}", o.train_months, o.smape);
        }
        // SLI bias should be small and mostly non-negative is NOT
        // guaranteed; just bounded.
        assert!(report.mean_bias().abs() < 0.15, "bias {}", report.mean_bias());
    }

    #[test]
    fn more_noise_means_worse_scores() {
        let (clean, regs) = world(15, 0.02, 0.02);
        let (noisy, _) = world(15, 0.02, 0.25);
        let cfg = PipelineConfig::default();
        let r_clean = backtest(&clean, &[], &regs, &cfg, 10).unwrap();
        let r_noisy = backtest(&noisy, &[], &regs, &cfg, 10).unwrap();
        assert!(
            r_noisy.mean_smape() > r_clean.mean_smape(),
            "noisy {} vs clean {}",
            r_noisy.mean_smape(),
            r_clean.mean_smape()
        );
    }

    #[test]
    fn short_history_errors() {
        let (daily, regs) = world(4, 0.02, 0.03);
        // min_train 1 month -> the first fit has 30 days > minimum, OK;
        // but a 0-month origin would be invalid. Use a too-short origin.
        let res = backtest(&daily[..20], &[], &regs, &PipelineConfig::default(), 0);
        // 20 days: 0 complete months, loop body never runs -> empty
        // report rather than error.
        assert!(res.unwrap().origins.is_empty());
    }
}
