//! Gradient-boosted regression trees with quantile loss.
//!
//! Paper §4.1 models inorganic changes with "a tree-based model with
//! quantile loss (e.g., alpha = 0.5)" over two regressor families: the
//! organically-adjusted traffic of recent months and infrastructure usage
//! (power, flash, disk, server counts). This module implements that model
//! from scratch: depth-limited CART trees boosted on the quantile-loss
//! (pinball) gradient.
//!
//! For α = 0.5 the loss is (half) the absolute error and the model
//! estimates the conditional median, which is robust to the spiky
//! outliers storage services produce.

use serde::{Deserialize, Serialize};

/// Hyper-parameters for the boosted ensemble.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Quantile level α in (0, 1); 0.5 = median regression.
    pub alpha: f64,
    /// Number of boosting rounds.
    pub rounds: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            alpha: 0.5,
            rounds: 100,
            max_depth: 3,
            min_leaf: 2,
            learning_rate: 0.1,
        }
    }
}

/// One node of a CART tree, stored in a flat arena.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A single regression tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Fit a tree to residuals with squared-error splits; leaf values are
    /// the α-quantile of the residuals in the leaf (the "line search"
    /// step that makes the ensemble optimize pinball loss).
    fn fit(
        xs: &[Vec<f64>],
        residuals: &[f64],
        indices: &[usize],
        depth: usize,
        cfg: &GbdtConfig,
    ) -> Tree {
        let mut nodes = Vec::new();
        Self::build(xs, residuals, indices, depth, cfg, &mut nodes);
        Tree { nodes }
    }

    fn build(
        xs: &[Vec<f64>],
        residuals: &[f64],
        indices: &[usize],
        depth: usize,
        cfg: &GbdtConfig,
        nodes: &mut Vec<Node>,
    ) -> usize {
        let make_leaf = |nodes: &mut Vec<Node>| {
            let vals: Vec<f64> = indices.iter().map(|&i| residuals[i]).collect();
            let value = entitlement_core::stats::percentile(&vals, cfg.alpha * 100.0);
            let id = nodes.len();
            nodes.push(Node::Leaf {
                value: if value.is_nan() { 0.0 } else { value },
            });
            id
        };

        if depth == 0 || indices.len() < 2 * cfg.min_leaf {
            return make_leaf(nodes);
        }

        // Find the best squared-error split across features.
        let n_features = xs[indices[0]].len();
        let total_sum: f64 = indices.iter().map(|&i| residuals[i]).sum();
        let total_cnt = indices.len() as f64;
        let parent_score = total_sum * total_sum / total_cnt;

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        // `f` is a column index into every row, not a position in one
        // slice — there is no single iterator to replace the range with.
        #[allow(clippy::needless_range_loop)]
        for f in 0..n_features {
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| xs[a][f].partial_cmp(&xs[b][f]).unwrap());
            let mut left_sum = 0.0;
            for (k, &i) in order.iter().enumerate() {
                left_sum += residuals[i];
                let left_cnt = (k + 1) as f64;
                let right_cnt = total_cnt - left_cnt;
                if (k + 1) < cfg.min_leaf || (right_cnt as usize) < cfg.min_leaf {
                    continue;
                }
                // Skip ties: can't split between equal feature values.
                if k + 1 < order.len() && xs[order[k]][f] == xs[order[k + 1]][f] {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let score =
                    left_sum * left_sum / left_cnt + right_sum * right_sum / right_cnt;
                let gain = score - parent_score;
                if best.map_or(gain > 1e-12, |(_, _, g)| gain > g) {
                    let threshold = if k + 1 < order.len() {
                        (xs[order[k]][f] + xs[order[k + 1]][f]) / 2.0
                    } else {
                        xs[order[k]][f]
                    };
                    best = Some((f, threshold, gain));
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            return make_leaf(nodes);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| xs[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return make_leaf(nodes);
        }

        let id = nodes.len();
        nodes.push(Node::Leaf { value: 0.0 }); // placeholder
        let left = Self::build(xs, residuals, &left_idx, depth - 1, cfg, nodes);
        let right = Self::build(xs, residuals, &right_idx, depth - 1, cfg, nodes);
        nodes[id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        id
    }
}

/// A gradient-boosted quantile regressor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QuantileGbdt {
    config: GbdtConfig,
    base: f64,
    trees: Vec<Tree>,
}

impl QuantileGbdt {
    /// Fit on feature rows `xs` and targets `ys`.
    ///
    /// Boosting on quantile loss: each round fits a tree to the residuals
    /// `y - F(x)` and sets leaf values to the residual α-quantile, then
    /// adds it with shrinkage. The initial prediction is the global
    /// α-quantile.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: GbdtConfig) -> QuantileGbdt {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "empty training set");
        assert!((0.0..1.0).contains(&config.alpha) && config.alpha > 0.0);
        let base = entitlement_core::stats::percentile(ys, config.alpha * 100.0);
        let mut model = QuantileGbdt {
            config: config.clone(),
            base,
            trees: Vec::with_capacity(config.rounds),
        };
        let indices: Vec<usize> = (0..xs.len()).collect();
        let mut preds: Vec<f64> = vec![base; ys.len()];
        for _ in 0..config.rounds {
            let residuals: Vec<f64> = ys.iter().zip(&preds).map(|(y, p)| y - p).collect();
            let tree = Tree::fit(xs, &residuals, &indices, config.max_depth, &config);
            for (i, x) in xs.iter().enumerate() {
                preds[i] += config.learning_rate * tree.predict(x);
            }
            model.trees.push(tree);
        }
        model
    }

    /// Predict for one feature row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base
            + self
                .trees
                .iter()
                .map(|t| self.config.learning_rate * t.predict(x))
                .sum::<f64>()
    }

    /// Number of trees in the ensemble.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the ensemble has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

/// Build the paper's lagged feature rows: for each month `t`, features are
/// `X_{t-1}, X_{t-2}, X_{t-3}` (traffic) and `Y_{t-1}, Y_{t-2}, Y_{t-3}`
/// (flattened inorganic regressors); the target is `X_t`.
///
/// Returns `(features, targets)` with one row per month `t >= 3`.
pub fn lagged_rows(traffic: &[f64], regressors: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<f64>) {
    assert_eq!(traffic.len(), regressors.len());
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for t in 3..traffic.len() {
        let mut row = vec![traffic[t - 1], traffic[t - 2], traffic[t - 3]];
        for h in 1..=3 {
            row.extend_from_slice(&regressors[t - h]);
        }
        xs.push(row);
        ys.push(traffic[t]);
    }
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use entitlement_core::DetRng;

    #[test]
    fn learns_step_function() {
        // y = 10 if x0 > 0.5 else 2.
        let mut rng = DetRng::new(1);
        let xs: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.f64(), rng.f64()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| if x[0] > 0.5 { 10.0 } else { 2.0 }).collect();
        let model = QuantileGbdt::fit(&xs, &ys, GbdtConfig::default());
        assert!((model.predict(&[0.9, 0.1]) - 10.0).abs() < 0.5);
        assert!((model.predict(&[0.1, 0.9]) - 2.0).abs() < 0.5);
        assert_eq!(model.len(), 100);
        assert!(!model.is_empty());
    }

    #[test]
    fn median_is_robust_to_outliers() {
        // Constant 5 with huge positive outliers; the median model should
        // stay near 5 while a mean model would be dragged up.
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 % 10.0]).collect();
        let ys: Vec<f64> = (0..100)
            .map(|i| if i % 10 == 0 { 500.0 } else { 5.0 })
            .collect();
        let model = QuantileGbdt::fit(&xs, &ys, GbdtConfig::default());
        let pred = model.predict(&[3.0]);
        assert!((pred - 5.0).abs() < 1.0, "median pred {pred}");
    }

    #[test]
    fn upper_quantile_sits_above_median() {
        let mut rng = DetRng::new(2);
        let xs: Vec<Vec<f64>> = (0..300).map(|_| vec![rng.f64()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 10.0 + rng.normal()).collect();
        let med = QuantileGbdt::fit(
            &xs,
            &ys,
            GbdtConfig {
                alpha: 0.5,
                ..Default::default()
            },
        );
        let p90 = QuantileGbdt::fit(
            &xs,
            &ys,
            GbdtConfig {
                alpha: 0.9,
                ..Default::default()
            },
        );
        let m = med.predict(&[0.5]);
        let u = p90.predict(&[0.5]);
        assert!(u > m, "p90 {u} must exceed median {m}");
    }

    #[test]
    fn learns_linear_relationship_approximately() {
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..200).map(|i| 3.0 * i as f64).collect();
        let model = QuantileGbdt::fit(
            &xs,
            &ys,
            GbdtConfig {
                rounds: 200,
                max_depth: 4,
                ..Default::default()
            },
        );
        // Interpolation inside the training range.
        let pred = model.predict(&[100.0]);
        assert!((pred - 300.0).abs() < 20.0, "pred {pred}");
    }

    #[test]
    fn lagged_rows_shapes() {
        let traffic = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let regs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 * 10.0, 0.0]).collect();
        let (xs, ys) = lagged_rows(&traffic, &regs);
        assert_eq!(xs.len(), 2);
        assert_eq!(ys, vec![4.0, 5.0]);
        // Row for t=3: [X2, X1, X0, Y2..., Y1..., Y0...]
        assert_eq!(xs[0][..3], [3.0, 2.0, 1.0]);
        assert_eq!(xs[0].len(), 3 + 3 * 2);
        assert_eq!(xs[0][3], 20.0);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_fit_panics() {
        let _ = QuantileGbdt::fit(&[], &[], GbdtConfig::default());
    }
}
