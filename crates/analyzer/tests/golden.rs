//! Golden diagnostics tests over the fixture corpus.
//!
//! Every file under `fixtures/broken/` must fire its named error code
//! (the `eNNNN_` filename prefix) with error severity; every file under
//! `fixtures/warn/` must fire its named code at warning severity and
//! carry no errors; every file under `fixtures/clean/` must produce an
//! empty report.

use std::fs;
use std::path::{Path, PathBuf};

use entitlement_analyzer::{Analyzer, LintBundle, Report, Severity};

fn fixture_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(kind)
}

fn run_fixture(path: &Path) -> Report {
    let text = fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let bundle = LintBundle::from_json(&text)
        .unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
    Analyzer::default().run(&bundle)
}

/// The code a fixture is named for: `e0203_caps_dont_sum.json` → "E0203".
fn expected_code(path: &Path) -> String {
    let stem = path.file_stem().and_then(|s| s.to_str()).expect("utf-8 stem");
    let prefix = stem.split('_').next().expect("code prefix");
    prefix.to_uppercase()
}

fn json_fixtures(kind: &str) -> Vec<PathBuf> {
    let dir = fixture_dir(kind);
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no fixtures under {}", dir.display());
    paths
}

#[test]
fn broken_fixtures_fire_their_named_error() {
    let mut distinct = std::collections::BTreeSet::new();
    for path in json_fixtures("broken") {
        let report = run_fixture(&path);
        let want = expected_code(&path);
        let fired: Vec<&str> = report.codes().iter().map(|c| c.as_str()).collect();
        assert!(
            fired.contains(&want.as_str()),
            "{}: expected {want} to fire, got {fired:?}\n{}",
            path.display(),
            report.render_text(),
        );
        assert!(
            report.has_errors(),
            "{}: expected at least one error-severity diagnostic\n{}",
            path.display(),
            report.render_text(),
        );
        for code in report.codes() {
            distinct.insert(code.as_str().to_string());
        }
    }
    // Acceptance floor: the corpus exercises at least ten distinct rules.
    assert!(
        distinct.len() >= 10,
        "broken corpus fires only {} distinct codes: {distinct:?}",
        distinct.len()
    );
}

#[test]
fn warn_fixtures_warn_without_errors() {
    for path in json_fixtures("warn") {
        let report = run_fixture(&path);
        let want = expected_code(&path);
        let fired: Vec<&str> = report.codes().iter().map(|c| c.as_str()).collect();
        assert!(
            fired.contains(&want.as_str()),
            "{}: expected {want} to fire, got {fired:?}\n{}",
            path.display(),
            report.render_text(),
        );
        assert!(
            !report.has_errors(),
            "{}: warning fixture must not produce errors\n{}",
            path.display(),
            report.render_text(),
        );
        assert!(report.count(Severity::Warning) > 0, "{}: no warnings", path.display());
    }
}

#[test]
fn clean_fixtures_produce_empty_reports() {
    for path in json_fixtures("clean") {
        let report = run_fixture(&path);
        assert!(
            report.diagnostics.is_empty(),
            "{}: expected a clean report, got\n{}",
            path.display(),
            report.render_text(),
        );
    }
}

/// Message-shape goldens: exact rendered first line for a few
/// representative fixtures, so codes, locations, and phrasing stay
/// stable across refactors.
#[test]
fn rendered_messages_are_stable() {
    let cases = [
        (
            "broken/e0203_caps_dont_sum.json",
            "error[E0203] hoses[0].segments: segment caps 900.000Gbps do not sum to hose total \
             800.000Gbps",
        ),
        (
            "broken/e0301_order_violation.json",
            "error[E0301] approval_order[2]: bucket c2_low is more premium than c2_high at \
             approval_order[1]; Algorithm 2 sweeps c1_low \u{2192} c4_high",
        ),
        (
            "warn/e0402_oversubscription.json",
            "warning[E0402] contracts: r0 egress entitlements total 50.000Gbps, exceeding the \
             10.000Gbps attached",
        ),
    ];
    for (rel, want_first_line) in cases {
        let path = fixture_dir("").join(rel);
        let report = run_fixture(&path);
        let rendered = report.render_text();
        let first = rendered.lines().next().unwrap_or("");
        assert_eq!(
            first,
            want_first_line,
            "{rel}: rendered first line drifted\nfull report:\n{rendered}"
        );
    }
}
