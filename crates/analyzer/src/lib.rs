#![forbid(unsafe_code)]
//! # entitlement-analyzer
//!
//! A static diagnostics engine for the entitlement workspace: it checks
//! contracts, hose/pipe requests, topologies, and availability curves
//! against the paper's invariants *before* any CPU is spent on a risk
//! sweep, and reports violations with stable error codes.
//!
//! Three layers:
//!
//! * [`diag`] — the diagnostics model: [`Code`]s (stable, never
//!   recycled), [`Severity`], structure [`Location`]s, and rendered
//!   text/JSON [`Report`]s;
//! * [`input`] — the [`LintBundle`]: every artifact a planning run
//!   consumes, all sections optional;
//! * [`rules`] — the [`Rule`] engine: ≥10 rules encoding §3–§4
//!   invariants (segment disjointness, the Algorithm 1 α⁻ > 0.5
//!   boundary, cap sums, the Algorithm 2 bucket order, capacity vs.
//!   max-flow, curve monotonicity, …).
//!
//! Surfaces: `entitlectl lint` (CLI), the approval engine's pre-flight
//! gate ([`preflight_hoses`]), and the fixture-corpus CI run.
//!
//! ```
//! use entitlement_analyzer::{Analyzer, Code, LintBundle};
//!
//! let bundle = LintBundle::from_json(
//!     r#"{"approval_order": ["c2_low", "c1_low"]}"#,
//! ).unwrap();
//! let report = Analyzer::new().run(&bundle);
//! assert!(report.has_errors());
//! assert_eq!(report.codes(), vec![Code::E0301]);
//! ```

pub mod diag;
pub mod input;
pub mod rules;

pub use diag::{CatalogEntry, Code, Diagnostic, Location, Report, Severity};
pub use input::{ApprovalConfigCheck, CurveCheck, CurvePoint, HoseFlows, LintBundle, RegionSeries};
pub use rules::{preflight_hoses, Analyzer, Rule, RuleInfo};
