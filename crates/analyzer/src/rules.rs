//! The rule engine: each [`Rule`] encodes one or more paper invariants
//! and reports violations as [`Diagnostic`]s with stable codes.
//!
//! Rules are pure functions of the [`LintBundle`]; sections a rule needs
//! that are absent simply disable it. The default [`Analyzer`] carries
//! every rule; callers wanting a subset (e.g. the approval pre-flight
//! gate, which only sees hoses and a topology) still run all rules —
//! absence of the other sections makes the irrelevant ones no-ops.

use crate::diag::{Code, Diagnostic, Location, Report};
use crate::input::{CurveCheck, LintBundle};
use entitlement_core::qos::{QosBand, QosBucket};
use entitlement_core::{Direction, QosClass, Rate};
use entitlement_hose::segment::{alpha_minus, alpha_plus};
use entitlement_hose::HoseRequest;
use entitlement_topology::{max_flow, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// Static metadata about a rule, for `--list-rules` style output.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Short machine-friendly rule name.
    pub name: &'static str,
    /// The codes this rule can emit.
    pub codes: &'static [Code],
    /// One-line description of what it checks.
    pub description: &'static str,
}

/// One analyzer rule.
pub trait Rule {
    /// Metadata: name, emitted codes, description.
    fn info(&self) -> RuleInfo;
    /// Inspect the bundle and append findings.
    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>);
}

/// Relative float tolerance shared by the aggregation rules (matches
/// `HoseRequest::validate`).
fn rel_eps(reference: f64) -> f64 {
    1e-6 * reference.abs().max(1.0)
}

// ---- contract rules ------------------------------------------------------

/// E0101: entitled rates are positive and finite.
pub struct ContractRates;

impl Rule for ContractRates {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "contract-rates",
            codes: &[Code::E0101],
            description: "entitled rates are positive, finite bits/s",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let Some(contracts) = &bundle.contracts else { return };
        for (ci, c) in contracts.iter().enumerate() {
            for (ei, e) in c.entitlements.iter().enumerate() {
                let bps = e.entitled_rate.as_bps();
                if !bps.is_finite() || bps <= 0.0 {
                    out.push(Diagnostic::new(
                        Code::E0101,
                        Location::root("contracts").index(ci).child("entitlements").index(ei),
                        format!("entitled rate {bps} bps is not a positive finite rate"),
                    ));
                }
            }
        }
    }
}

/// E0102 + E0302: SLO range and SLO-vs-class consistency.
pub struct ContractSlo;

impl Rule for ContractSlo {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "contract-slo",
            codes: &[Code::E0102, Code::E0302],
            description: "SLO in (0,1] and no stricter than the best entitled class default",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let Some(contracts) = &bundle.contracts else { return };
        for (ci, c) in contracts.iter().enumerate() {
            let loc = Location::root("contracts").index(ci).child("slo");
            let a = c.slo.availability();
            if !a.is_finite() || a <= 0.0 || a > 1.0 {
                out.push(Diagnostic::new(
                    Code::E0102,
                    loc,
                    format!("SLO availability {a} outside (0, 1]"),
                ));
                continue;
            }
            // The most premium entitled class bounds what the network
            // will promise; asking past its default target is suspect.
            if let Some(best) = c.entitlements.iter().map(|e| e.qos).min_by_key(|q| q.priority())
            {
                if a > best.default_slo() + 1e-12 {
                    out.push(Diagnostic::new(
                        Code::E0302,
                        loc,
                        format!(
                            "SLO {a} is stricter than the {best} class default {}",
                            best.default_slo()
                        ),
                    ));
                }
            }
        }
    }
}

/// E0104 + E0105: NPG consistency and registry resolution.
pub struct ContractNpg;

impl Rule for ContractNpg {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "contract-npg",
            codes: &[Code::E0104, Code::E0105],
            description: "entitlement rows bind the contract NPG; NPGs resolve in the registry",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let registry: Option<BTreeSet<u32>> =
            bundle.npgs.as_ref().map(|v| v.iter().copied().collect());
        let Some(contracts) = &bundle.contracts else { return };
        for (ci, c) in contracts.iter().enumerate() {
            let cloc = Location::root("contracts").index(ci);
            if let Some(reg) = &registry {
                if !c.npg.is_low_touch() && !reg.contains(&c.npg.0) {
                    out.push(Diagnostic::new(
                        Code::E0105,
                        cloc.child("npg"),
                        format!("contract NPG {} is not in the service registry", c.npg),
                    ));
                }
            }
            for (ei, e) in c.entitlements.iter().enumerate() {
                if e.npg != c.npg {
                    out.push(Diagnostic::new(
                        Code::E0104,
                        cloc.child("entitlements").index(ei).child("npg"),
                        format!(
                            "entitlement row binds {} but the contract binds {}",
                            e.npg, c.npg
                        ),
                    ));
                }
            }
        }
    }
}

/// E0103 + E0106: row duplication and empty contracts.
pub struct ContractRows;

impl Rule for ContractRows {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "contract-rows",
            codes: &[Code::E0103, Code::E0106],
            description: "no overlapping duplicate rows; contracts are non-empty",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let Some(contracts) = &bundle.contracts else { return };
        for (ci, c) in contracts.iter().enumerate() {
            let cloc = Location::root("contracts").index(ci);
            if c.entitlements.is_empty() {
                out.push(Diagnostic::new(
                    Code::E0106,
                    cloc.clone(),
                    format!("contract #{} for {} has no entitlements", c.id.0, c.npg),
                ));
            }
            for (i, a) in c.entitlements.iter().enumerate() {
                for (j, b) in c.entitlements.iter().enumerate().skip(i + 1) {
                    if a.qos == b.qos
                        && a.region == b.region
                        && a.direction == b.direction
                        && a.period.overlaps(b.period)
                    {
                        out.push(Diagnostic::new(
                            Code::E0103,
                            cloc.child("entitlements").index(j),
                            format!(
                                "row duplicates entitlements[{i}] for {} {} {} over {}",
                                a.qos, a.region, a.direction, b.period
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---- hose rules ----------------------------------------------------------

/// E0201–E0204: the structural segmented-hose invariants (the static
/// mirror of `HoseRequest::validate`, with per-segment locations).
pub struct HoseStructure;

impl Rule for HoseStructure {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "hose-structure",
            codes: &[Code::E0201, Code::E0202, Code::E0203, Code::E0204],
            description: "segments are non-empty, disjoint, α ∈ (0,1), caps sum to the total",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let Some(hoses) = &bundle.hoses else { return };
        for (hi, h) in hoses.iter().enumerate() {
            let hloc = Location::root("hoses").index(hi);
            if h.segments.is_empty() {
                out.push(Diagnostic::new(
                    Code::E0201,
                    hloc.child("segments"),
                    "hose has no segments".to_string(),
                ));
                continue;
            }
            let mut seen: BTreeMap<entitlement_core::RegionId, usize> = BTreeMap::new();
            let mut cap_sum = 0.0;
            for (si, s) in h.segments.iter().enumerate() {
                let sloc = hloc.child("segments").index(si);
                if s.regions.is_empty() {
                    out.push(Diagnostic::new(
                        Code::E0201,
                        sloc.child("regions"),
                        "segment covers no regions".to_string(),
                    ));
                }
                if s.regions.contains(&h.region) {
                    out.push(Diagnostic::new(
                        Code::E0202,
                        sloc.child("regions"),
                        format!("hose region {} appears among its own remotes", h.region),
                    ));
                }
                for r in &s.regions {
                    if let Some(prev) = seen.insert(*r, si) {
                        out.push(Diagnostic::new(
                            Code::E0202,
                            sloc.child("regions"),
                            format!("region {r} already covered by segments[{prev}]"),
                        ));
                    }
                }
                let cap = s.cap.as_bps();
                cap_sum += cap;
                if !cap.is_finite()
                    || cap <= 0.0
                    || cap > h.total.as_bps() + rel_eps(h.total.as_bps())
                {
                    out.push(Diagnostic::new(
                        Code::E0204,
                        sloc.child("cap"),
                        format!(
                            "segment cap {} implies α outside (0, 1) for hose total {}",
                            s.cap, h.total
                        ),
                    ));
                }
            }
            if (cap_sum - h.total.as_bps()).abs() > rel_eps(h.total.as_bps()) {
                out.push(Diagnostic::new(
                    Code::E0203,
                    hloc.child("segments"),
                    format!(
                        "segment caps {} do not sum to hose total {}",
                        Rate::bps(cap_sum),
                        h.total
                    ),
                ));
            }
        }
    }
}

/// E0205–E0207: segmentation validity against the observed flow series
/// (the Algorithm 1 boundary conditions).
pub struct SegmentationBoundary;

impl Rule for SegmentationBoundary {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "segmentation-boundary",
            codes: &[Code::E0205, Code::E0206, Code::E0207],
            description: "first segment α⁻ > 0.5; caps cover α⁺; flows covered by segments",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let (Some(hoses), Some(flows)) = (&bundle.hoses, &bundle.flows) else { return };
        for (fi, hf) in flows.iter().enumerate() {
            let floc = Location::root("flows").index(fi);
            let Some(h) = hoses.get(hf.hose) else {
                out.push(Diagnostic::new(
                    Code::E0207,
                    floc.child("hose"),
                    format!("flow series references hoses[{}], which does not exist", hf.hose),
                ));
                continue;
            };
            let hloc = Location::root("hoses").index(hf.hose);
            let series = hf.to_flow_series();
            let observed: BTreeSet<entitlement_core::RegionId> = series.keys().copied().collect();
            let covered = h.remotes();

            for r in observed.difference(&covered) {
                out.push(Diagnostic::new(
                    Code::E0207,
                    floc.child("series"),
                    format!("observed destination {r} is not covered by any segment"),
                ));
            }
            for r in covered.difference(&observed) {
                out.push(Diagnostic::new(
                    Code::E0207,
                    hloc.child("segments"),
                    format!("segment destination {r} never appears in the flow series"),
                ));
            }

            // The boundary checks only make sense on a genuine
            // segmentation whose destinations all carry flow data.
            if h.segments.len() < 2 || !observed.is_superset(&covered) {
                continue;
            }
            let first = &h.segments[0];
            let a_minus = alpha_minus(&series, &first.regions);
            // Algorithm 1 stops once α⁻ crosses 0.5, or degenerately
            // swallows all but one destination; anything else means the
            // split was not produced by (or equivalent to) the algorithm.
            if a_minus <= 0.5 && first.regions.len() + 1 < covered.len() {
                out.push(Diagnostic::new(
                    Code::E0205,
                    hloc.child("segments").index(0),
                    format!(
                        "first segment α⁻ = {a_minus:.4} does not exceed the 0.5 boundary"
                    ),
                ));
            }
            if h.total.as_bps() > 0.0 {
                for (si, s) in h.segments.iter().enumerate() {
                    let share = s.cap.as_bps() / h.total.as_bps();
                    let a_plus = alpha_plus(&series, &s.regions);
                    if share + 1e-6 < a_plus {
                        out.push(Diagnostic::new(
                            Code::E0206,
                            hloc.child("segments").index(si).child("cap"),
                            format!(
                                "cap share {share:.4} is below the α⁺ = {a_plus:.4} the \
                                 flows actually reached"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// E0208 + E0209: pipe realizations stay inside their owning hose.
pub struct PipeAggregation;

impl PipeAggregation {
    /// The hose that owns a pipe: matching NPG + QoS, and the pipe
    /// starts (egress hose) or ends (ingress hose) at the hose region.
    fn owner<'h>(
        hoses: &'h [HoseRequest],
        pipe: &entitlement_hose::PipeRequest,
    ) -> Option<(usize, &'h HoseRequest)> {
        hoses.iter().enumerate().find(|(_, h)| {
            h.npg == pipe.npg
                && h.qos == pipe.qos
                && match h.direction {
                    Direction::Egress => h.region == pipe.src,
                    Direction::Ingress => h.region == pipe.dst,
                }
        })
    }
}

impl Rule for PipeAggregation {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "pipe-aggregation",
            codes: &[Code::E0208, Code::E0209],
            description: "pipes sum within the hose total and fit their segment caps",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let (Some(hoses), Some(pipes)) = (&bundle.hoses, &bundle.pipes) else { return };
        let mut per_hose: BTreeMap<usize, f64> = BTreeMap::new();
        for (pi, p) in pipes.iter().enumerate() {
            let Some((hi, h)) = Self::owner(hoses, p) else { continue };
            *per_hose.entry(hi).or_insert(0.0) += p.rate.as_bps();
            let remote = match h.direction {
                Direction::Egress => p.dst,
                Direction::Ingress => p.src,
            };
            let cap = h.max_toward(remote);
            if cap.is_zero() {
                out.push(Diagnostic::new(
                    Code::E0209,
                    Location::root("pipes").index(pi),
                    format!(
                        "pipe toward {remote} is not covered by any segment of hoses[{hi}]"
                    ),
                ));
            } else if p.rate.as_bps() > cap.as_bps() + rel_eps(cap.as_bps()) {
                out.push(Diagnostic::new(
                    Code::E0209,
                    Location::root("pipes").index(pi).child("rate"),
                    format!(
                        "pipe rate {} exceeds the {} cap of its segment in hoses[{hi}]",
                        p.rate, cap
                    ),
                ));
            }
        }
        for (hi, sum) in per_hose {
            let total = hoses[hi].total.as_bps();
            if sum > total + rel_eps(total) {
                out.push(Diagnostic::new(
                    Code::E0208,
                    Location::root("hoses").index(hi).child("total"),
                    format!(
                        "pipes aggregate to {}, exceeding the hose total {}",
                        Rate::bps(sum),
                        hoses[hi].total
                    ),
                ));
            }
        }
    }
}

// ---- ordering rules ------------------------------------------------------

/// E0301: the planned approval sweep follows the strict bucket order.
pub struct ApprovalOrder;

impl ApprovalOrder {
    fn parse_bucket(name: &str) -> Option<QosBucket> {
        let (class, band) = name.split_once('_')?;
        let class = match class {
            "c1" => QosClass::C1,
            "c2" => QosClass::C2,
            "c3" => QosClass::C3,
            "c4" => QosClass::C4,
            _ => return None,
        };
        let band = match band {
            "low" => QosBand::Low,
            "high" => QosBand::High,
            _ => return None,
        };
        Some(QosBucket { class, band })
    }
}

impl Rule for ApprovalOrder {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "approval-order",
            codes: &[Code::E0301],
            description: "approval sweeps buckets strictly c1_low → c4_high",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let Some(order) = &bundle.approval_order else { return };
        let mut prev: Option<(usize, QosBucket)> = None;
        for (i, name) in order.iter().enumerate() {
            let loc = Location::root("approval_order").index(i);
            let Some(bucket) = Self::parse_bucket(name) else {
                out.push(Diagnostic::new(
                    Code::E0301,
                    loc,
                    format!("unknown approval bucket '{name}' (expected c1_low … c4_high)"),
                ));
                continue;
            };
            if let Some((pi, pb)) = prev {
                if bucket.rank() < pb.rank() {
                    out.push(Diagnostic::new(
                        Code::E0301,
                        loc,
                        format!(
                            "bucket {bucket} is more premium than {pb} at approval_order[{pi}]; \
                             Algorithm 2 sweeps c1_low → c4_high"
                        ),
                    ));
                }
            }
            prev = Some((i, bucket));
        }
    }
}

// ---- topology rules ------------------------------------------------------

/// E0401: every region reference resolves in the topology.
pub struct TopologyRefs;

impl TopologyRefs {
    fn dangling(topo: &Topology, r: entitlement_core::RegionId) -> bool {
        topo.region(r).is_none()
    }
}

impl Rule for TopologyRefs {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "topology-refs",
            codes: &[Code::E0401],
            description: "contract, hose, and pipe regions exist in the topology",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let Some(topo) = &bundle.topology else { return };
        let mut dangle = |loc: Location, r: entitlement_core::RegionId| {
            if Self::dangling(topo, r) {
                out.push(Diagnostic::new(
                    Code::E0401,
                    loc,
                    format!("region {r} does not exist in the {}-region topology", topo.region_count()),
                ));
            }
        };
        if let Some(contracts) = &bundle.contracts {
            for (ci, c) in contracts.iter().enumerate() {
                for (ei, e) in c.entitlements.iter().enumerate() {
                    dangle(
                        Location::root("contracts").index(ci).child("entitlements").index(ei).child("region"),
                        e.region,
                    );
                }
            }
        }
        if let Some(hoses) = &bundle.hoses {
            for (hi, h) in hoses.iter().enumerate() {
                let hloc = Location::root("hoses").index(hi);
                dangle(hloc.child("region"), h.region);
                for (si, s) in h.segments.iter().enumerate() {
                    for &r in &s.regions {
                        dangle(hloc.child("segments").index(si).child("regions"), r);
                    }
                }
            }
        }
        if let Some(pipes) = &bundle.pipes {
            for (pi, p) in pipes.iter().enumerate() {
                let ploc = Location::root("pipes").index(pi);
                dangle(ploc.child("src"), p.src);
                dangle(ploc.child("dst"), p.dst);
            }
        }
    }
}

/// E0402 + E0403: physical capacity checks — aggregate oversubscription
/// (warning: answered by counter-proposals, not rejection) and per-pipe
/// max-flow infeasibility (error: no routing can ever satisfy it).
pub struct CapacityOversubscription;

impl Rule for CapacityOversubscription {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "capacity-oversubscription",
            codes: &[Code::E0402, Code::E0403],
            description: "entitled volume fits attached capacity; pipes fit the max-flow",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let Some(topo) = &bundle.topology else { return };
        // Aggregate entitled volume per (region, direction) vs attached
        // capacity. Sums ignore periods: a region is oversubscribed if
        // its worst-case concurrent entitlements exceed the fiber.
        if let Some(contracts) = &bundle.contracts {
            let mut entitled: BTreeMap<(entitlement_core::RegionId, Direction), f64> =
                BTreeMap::new();
            for c in contracts {
                for e in &c.entitlements {
                    *entitled.entry((e.region, e.direction)).or_insert(0.0) +=
                        e.entitled_rate.as_bps();
                }
            }
            for ((region, direction), sum) in entitled {
                if TopologyRefs::dangling(topo, region) {
                    continue; // E0401 already fired
                }
                let cap = match direction {
                    Direction::Egress => topo.egress_capacity(region),
                    Direction::Ingress => topo.ingress_capacity(region),
                };
                if sum > cap.as_bps() + rel_eps(cap.as_bps()) {
                    out.push(Diagnostic::new(
                        Code::E0402,
                        Location::root("contracts"),
                        format!(
                            "{} {direction} entitlements total {}, exceeding the {} attached",
                            region,
                            Rate::bps(sum),
                            cap
                        ),
                    ));
                }
            }
        }
        if let Some(hoses) = &bundle.hoses {
            for (hi, h) in hoses.iter().enumerate() {
                if TopologyRefs::dangling(topo, h.region) {
                    continue;
                }
                let cap = match h.direction {
                    Direction::Egress => topo.egress_capacity(h.region),
                    Direction::Ingress => topo.ingress_capacity(h.region),
                };
                if h.total.as_bps() > cap.as_bps() + rel_eps(cap.as_bps()) {
                    out.push(Diagnostic::new(
                        Code::E0402,
                        Location::root("hoses").index(hi).child("total"),
                        format!(
                            "hose total {} exceeds the {} attached at {}",
                            h.total, cap, h.region
                        ),
                    ));
                }
            }
        }
        if let Some(pipes) = &bundle.pipes {
            for (pi, p) in pipes.iter().enumerate() {
                if TopologyRefs::dangling(topo, p.src) || TopologyRefs::dangling(topo, p.dst) {
                    continue;
                }
                let mf = max_flow(topo, p.src, p.dst, &[]);
                if p.rate.as_bps() > mf.as_bps() + rel_eps(mf.as_bps()) {
                    out.push(Diagnostic::new(
                        Code::E0403,
                        Location::root("pipes").index(pi).child("rate"),
                        format!(
                            "pipe rate {} exceeds the {} max-flow between {} and {} \
                             even with zero failures",
                            p.rate, mf, p.src, p.dst
                        ),
                    ));
                }
            }
        }
    }
}

/// E0404: link attribute sanity.
pub struct LinkAttributes;

impl Rule for LinkAttributes {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "link-attributes",
            codes: &[Code::E0404],
            description: "links have positive capacity and availability in (0, 1]",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let Some(topo) = &bundle.topology else { return };
        for (li, l) in topo.links().iter().enumerate() {
            let loc = Location::root("topology").child("links").index(li);
            if !l.capacity.as_bps().is_finite() || l.capacity.as_bps() <= 0.0 {
                out.push(Diagnostic::new(
                    Code::E0404,
                    loc.child("capacity"),
                    format!("link {} has non-positive capacity {}", l.id, l.capacity),
                ));
            }
            if !l.availability.is_finite() || l.availability <= 0.0 || l.availability > 1.0 {
                out.push(Diagnostic::new(
                    Code::E0404,
                    loc.child("availability"),
                    format!("link {} availability {} outside (0, 1]", l.id, l.availability),
                ));
            }
        }
    }
}

// ---- curve rules ---------------------------------------------------------

/// E0501 + E0503: curve shape — monotone, finite, availability in [0, 1].
pub struct CurveShape;

impl Rule for CurveShape {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "curve-shape",
            codes: &[Code::E0501, Code::E0503],
            description: "availability curves are valid and monotone non-increasing",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let Some(curves) = &bundle.curves else { return };
        for (ci, c) in curves.iter().enumerate() {
            let cloc = Location::root("curves").index(ci);
            let mut valid = true;
            for (pi, p) in c.points.iter().enumerate() {
                if !p.gbps.is_finite()
                    || p.gbps < 0.0
                    || !p.availability.is_finite()
                    || p.availability < 0.0
                    || p.availability > 1.0
                {
                    valid = false;
                    out.push(Diagnostic::new(
                        Code::E0503,
                        cloc.child("points").index(pi),
                        format!(
                            "curve '{}' point (volume {} G, availability {}) is invalid",
                            c.name, p.gbps, p.availability
                        ),
                    ));
                }
            }
            if !valid {
                continue;
            }
            // Availability of "at least b" can only fall as b grows.
            let mut sorted: Vec<_> = c.points.clone();
            sorted.sort_by(|a, b| a.gbps.total_cmp(&b.gbps));
            for w in sorted.windows(2) {
                if w[1].availability > w[0].availability + 1e-12 {
                    out.push(Diagnostic::new(
                        Code::E0501,
                        cloc.child("points"),
                        format!(
                            "curve '{}' is non-monotone: availability rises from {} to {} \
                             as volume grows from {} G to {} G",
                            c.name, w[0].availability, w[1].availability, w[0].gbps, w[1].gbps
                        ),
                    ));
                    break;
                }
            }
        }
    }
}

/// E0502 (+ E0102 for the target itself): the SLO is attainable on the
/// curve — some volume meets it.
pub struct CurveDomain;

impl CurveDomain {
    fn max_availability(c: &CurveCheck) -> f64 {
        c.points.iter().map(|p| p.availability).fold(0.0, f64::max)
    }
}

impl Rule for CurveDomain {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "curve-domain",
            codes: &[Code::E0502, Code::E0102],
            description: "the SLO target lies inside the availability-curve domain",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let Some(curves) = &bundle.curves else { return };
        for (ci, c) in curves.iter().enumerate() {
            let loc = Location::root("curves").index(ci).child("slo");
            if !c.slo.is_finite() || c.slo <= 0.0 || c.slo > 1.0 {
                out.push(Diagnostic::new(
                    Code::E0102,
                    loc,
                    format!("SLO availability {} outside (0, 1]", c.slo),
                ));
                continue;
            }
            let top = Self::max_availability(c);
            if c.slo > top + 1e-12 {
                out.push(Diagnostic::new(
                    Code::E0502,
                    loc,
                    format!(
                        "curve '{}' tops out at availability {top}; no volume meets the {} SLO",
                        c.name, c.slo
                    ),
                ));
            }
        }
    }
}

// ---- SLO policy rules ----------------------------------------------------

/// E0601 + E0602 + E0603: a burn-rate alerting policy is internally
/// consistent — positive integer windows, fast strictly shorter than
/// slow, thresholds past 1×, tolerance in range. Mirrors
/// `entitlement-slo`'s `SloPolicy::validate` so a monitoring config
/// lints the same way it would fail at `entitlectl slo` startup.
pub struct SloPolicySanity;

impl SloPolicySanity {
    /// Whether `v` is a positive whole number (cycle counts come in as
    /// `f64` so fractional JSON values land here, not in the parser).
    fn positive_count(v: f64) -> bool {
        v.is_finite() && v >= 1.0 && v.fract() == 0.0
    }
}

impl Rule for SloPolicySanity {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "slo-policy-sanity",
            codes: &[Code::E0601, Code::E0602, Code::E0603],
            description: "burn-rate alert policies have sane windows, thresholds, tolerances",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let Some(policies) = &bundle.slo_policies else { return };
        for (pi, p) in policies.iter().enumerate() {
            let loc = Location::root("slo_policies").index(pi);
            for (field, v) in [
                ("fast_window", p.fast_window),
                ("slow_window", p.slow_window),
                ("hysteresis", p.hysteresis),
            ] {
                if !Self::positive_count(v) {
                    out.push(Diagnostic::new(
                        Code::E0601,
                        loc.child(field),
                        format!(
                            "policy '{}': {field} {v} is not a positive whole cycle count",
                            p.name
                        ),
                    ));
                }
            }
            if !p.delivery_tolerance.is_finite()
                || p.delivery_tolerance < 0.0
                || p.delivery_tolerance >= 1.0
            {
                out.push(Diagnostic::new(
                    Code::E0601,
                    loc.child("delivery_tolerance"),
                    format!(
                        "policy '{}': delivery tolerance {} outside [0, 1)",
                        p.name, p.delivery_tolerance
                    ),
                ));
            }
            if p.fast_window >= p.slow_window {
                out.push(Diagnostic::new(
                    Code::E0602,
                    loc.child("fast_window"),
                    format!(
                        "policy '{}': fast window ({} cycles) must be strictly shorter \
                         than the slow window ({} cycles)",
                        p.name, p.fast_window, p.slow_window
                    ),
                ));
            }
            for (field, v) in [("fast_burn", p.fast_burn), ("slow_burn", p.slow_burn)] {
                if !v.is_finite() || v <= 1.0 {
                    out.push(Diagnostic::new(
                        Code::E0603,
                        loc.child(field),
                        format!(
                            "policy '{}': {field} threshold {v} must exceed 1 (1× burn \
                             just spends the budget exactly)",
                            p.name
                        ),
                    ));
                }
            }
        }
    }
}

// ---- approval config rules -----------------------------------------------

/// E0701 + E0702: an approval-engine deployment config cannot grant
/// without simulation. `tms_per_hose: 0` means `GEN_DEMAND` produces no
/// realizations and every hose would be decided on zero risk sweeps;
/// `max_cuts`/`k_paths` must stay inside what the sweep can enumerate.
pub struct ApprovalConfigSanity;

impl Rule for ApprovalConfigSanity {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            name: "approval-config-sanity",
            codes: &[Code::E0701, Code::E0702],
            description: "approval configs back every grant with TM realizations and a bounded sweep",
        }
    }

    fn check(&self, bundle: &LintBundle, out: &mut Vec<Diagnostic>) {
        let Some(configs) = &bundle.approval_configs else { return };
        for (ci, c) in configs.iter().enumerate() {
            let loc = Location::root("approval_configs").index(ci);
            if !SloPolicySanity::positive_count(c.tms_per_hose) {
                out.push(Diagnostic::new(
                    Code::E0701,
                    loc.child("tms_per_hose"),
                    format!(
                        "config '{}': tms_per_hose {} is not a positive whole count — \
                         every hose would be approved with zero TM realizations behind it",
                        c.name, c.tms_per_hose
                    ),
                ));
            }
            if !c.max_cuts.is_finite()
                || c.max_cuts < 0.0
                || c.max_cuts.fract() != 0.0
                || c.max_cuts > 2.0
            {
                out.push(Diagnostic::new(
                    Code::E0702,
                    loc.child("max_cuts"),
                    format!(
                        "config '{}': max_cuts {} outside the enumerable range 0..=2",
                        c.name, c.max_cuts
                    ),
                ));
            }
            if !SloPolicySanity::positive_count(c.k_paths) {
                out.push(Diagnostic::new(
                    Code::E0702,
                    loc.child("k_paths"),
                    format!(
                        "config '{}': k_paths {} is not a positive whole path count",
                        c.name, c.k_paths
                    ),
                ));
            }
        }
    }
}

// ---- the engine ----------------------------------------------------------

/// The rule engine: a fixed set of [`Rule`]s run over a [`LintBundle`].
pub struct Analyzer {
    rules: Vec<Box<dyn Rule>>,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer {
            rules: vec![
                Box::new(ContractRates),
                Box::new(ContractSlo),
                Box::new(ContractNpg),
                Box::new(ContractRows),
                Box::new(HoseStructure),
                Box::new(SegmentationBoundary),
                Box::new(PipeAggregation),
                Box::new(ApprovalOrder),
                Box::new(TopologyRefs),
                Box::new(CapacityOversubscription),
                Box::new(LinkAttributes),
                Box::new(CurveShape),
                Box::new(CurveDomain),
                Box::new(SloPolicySanity),
                Box::new(ApprovalConfigSanity),
            ],
        }
    }
}

impl Analyzer {
    /// The default analyzer with every rule registered.
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// Metadata for every registered rule.
    pub fn rule_infos(&self) -> Vec<RuleInfo> {
        self.rules.iter().map(|r| r.info()).collect()
    }

    /// Run every rule over the bundle.
    pub fn run(&self, bundle: &LintBundle) -> Report {
        let mut diagnostics = Vec::new();
        for rule in &self.rules {
            rule.check(bundle, &mut diagnostics);
        }
        Report { diagnostics }
    }
}

/// The approval pre-flight entry point: analyze a hose batch (plus the
/// topology it will be approved against) and return the report. Callers
/// gate on [`Report::has_errors`] — error-severity findings mean the
/// hose must not reach the risk sweep.
pub fn preflight_hoses(topo: Option<&Topology>, hoses: &[HoseRequest]) -> Report {
    let mut bundle = LintBundle::for_hoses(hoses);
    bundle.topology = topo.cloned();
    Analyzer::new().run(&bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use entitlement_core::{NpgId, RegionId};
    use entitlement_hose::HoseSegment;

    fn valid_hose() -> HoseRequest {
        HoseRequest {
            npg: NpgId(1),
            qos: QosClass::C2,
            region: RegionId(0),
            direction: Direction::Egress,
            total: Rate::gbps(900.0),
            segments: vec![
                HoseSegment {
                    regions: [RegionId(1), RegionId(2)].into_iter().collect(),
                    cap: Rate::gbps(400.0),
                },
                HoseSegment {
                    regions: [RegionId(3), RegionId(4)].into_iter().collect(),
                    cap: Rate::gbps(500.0),
                },
            ],
        }
    }

    #[test]
    fn clean_hose_produces_no_findings() {
        let report = preflight_hoses(None, &[valid_hose()]);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn overlapping_segments_fire_e0202() {
        let mut h = valid_hose();
        h.segments[1].regions.insert(RegionId(1));
        let report = preflight_hoses(None, &[h]);
        assert!(report.has_errors());
        assert!(report.codes().contains(&Code::E0202));
    }

    #[test]
    fn cap_mismatch_fires_e0203() {
        let mut h = valid_hose();
        h.segments[0].cap = Rate::gbps(100.0);
        let report = preflight_hoses(None, &[h]);
        assert!(report.codes().contains(&Code::E0203));
    }

    #[test]
    fn every_rule_advertises_codes() {
        for info in Analyzer::new().rule_infos() {
            assert!(!info.codes.is_empty(), "{} advertises no codes", info.name);
            assert!(!info.description.is_empty());
        }
        assert!(Analyzer::new().rule_infos().len() >= 10, "≥10 rules required");
    }

    #[test]
    fn bucket_parsing() {
        assert!(ApprovalOrder::parse_bucket("c1_low").is_some());
        assert!(ApprovalOrder::parse_bucket("c4_high").is_some());
        assert!(ApprovalOrder::parse_bucket("c5_low").is_none());
        assert!(ApprovalOrder::parse_bucket("premium").is_none());
    }
}
