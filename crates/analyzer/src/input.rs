//! The analyzer's input: a *lint bundle* tying together the artifacts a
//! planning run consumes — contracts, hose/pipe requests, the observed
//! flow series behind a segmentation, the backbone topology, planned
//! approval order, and availability curves.
//!
//! Every section is optional; rules fire only on what is present. Two
//! on-disk JSON shapes are accepted:
//!
//! * a bare array — a contract snapshot exactly as written by
//!   `entitlectl plan` / `ContractDb::save`;
//! * an object with any of the sections below — the full bundle.

use entitlement_core::EntitlementContract;
use entitlement_hose::segment::FlowSeries;
use entitlement_hose::{HoseRequest, PipeRequest};
use entitlement_topology::Topology;
use serde::{Deserialize, Serialize};

/// One destination's observed flow samples (the `F(dst, t)` row).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegionSeries {
    /// Destination region id.
    pub region: u16,
    /// Samples over the shared time grid.
    pub samples: Vec<f64>,
}

/// The flow series justifying one hose's segmentation, keyed by the
/// hose's index in [`LintBundle::hoses`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HoseFlows {
    /// Index into `hoses`.
    pub hose: usize,
    /// Per-destination series.
    pub series: Vec<RegionSeries>,
}

impl HoseFlows {
    /// Convert into the hose crate's [`FlowSeries`] map form.
    pub fn to_flow_series(&self) -> FlowSeries {
        self.series
            .iter()
            .map(|r| (entitlement_core::RegionId(r.region), r.samples.clone()))
            .collect()
    }
}

/// One point of a bandwidth availability curve, as plotted: the
/// probability that at least `gbps` is admitted.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Admitted volume in Gbps.
    pub gbps: f64,
    /// Availability of at least that volume.
    pub availability: f64,
}

/// An availability curve plus the SLO it is meant to serve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CurveCheck {
    /// Label for diagnostics, e.g. the pipe or hose it belongs to.
    pub name: String,
    /// The SLO target the curve will be queried at.
    pub slo: f64,
    /// Plot points, expected sorted by increasing volume with
    /// non-increasing availability.
    pub points: Vec<CurvePoint>,
}

/// An approval-engine configuration to sanity-check (the
/// `ApprovalConfig` knobs as they would appear in an approval-service
/// deployment config). Counts are `f64` so fractional or negative JSON
/// values are caught by the rule rather than by the parser.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ApprovalConfigCheck {
    /// Label for diagnostics, e.g. the approval service the config
    /// deploys to.
    pub name: String,
    /// Representative TM realizations per hose; zero means hoses would
    /// be decided with no risk simulation behind them.
    pub tms_per_hose: f64,
    /// Maximum simultaneous fiber cuts the sweep enumerates.
    pub max_cuts: f64,
    /// Multipath fan-out for routing.
    pub k_paths: f64,
}

/// An SLO evaluation policy to sanity-check (the knobs `entitlectl
/// slo` accepts, as they would appear in monitoring config). Window
/// and hysteresis counts are `f64` so a fractional value in the JSON
/// is caught by the rule rather than by the parser.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SloPolicyCheck {
    /// Label for diagnostics, e.g. the service the policy watches.
    pub name: String,
    /// Fast burn window, cycles.
    pub fast_window: f64,
    /// Slow burn window, cycles.
    pub slow_window: f64,
    /// Fast-window burn threshold (× the error budget).
    pub fast_burn: f64,
    /// Slow-window burn threshold.
    pub slow_burn: f64,
    /// Consecutive calm cycles before a firing alert clears.
    pub hysteresis: f64,
    /// Fractional delivery slack, in [0, 1).
    pub delivery_tolerance: f64,
}

/// Everything the analyzer can look at. All sections optional.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LintBundle {
    /// Entitlement contracts (a `ContractDb` snapshot).
    pub contracts: Option<Vec<EntitlementContract>>,
    /// Hose requests awaiting approval.
    pub hoses: Option<Vec<HoseRequest>>,
    /// Pipe realizations; consistency-checked against `hoses`.
    pub pipes: Option<Vec<PipeRequest>>,
    /// Observed flow series backing segmented hoses.
    pub flows: Option<Vec<HoseFlows>>,
    /// The backbone the contracts/hoses reference.
    pub topology: Option<Topology>,
    /// Planned approval sweep order as bucket names
    /// (`"c1_low"` … `"c4_high"`).
    pub approval_order: Option<Vec<String>>,
    /// Known NPG registry; when present, dangling NPGs are errors.
    pub npgs: Option<Vec<u32>>,
    /// Availability curves paired with their SLO targets.
    pub curves: Option<Vec<CurveCheck>>,
    /// SLO evaluation policies (burn-rate alerting configs).
    pub slo_policies: Option<Vec<SloPolicyCheck>>,
    /// Approval-engine configurations (the `ApprovalConfig` knobs).
    pub approval_configs: Option<Vec<ApprovalConfigCheck>>,
}

impl LintBundle {
    /// Parse bundle JSON: either a bare contract-snapshot array or a
    /// full bundle object.
    pub fn from_json(text: &str) -> Result<LintBundle, String> {
        let trimmed = text.trim_start();
        if trimmed.starts_with('[') {
            let contracts: Vec<EntitlementContract> =
                serde_json::from_str(text).map_err(|e| format!("contract snapshot: {e}"))?;
            Ok(LintBundle {
                contracts: Some(contracts),
                ..LintBundle::default()
            })
        } else {
            serde_json::from_str(text).map_err(|e| format!("lint bundle: {e}"))
        }
    }

    /// Bundle with only hoses — the approval pre-flight path.
    pub fn for_hoses(hoses: &[HoseRequest]) -> LintBundle {
        LintBundle {
            hoses: Some(hoses.to_vec()),
            ..LintBundle::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_array_is_a_contract_snapshot() {
        let b = LintBundle::from_json("[]").unwrap();
        assert_eq!(b.contracts.as_deref(), Some(&[][..]));
        assert!(b.hoses.is_none());
    }

    #[test]
    fn object_is_a_bundle() {
        let b = LintBundle::from_json(r#"{"approval_order": ["c1_low", "c2_low"]}"#).unwrap();
        assert_eq!(
            b.approval_order,
            Some(vec!["c1_low".to_string(), "c2_low".to_string()])
        );
        assert!(b.contracts.is_none());
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(LintBundle::from_json("not json").is_err());
        assert!(LintBundle::from_json(r#"{"curves": 3}"#).is_err());
    }

    #[test]
    fn flows_convert_to_series() {
        let hf = HoseFlows {
            hose: 0,
            series: vec![RegionSeries {
                region: 7,
                samples: vec![1.0, 2.0],
            }],
        };
        let fs = hf.to_flow_series();
        assert_eq!(fs[&entitlement_core::RegionId(7)], vec![1.0, 2.0]);
    }
}
