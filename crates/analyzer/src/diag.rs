//! The diagnostics data model: stable codes, severities, source
//! locations into config/contract structures, and rendered output.
//!
//! Every rule violation is reported as a [`Diagnostic`] carrying a
//! stable [`Code`] (e.g. `E0203`). Codes never change meaning once
//! shipped: tools and CI pipelines may match on them, so a retired rule
//! retires its code rather than recycling it. The full catalog — code,
//! invariant, and the paper section that motivates it — is in
//! [`Code::CATALOG`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is.
///
/// `Error` findings make an input unusable: the approval pre-flight gate
/// rejects the contract before the risk sweep runs, and `entitlectl
/// lint` exits non-zero. `Warning` findings are suspicious but legal —
/// an oversized ask is answered with a counter-proposal, not rejected
/// (paper §8). `Info` is advisory only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory note.
    Info,
    /// Suspicious but not invalid; does not fail a lint run.
    Warning,
    /// Invariant violation; the input must be rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A stable diagnostic code.
///
/// Numbering scheme: `E01xx` contracts, `E02xx` hoses/pipes, `E03xx`
/// QoS ordering, `E04xx` topology, `E05xx` availability curves,
/// `E06xx` SLO evaluation policies, `E07xx` approval-engine
/// configuration, `R01xx` runtime concurrency (reported by the
/// `racecheck` verifier, not the config analyzer), `W01xx` runtime
/// watchdog (streaming invariant monitors and anomaly detectors over
/// live SLI streams, reported by `entitlement-watch`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Code {
    /// Entitled rate must be positive and finite.
    E0101,
    /// SLO availability must lie in (0, 1].
    E0102,
    /// Duplicate entitlement rows for one flow aggregate.
    E0103,
    /// Entitlement row NPG differs from the contract NPG.
    E0104,
    /// NPG reference does not resolve against the registry.
    E0105,
    /// Contract carries no entitlements.
    E0106,
    /// Hose has no segments, or a segment has no regions.
    E0201,
    /// A region appears in more than one segment.
    E0202,
    /// Segment caps do not sum to the hose total.
    E0203,
    /// A segment cap lies outside (0, total] — its α is outside (0, 1).
    E0204,
    /// First segment's α⁻ does not exceed the 0.5 boundary (Algorithm 1).
    E0205,
    /// A segment cap is below the α⁺ share its flows actually reached.
    E0206,
    /// Flow-series destinations are not covered by the hose segments.
    E0207,
    /// Pipes aggregate to more than their owning hose total.
    E0208,
    /// A pipe exceeds the cap of the segment covering its destination.
    E0209,
    /// Approval order is not the strict c1_low → c4_high sweep.
    E0301,
    /// Contract SLO is stricter than its most premium class supports.
    E0302,
    /// Region reference does not resolve in the topology.
    E0401,
    /// Entitled egress/ingress exceeds the region's attached capacity.
    E0402,
    /// A pipe asks for more than the max-flow between its endpoints.
    E0403,
    /// Link attributes invalid: capacity ≤ 0 or availability outside (0, 1].
    E0404,
    /// Availability curve is not monotone non-increasing in volume.
    E0501,
    /// SLO target lies outside the availability-curve domain.
    E0502,
    /// Curve point invalid: non-finite volume or availability outside [0, 1].
    E0503,
    /// SLO policy window or hysteresis is zero, or a tolerance/band is
    /// outside its range.
    E0601,
    /// SLO policy fast window is not strictly shorter than the slow window.
    E0602,
    /// SLO policy burn threshold does not exceed 1, or the clear
    /// fraction is outside (0, 1).
    E0603,
    /// Approval config grants without simulation: `tms_per_hose` is zero
    /// (or not a positive integer), so every hose would be approved with
    /// zero TM realizations behind it.
    E0701,
    /// Approval config sweep parameters out of range: `max_cuts` above
    /// the enumerable bound or `k_paths` not a positive integer.
    E0702,
    /// Conflicting unsynchronized accesses: two tasks touch one
    /// location, at least one writes, and no happens-before edge orders
    /// them.
    R0101,
    /// Ordering-dependent float fold: a non-associative f64 reduction
    /// whose bit pattern depends on arrival order.
    R0102,
    /// Publish/fold schedule divergence: an explored interleaving of the
    /// shard publish → fanout fold → broadcast protocol produced a
    /// different f64-bit outcome than the deterministic reference.
    R0103,
    /// Lock-order inversion or deadlock: two locks are acquired in
    /// opposite orders on different tasks, or a schedule wedged with no
    /// enabled step.
    R0104,
    /// Delivery conservation: conforming delivery exceeded
    /// `min(demand, approved) × (1 + ε)` on a settled, measurable cycle.
    W0101,
    /// Shard reconciliation: the flat aggregate total does not
    /// bit-reconcile with its per-shard partials re-summed in shard
    /// order.
    W0102,
    /// Residual monotonicity: a residual-index decrement went negative,
    /// grew the residual, or missed `max(before − granted, 0)` exactly.
    W0103,
    /// Fraction sanity: a marked or conforming fraction left [0, 1].
    W0104,
    /// Staleness changepoint: the CUSUM over aggregate staleness
    /// crossed its decision threshold (aggregates stopped refreshing).
    W0105,
    /// Attainment drift: the fast/slow EWMA divergence over SLO
    /// attainment crossed its threshold (delivery is sliding).
    W0106,
    /// Admit-latency changepoint: the CUSUM over market admission
    /// latency crossed its threshold (the warm index stopped serving).
    W0107,
}

/// One row of the rule catalog: what the code means and where in the
/// paper the invariant comes from.
#[derive(Clone, Copy, Debug)]
pub struct CatalogEntry {
    /// The stable code.
    pub code: Code,
    /// Default severity a violation is reported at.
    pub severity: Severity,
    /// The invariant, stated positively.
    pub invariant: &'static str,
    /// Paper section that motivates the invariant.
    pub paper: &'static str,
}

impl Code {
    /// The full rule catalog, in code order.
    pub const CATALOG: [CatalogEntry; 40] = [
        CatalogEntry {
            code: Code::E0101,
            severity: Severity::Error,
            invariant: "entitled rates are positive and finite",
            paper: "§3.2 (contract rows are `bits/s`)",
        },
        CatalogEntry {
            code: Code::E0102,
            severity: Severity::Error,
            invariant: "SLO availability lies in (0, 1]",
            paper: "§3.2 (availability SLO)",
        },
        CatalogEntry {
            code: Code::E0103,
            severity: Severity::Warning,
            invariant: "one entitlement row per flow aggregate and period",
            paper: "§3.2 (rows delineate disjoint flow sets)",
        },
        CatalogEntry {
            code: Code::E0104,
            severity: Severity::Error,
            invariant: "every entitlement row belongs to the contract's NPG",
            paper: "§3.2 (a contract binds one NPG)",
        },
        CatalogEntry {
            code: Code::E0105,
            severity: Severity::Error,
            invariant: "NPG references resolve against the service registry",
            paper: "§3.2 (NPGs are the contract principals)",
        },
        CatalogEntry {
            code: Code::E0106,
            severity: Severity::Warning,
            invariant: "a contract carries at least one entitlement",
            paper: "§3.2",
        },
        CatalogEntry {
            code: Code::E0201,
            severity: Severity::Error,
            invariant: "a hose has segments and every segment has regions",
            paper: "§4.2 (hose model)",
        },
        CatalogEntry {
            code: Code::E0202,
            severity: Severity::Error,
            invariant: "hose segments are pairwise disjoint",
            paper: "§4.2 Algorithm 1 (segments partition N)",
        },
        CatalogEntry {
            code: Code::E0203,
            severity: Severity::Error,
            invariant: "segment caps sum to the hose total",
            paper: "§4.2 (coefficients summing over 1 are sub-optimal)",
        },
        CatalogEntry {
            code: Code::E0204,
            severity: Severity::Error,
            invariant: "each segment cap lies in (0, total], i.e. α ∈ (0, 1)",
            paper: "§4.2 (segmentation coefficient α)",
        },
        CatalogEntry {
            code: Code::E0205,
            severity: Severity::Error,
            invariant: "the first segment's α⁻ exceeds 0.5",
            paper: "§4.2 Algorithm 1 (smallest set with α⁻ > 0.5)",
        },
        CatalogEntry {
            code: Code::E0206,
            severity: Severity::Error,
            invariant: "segment caps cover the α⁺ share the flows reached",
            paper: "§4.2 (caps sized by α⁺(SEG))",
        },
        CatalogEntry {
            code: Code::E0207,
            severity: Severity::Warning,
            invariant: "flow-series destinations are covered by the segments",
            paper: "§4.2 (segments partition the destination set)",
        },
        CatalogEntry {
            code: Code::E0208,
            severity: Severity::Error,
            invariant: "pipes never aggregate past their owning hose total",
            paper: "§4.2/§4.3 (hose caps the aggregate)",
        },
        CatalogEntry {
            code: Code::E0209,
            severity: Severity::Error,
            invariant: "each pipe fits the cap of the segment covering its dst",
            paper: "§4.2 (intra-segment agility is bounded by the cap)",
        },
        CatalogEntry {
            code: Code::E0301,
            severity: Severity::Error,
            invariant: "approval sweeps buckets strictly c1_low → c4_high",
            paper: "§4.3 Algorithm 2 (one class at a time)",
        },
        CatalogEntry {
            code: Code::E0302,
            severity: Severity::Warning,
            invariant: "contract SLO is no stricter than its best class default",
            paper: "§4.3 (per-class availability targets)",
        },
        CatalogEntry {
            code: Code::E0401,
            severity: Severity::Error,
            invariant: "region references resolve in the topology",
            paper: "§3.1 (the backbone graph)",
        },
        CatalogEntry {
            code: Code::E0402,
            severity: Severity::Warning,
            invariant: "entitled volume fits the region's attached capacity",
            paper: "§4.3 (approval against physical capacity)",
        },
        CatalogEntry {
            code: Code::E0403,
            severity: Severity::Error,
            invariant: "a pipe never asks past the max-flow of its endpoints",
            paper: "§4.3 (risk simulation routes on the real graph)",
        },
        CatalogEntry {
            code: Code::E0404,
            severity: Severity::Error,
            invariant: "links have positive capacity and availability in (0, 1]",
            paper: "§3.1 (fiber plant model)",
        },
        CatalogEntry {
            code: Code::E0501,
            severity: Severity::Error,
            invariant: "availability curves are monotone non-increasing",
            paper: "§4.3 (bandwidth availability curves)",
        },
        CatalogEntry {
            code: Code::E0502,
            severity: Severity::Error,
            invariant: "the SLO target lies inside the curve's domain",
            paper: "§4.3 (grant = volume at the SLO)",
        },
        CatalogEntry {
            code: Code::E0503,
            severity: Severity::Error,
            invariant: "curve points are finite with availability in [0, 1]",
            paper: "§4.3",
        },
        CatalogEntry {
            code: Code::E0601,
            severity: Severity::Error,
            invariant: "SLO policy windows, hysteresis, and tolerances are in range",
            paper: "§3.2 / §7 (SLO attainment is windowed)",
        },
        CatalogEntry {
            code: Code::E0602,
            severity: Severity::Error,
            invariant: "the fast burn window is strictly shorter than the slow one",
            paper: "§7 (multi-window burn-rate alerting)",
        },
        CatalogEntry {
            code: Code::E0603,
            severity: Severity::Error,
            invariant: "burn thresholds exceed 1× and the clear fraction is in (0, 1)",
            paper: "§7 (alerts page on budget-exhausting burns)",
        },
        CatalogEntry {
            code: Code::E0701,
            severity: Severity::Error,
            invariant: "every approved hose is backed by at least one TM realization",
            paper: "§4.3 Algorithm 2 (GEN_DEMAND precedes approval)",
        },
        CatalogEntry {
            code: Code::E0702,
            severity: Severity::Error,
            invariant: "risk-sweep parameters (max_cuts, k_paths) are in range",
            paper: "§4.3 (RSS enumerates up to two simultaneous cuts)",
        },
        CatalogEntry {
            code: Code::R0101,
            severity: Severity::Error,
            invariant: "every pair of conflicting accesses is ordered by happens-before",
            paper: "§6 (agents and the driver share only published aggregates)",
        },
        CatalogEntry {
            code: Code::R0102,
            severity: Severity::Error,
            invariant: "f64 folds on parallel paths are order-insensitive bit-for-bit",
            paper: "§6 (metering aggregates must be reproducible)",
        },
        CatalogEntry {
            code: Code::R0103,
            severity: Severity::Error,
            invariant: "every publish/fold/broadcast schedule yields the deterministic outcome",
            paper: "§6 / §7.4 (enforcement decisions are a pure function of the round)",
        },
        CatalogEntry {
            code: Code::R0104,
            severity: Severity::Error,
            invariant: "locks are acquired in one global order and every schedule can finish",
            paper: "§6 (the enforcement loop must never wedge mid-round)",
        },
        CatalogEntry {
            code: Code::W0101,
            severity: Severity::Error,
            invariant: "delivered never exceeds min(demand, approved) × (1 + ε)",
            paper: "§5/§7.1 (enforcement throttles flows to the approved rate)",
        },
        CatalogEntry {
            code: Code::W0102,
            severity: Severity::Error,
            invariant: "the flat aggregate total bit-reconciles with the per-shard re-sum",
            paper: "§6 (metering aggregates must be reproducible)",
        },
        CatalogEntry {
            code: Code::W0103,
            severity: Severity::Error,
            invariant: "residual-index decrements are exact and never go negative",
            paper: "§4.3 (admissions draw down a finite headroom)",
        },
        CatalogEntry {
            code: Code::W0104,
            severity: Severity::Error,
            invariant: "marked and conforming fractions are valid shares in [0, 1]",
            paper: "§5 (marking partitions the sent traffic)",
        },
        CatalogEntry {
            code: Code::W0105,
            severity: Severity::Warning,
            invariant: "aggregate staleness stays at its healthy refresh cadence",
            paper: "§6 (agents act on recently published aggregates)",
        },
        CatalogEntry {
            code: Code::W0106,
            severity: Severity::Warning,
            invariant: "SLO attainment holds its baseline level",
            paper: "§7.1 (contract attainment is the delivered share of entitled)",
        },
        CatalogEntry {
            code: Code::W0107,
            severity: Severity::Warning,
            invariant: "admission latency stays on the warm-index baseline",
            paper: "§4.3 (approval must answer at interactive latency)",
        },
    ];

    /// The stable textual form, e.g. `"E0203"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::E0101 => "E0101",
            Code::E0102 => "E0102",
            Code::E0103 => "E0103",
            Code::E0104 => "E0104",
            Code::E0105 => "E0105",
            Code::E0106 => "E0106",
            Code::E0201 => "E0201",
            Code::E0202 => "E0202",
            Code::E0203 => "E0203",
            Code::E0204 => "E0204",
            Code::E0205 => "E0205",
            Code::E0206 => "E0206",
            Code::E0207 => "E0207",
            Code::E0208 => "E0208",
            Code::E0209 => "E0209",
            Code::E0301 => "E0301",
            Code::E0302 => "E0302",
            Code::E0401 => "E0401",
            Code::E0402 => "E0402",
            Code::E0403 => "E0403",
            Code::E0404 => "E0404",
            Code::E0501 => "E0501",
            Code::E0502 => "E0502",
            Code::E0503 => "E0503",
            Code::E0601 => "E0601",
            Code::E0602 => "E0602",
            Code::E0603 => "E0603",
            Code::E0701 => "E0701",
            Code::E0702 => "E0702",
            Code::R0101 => "R0101",
            Code::R0102 => "R0102",
            Code::R0103 => "R0103",
            Code::R0104 => "R0104",
            Code::W0101 => "W0101",
            Code::W0102 => "W0102",
            Code::W0103 => "W0103",
            Code::W0104 => "W0104",
            Code::W0105 => "W0105",
            Code::W0106 => "W0106",
            Code::W0107 => "W0107",
        }
    }

    /// Catalog row for this code.
    pub fn entry(self) -> CatalogEntry {
        // The catalog is in code order and covers every variant.
        Code::CATALOG[Code::CATALOG
            .iter()
            .position(|e| e.code == self)
            .unwrap_or(0)]
    }

    /// Default severity for the code.
    pub fn severity(self) -> Severity {
        self.entry().severity
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A path into the analyzed structure, e.g.
/// `contracts[0].entitlements[2].entitled_rate` or `hoses[1].segments[0]`.
///
/// Locations are plain strings built with [`Location::root`] and
/// [`Location::child`]/[`Location::index`] so rules compose them without
/// worrying about separators.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Location {
    /// The rendered path.
    pub path: String,
}

impl Location {
    /// A top-level location, e.g. `root("hoses")`.
    pub fn root(name: &str) -> Location {
        Location { path: name.to_string() }
    }

    /// Append an index: `hoses` → `hoses[3]`.
    pub fn index(&self, i: usize) -> Location {
        Location { path: format!("{}[{i}]", self.path) }
    }

    /// Append a field: `hoses[3]` → `hoses[3].total`.
    pub fn child(&self, name: &str) -> Location {
        Location { path: format!("{}.{name}", self.path) }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.path)
    }
}

/// One finding: code, severity, where, and a human message.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity the rule reported (usually `code.severity()`).
    pub severity: Severity,
    /// Path into the analyzed structure.
    pub location: Location,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Construct a finding at the code's default severity.
    pub fn new(code: Code, location: Location, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            location,
            message: message.into(),
        }
    }

    /// Render the classic one-line form:
    /// `error[E0203] hoses[1]: segment caps 900.000Gbps do not sum to ...`.
    pub fn render(&self) -> String {
        format!(
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The outcome of an analyzer run over one input.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Report {
    /// All findings, in rule order then discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether any finding is error-severity.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Count findings at one severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// Distinct codes that fired.
    pub fn codes(&self) -> Vec<Code> {
        let mut out: Vec<Code> = self.diagnostics.iter().map(|d| d.code).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Render the whole report as text, one line per finding plus a
    /// summary tail line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warning)
        ));
        out
    }

    /// Render as a JSON array of diagnostics.
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(&self.diagnostics)
            .unwrap_or_else(|_| "[]".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_code_once() {
        let mut seen = std::collections::BTreeSet::new();
        for e in Code::CATALOG {
            assert!(seen.insert(e.code), "duplicate catalog row {}", e.code);
            assert_eq!(e.code.entry().code, e.code);
            assert_eq!(e.code.severity(), e.severity);
            assert!(!e.invariant.is_empty());
            assert!(e.paper.starts_with('§'), "{} paper ref", e.code);
        }
        assert_eq!(seen.len(), Code::CATALOG.len());
    }

    #[test]
    fn severity_ordering_puts_error_on_top() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn locations_compose() {
        let loc = Location::root("contracts").index(2).child("entitlements").index(0);
        assert_eq!(loc.path, "contracts[2].entitlements[0]");
    }

    #[test]
    fn render_shape_is_stable() {
        let d = Diagnostic::new(
            Code::E0203,
            Location::root("hoses").index(1),
            "segment caps 900.000Gbps do not sum to hose total 800.000Gbps",
        );
        assert_eq!(
            d.render(),
            "error[E0203] hoses[1]: segment caps 900.000Gbps do not sum to hose total 800.000Gbps"
        );
    }

    #[test]
    fn report_summaries() {
        let mut r = Report::default();
        assert!(!r.has_errors());
        r.diagnostics.push(Diagnostic::new(
            Code::E0103,
            Location::root("contracts").index(0),
            "dup",
        ));
        assert!(!r.has_errors(), "E0103 is a warning");
        r.diagnostics.push(Diagnostic::new(
            Code::E0101,
            Location::root("contracts").index(0),
            "bad rate",
        ));
        assert!(r.has_errors());
        assert_eq!(r.codes(), vec![Code::E0101, Code::E0103]);
        assert!(r.render_text().ends_with("1 error(s), 1 warning(s)\n"));
        assert!(r.render_json().contains("\"E0101\""));
    }
}
