//! Golden-shape regression tests for the `repro` figure pipelines: the
//! exact parameterizations `repro fig22` and `repro fig20` ship with
//! must keep producing curves of the paper's shape, and the fig22
//! pipeline must be invariant under the risk-sweep knobs.

use entitlement_bench::experiments::approval_slo;
use entitlement_bench::experiments::segmented_benefit::{self, BenefitConfig};
use entitlement_core::stats::percentile;

/// The availability targets `repro fig22` sweeps.
const FIG22_TARGETS: &[f64] = &[0.9, 0.95, 0.99, 0.995, 0.999, 0.9995];

#[test]
fn fig22_shape_approval_vs_slo() {
    let out = approval_slo::run_with_sweep(FIG22_TARGETS, 0.45, 0x22, 1, true);
    assert_eq!(out.availability, FIG22_TARGETS);
    assert_eq!(out.egress_approval.len(), FIG22_TARGETS.len());
    assert_eq!(out.ingress_approval.len(), FIG22_TARGETS.len());
    for series in [&out.egress_approval, &out.ingress_approval] {
        // Approval is a rate in [0, 1] and non-increasing in the SLO.
        for &r in series {
            assert!((0.0..=1.0).contains(&r), "approval rate {r} out of range");
        }
        for w in series.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "approval must not rise with stricter SLO: {series:?}"
            );
        }
        // Paper shape: generous at 0.9, visibly squeezed at 0.9995.
        assert!(series[0] > 0.5, "loose-SLO approval too low: {series:?}");
        assert!(
            series[series.len() - 1] < series[0],
            "strict SLO must bite: {series:?}"
        );
    }
}

#[test]
fn fig22_invariant_under_sweep_knobs() {
    let baseline = approval_slo::run_with_sweep(FIG22_TARGETS, 0.45, 0x22, 1, false);
    for (workers, dedup) in [(1, true), (4, true), (4, false)] {
        let out = approval_slo::run_with_sweep(FIG22_TARGETS, 0.45, 0x22, workers, dedup);
        for (series, base) in [
            (&out.egress_approval, &baseline.egress_approval),
            (&out.ingress_approval, &baseline.ingress_approval),
        ] {
            let bits: Vec<u64> = series.iter().map(|r| r.to_bits()).collect();
            let base_bits: Vec<u64> = base.iter().map(|r| r.to_bits()).collect();
            assert_eq!(
                bits, base_bits,
                "fig22 diverged at workers={workers} dedup={dedup}"
            );
        }
    }
}

#[test]
fn fig20_shape_tm_reduction_cdf() {
    // Exactly what `repro fig20` runs.
    let out = segmented_benefit::run(&BenefitConfig::default());
    // Nearly all of the 40 synthetic hose cases must resolve within the
    // TM budget — an unresolved tail would silently truncate the CDF.
    assert!(
        out.reductions.len() >= 36,
        "only {} of 40 cases resolved",
        out.reductions.len()
    );
    assert_eq!(out.reductions.len(), out.counts.len());
    // Every reduction is a fraction: segmentation may never need *more*
    // than the full budget relative bound (1.0), and counts must agree.
    for (&red, &(general, segmented)) in out.reductions.iter().zip(&out.counts) {
        assert!(red <= 1.0, "reduction {red} > 1");
        assert!(general >= 1 && segmented >= 1);
        let recomputed = 1.0 - segmented as f64 / general as f64;
        assert!((red - recomputed).abs() < 1e-12);
    }
    // CDF shape: percentiles are monotone by construction; the paper's
    // headline bounds must hold with slack — a substantial median
    // reduction and a clear win even in 90% of cases.
    let deciles: Vec<f64> = [10.0, 25.0, 50.0, 75.0, 90.0]
        .iter()
        .map(|&p| percentile(&out.reductions, p))
        .collect();
    for w in deciles.windows(2) {
        assert!(w[1] >= w[0] - 1e-12, "percentile CDF not monotone: {deciles:?}");
    }
    let median = percentile(&out.reductions, 50.0);
    assert!(median > 0.3, "median TM reduction {median} too small");
    let at90 = out.at_fraction(0.9);
    assert!(
        at90 > 0.1,
        "reduction in 90% of cases {at90} below paper-shape floor"
    );
    assert!(at90 <= median + 1e-12, "at_fraction(0.9) exceeds median");
}
