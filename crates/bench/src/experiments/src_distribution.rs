//! Fig 7: traffic distribution across source regions into one
//! destination DC for a storage service — the top three sources carry
//! about 67% of the traffic, which is what makes segmentation work.

use std::fmt::Write as _;
use entitlement_core::QosClass;
use entitlement_workload::matrix::MatrixSpec;
use entitlement_workload::ontology::CatalogSpec;
use entitlement_workload::{ServiceCatalog, TrafficMatrix};
use entitlement_topology::BackboneSpec;
use serde::{Deserialize, Serialize};

/// Per-source shares into the busiest destination.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SrcDistribution {
    /// (source region index, share), sorted descending.
    pub shares: Vec<(u16, f64)>,
    /// Share of the top three sources.
    pub top3_share: f64,
}

/// Run for the coldstorage-like service.
pub fn run(seed: u64) -> SrcDistribution {
    let topo = BackboneSpec::default().build();
    let catalog = ServiceCatalog::generate(&CatalogSpec {
        seed,
        ..Default::default()
    });
    let cold = catalog.by_name("coldstorage").expect("catalog has coldstorage");
    let tm = TrafficMatrix::synthesize(&topo, cold, QosClass::C3, &MatrixSpec::default());
    // Pick the destination receiving the most traffic.
    let dst = tm
        .ingress_by_dst()
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(d, _)| d)
        .expect("matrix non-empty");
    let sources = tm.sources_into(dst);
    let total: f64 = sources.iter().map(|(_, r)| r.as_bps()).sum();
    let shares: Vec<(u16, f64)> = sources
        .iter()
        .map(|(r, v)| (r.0, v.as_bps() / total))
        .collect();
    SrcDistribution {
        top3_share: tm.top_source_share(dst, 3),
        shares,
    }
}

impl SrcDistribution {
    /// Render the distribution.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## Fig 7: per-source share into one destination DC");
        for (r, s) in self.shares.iter().take(10) {
            let _ = writeln!(out, "  src r{r:<4} {:.1}%", s * 100.0);
        }
        let _ = writeln!(out, 
            "top-3 sources: {:.1}% (paper: 67%)",
            self.top3_share * 100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top3_carries_about_two_thirds() {
        let d = run(0x51);
        assert!(
            (0.55..0.85).contains(&d.top3_share),
            "top-3 share {}",
            d.top3_share
        );
        // Shares sorted, normalized.
        let sum: f64 = d.shares.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for w in d.shares.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
