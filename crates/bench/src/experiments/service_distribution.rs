//! Fig 1 & 2: service distribution of a high and a low QoS class.
//!
//! Paper shape: each class has fewer than ten dominating services
//! carrying the majority of its traffic, plus a long tail of thousands;
//! the mix of dominating services differs between classes; storage
//! services dominate overall.

use std::fmt::Write as _;
use entitlement_core::QosClass;
use entitlement_workload::ontology::CatalogSpec;
use entitlement_workload::ServiceCatalog;
use serde::{Deserialize, Serialize};

/// Result of the distribution experiment for one class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassDistribution {
    /// The class.
    pub qos: String,
    /// (service name, share of class traffic), sorted descending.
    pub shares: Vec<(String, f64)>,
    /// Share carried by the top ten services.
    pub top10_share: f64,
    /// Number of services with any traffic in the class.
    pub service_count: usize,
}

/// Run for both figure classes (C1 = "Class A" high, C2 = "Class B" low).
pub fn run(seed: u64) -> (ClassDistribution, ClassDistribution) {
    let catalog = ServiceCatalog::generate(&CatalogSpec {
        seed,
        ..Default::default()
    });
    (
        distribution(&catalog, QosClass::C1),
        distribution(&catalog, QosClass::C2),
    )
}

fn distribution(catalog: &ServiceCatalog, qos: QosClass) -> ClassDistribution {
    let dist = catalog.class_distribution(qos);
    let total = catalog.class_total(qos).as_bps();
    let shares: Vec<(String, f64)> = dist
        .iter()
        .map(|(s, r)| (s.name.clone(), r.as_bps() / total))
        .collect();
    let top10_share = shares.iter().take(10).map(|(_, s)| s).sum();
    ClassDistribution {
        qos: format!("{qos}"),
        shares,
        top10_share,
        service_count: dist.len(),
    }
}

impl ClassDistribution {
    /// Render the figure's pie-chart data as a table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## Service distribution of QoS {}", self.qos);
        let _ = writeln!(out, "services with traffic: {}", self.service_count);
        let _ = writeln!(out, "top-10 share: {:.1}%", self.top10_share * 100.0);
        for (name, share) in self.shares.iter().take(12) {
            let _ = writeln!(out, "{name:>20}  {:.2}%", share * 100.0);
        }
        let rest: f64 = self.shares.iter().skip(12).map(|(_, s)| s).sum();
        let _ = writeln!(out, "{:>20}  {:.2}%", "(long tail)", rest * 100.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_classes_match_paper_shape() {
        let (high, low) = run(0x51);
        for d in [&high, &low] {
            assert!(
                d.top10_share > 0.6,
                "{}: top-10 carries {:.2}",
                d.qos,
                d.top10_share
            );
            assert!(d.service_count > 100, "{}: long tail exists", d.qos);
            // Shares sorted descending and normalized.
            let sum: f64 = d.shares.iter().map(|(_, s)| s).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            for w in d.shares.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
        // The dominating mix differs between classes.
        assert_ne!(high.shares[0].0, low.shares[0].0);
    }
}
