//! Fig 20: efficiency of the segmented hose — the CDF, across hoses, of
//! the reduction in representative-TM count needed to reach 75% hose
//! coverage. Paper: "in 90% of the cases, Segmented Hose needs 60% fewer
//! TMs".

use std::fmt::Write as _;
use entitlement_core::stats::percentile;
use entitlement_core::{DetRng, Direction, NpgId, QosClass, Rate, RegionId};
use entitlement_hose::segment::FlowSeries;
use entitlement_hose::{segment_flow_series, segment_n_way, tms_for_coverage, HoseRequest};
use serde::{Deserialize, Serialize};

/// Result across hose cases.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SegmentedBenefit {
    /// Per-case TM-count reduction `1 - n_segmented / n_general`.
    pub reductions: Vec<f64>,
    /// Per-case (general TM count, segmented TM count).
    pub counts: Vec<(usize, usize)>,
}

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct BenefitConfig {
    /// Number of hose cases.
    pub cases: usize,
    /// Destinations per hose.
    pub destinations: usize,
    /// Coverage target (paper: 0.75).
    pub target: f64,
    /// TM budget cap per case.
    pub max_tms: usize,
    /// Probe count for the coverage estimate.
    pub probes: usize,
    /// Segments (2 = Algorithm 1; more = the future-work ablation).
    pub segments: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for BenefitConfig {
    fn default() -> Self {
        BenefitConfig {
            cases: 40,
            destinations: 6,
            target: 0.75,
            max_tms: 4000,
            probes: 250,
            segments: 2,
            seed: 0xF20,
        }
    }
}

/// Build a concentrated flow series: a few dominant destinations (like
/// the Fig 7 storage service) with stable-but-wiggling shares.
pub fn synth_flow_series(rng: &mut DetRng, destinations: usize, t_len: usize) -> FlowSeries {
    let mut flows = FlowSeries::new();
    // Zipf-ish base volumes.
    for d in 0..destinations {
        let base = 1000.0 / ((d + 1) as f64).powf(rng.range(0.8, 1.6));
        let phase = rng.f64();
        let amp = rng.range(0.05, 0.2);
        let series: Vec<f64> = (0..t_len)
            .map(|t| {
                base * (1.0
                    + amp * (2.0 * std::f64::consts::PI * (t as f64 / t_len as f64 + phase)).sin())
            })
            .collect();
        flows.insert(RegionId(1 + d as u16), series);
    }
    flows
}

/// Run the sweep.
pub fn run(config: &BenefitConfig) -> SegmentedBenefit {
    let mut rng = DetRng::new(config.seed);
    let mut reductions = Vec::new();
    let mut counts = Vec::new();
    for case in 0..config.cases {
        let flows = synth_flow_series(&mut rng, config.destinations, 24);
        let total = Rate::gbps(900.0);
        let seg = if config.segments == 2 {
            segment_flow_series(
                NpgId(case as u32),
                QosClass::C1,
                RegionId(0),
                Direction::Egress,
                total,
                &flows,
            )
        } else {
            segment_n_way(
                NpgId(case as u32),
                QosClass::C1,
                RegionId(0),
                Direction::Egress,
                total,
                &flows,
                config.segments,
            )
        };
        let Ok(seg) = seg else { continue };
        let general = HoseRequest::general(
            NpgId(case as u32),
            QosClass::C1,
            RegionId(0),
            Direction::Egress,
            total,
            flows.keys().copied(),
        );
        let seed = config.seed ^ ((case as u64) << 16);
        let n_seg = tms_for_coverage(&seg, config.target, config.max_tms, config.probes, seed);
        let n_gen = tms_for_coverage(&general, config.target, config.max_tms, config.probes, seed);
        if let (Some(ns), Some(ng)) = (n_seg, n_gen) {
            reductions.push(1.0 - ns as f64 / ng as f64);
            counts.push((ng, ns));
        }
    }
    SegmentedBenefit { reductions, counts }
}

impl SegmentedBenefit {
    /// The reduction achieved in at least `fraction` of cases (e.g. the
    /// paper's "in 90% of cases ≥ 60% fewer TMs" is `at_fraction(0.9)`).
    pub fn at_fraction(&self, fraction: f64) -> f64 {
        // Reduction exceeded by `fraction` of cases = (1-f) percentile.
        percentile(&self.reductions, (1.0 - fraction) * 100.0)
    }

    /// Render the CDF of reductions.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## Fig 20: TM-count reduction from segmentation (CDF)");
        let _ = writeln!(out, "cases resolved: {}", self.reductions.len());
        for decile in [10.0, 25.0, 50.0, 75.0, 90.0] {
            let _ = writeln!(out, 
                "p{decile:<4} reduction: {:.1}%",
                percentile(&self.reductions, decile) * 100.0
            );
        }
        let _ = writeln!(out, 
            "reduction achieved in 90% of cases: {:.1}% (paper: ~60%)",
            self.at_fraction(0.9) * 100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmentation_cuts_tm_counts_in_most_cases() {
        let out = run(&BenefitConfig {
            cases: 12,
            probes: 150,
            max_tms: 3000,
            ..Default::default()
        });
        assert!(out.reductions.len() >= 8, "most cases resolve");
        let median = percentile(&out.reductions, 50.0);
        assert!(
            median > 0.3,
            "median TM reduction {median} should be substantial"
        );
        // The paper's headline: large reduction in ~90% of cases.
        let at90 = out.at_fraction(0.9);
        assert!(at90 > 0.1, "90th-percentile-of-cases reduction {at90}");
    }

    #[test]
    fn flow_series_is_concentrated() {
        let mut rng = DetRng::new(1);
        let flows = synth_flow_series(&mut rng, 6, 24);
        assert_eq!(flows.len(), 6);
        let totals: Vec<f64> = flows.values().map(|v| v.iter().sum()).collect();
        let max = totals.iter().copied().fold(0.0, f64::max);
        let min = totals.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min > 2.0, "head/tail spread {}", max / min);
    }
}
