//! Fig 18 & 19: demand-forecast accuracy — the CDF of sMAPE across all
//! services of a QoS class, evaluated at the p50/p75/p90 traffic
//! percentiles.
//!
//! Paper shape: the majority of sMAPE values sit below 0.4; the three
//! percentiles differ only slightly (p90 slightly worse); a few
//! anomalies exceed 1.0, "caused by new region development, service
//! rollout plan change, and old region decommissions" — i.e. inorganic
//! changes the model was *not told about*. We reproduce that by giving a
//! fraction of services surprise fleet events that are present in the
//! ground truth but hidden from the model's regressors.

use std::fmt::Write as _;
use entitlement_core::period::DAYS_PER_MONTH;
use entitlement_core::stats::{percentile, smape};
use entitlement_core::{DetRng, Rate};
use entitlement_forecast::{ForecastPipeline, PipelineConfig};
use entitlement_workload::history::{HistorySpec, InorganicEvent};
use serde::{Deserialize, Serialize};

/// Result for one QoS class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ForecastAccuracy {
    /// sMAPE per service at the traffic p50.
    pub smape_p50: Vec<f64>,
    /// sMAPE per service at p75.
    pub smape_p75: Vec<f64>,
    /// sMAPE per service at p90.
    pub smape_p90: Vec<f64>,
}

/// Configuration of the accuracy sweep.
#[derive(Clone, Debug)]
pub struct AccuracyConfig {
    /// Number of synthetic services.
    pub services: usize,
    /// Fraction with surprise (unmodeled) inorganic events.
    pub surprise_fraction: f64,
    /// Base seed (vary per QoS class for Fig 18 vs 19).
    pub seed: u64,
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        AccuracyConfig {
            services: 60,
            surprise_fraction: 0.08,
            seed: 0xF18,
        }
    }
}

/// Forecast a percentile series: fit on daily data, predict the next
/// quarter's daily values, aggregate both sides at monthly percentile P.
fn monthly_percentiles(daily: &[f64], p: f64) -> Vec<f64> {
    let m = daily.len() / DAYS_PER_MONTH as usize;
    (0..m)
        .map(|i| {
            percentile(
                &daily[i * DAYS_PER_MONTH as usize..(i + 1) * DAYS_PER_MONTH as usize],
                p,
            )
        })
        .collect()
}

/// Run the sweep for one class.
pub fn run(config: &AccuracyConfig) -> ForecastAccuracy {
    let mut rng = DetRng::new(config.seed);
    let mut out = ForecastAccuracy {
        smape_p50: Vec::new(),
        smape_p75: Vec::new(),
        smape_p90: Vec::new(),
    };

    for svc in 0..config.services {
        let surprise = rng.f64() < config.surprise_fraction;
        // Diverse service shapes.
        let mut events = Vec::new();
        if rng.chance(0.3) {
            events.push(InorganicEvent {
                month: 4 + rng.usize(6),
                fleet_factor: rng.range(1.2, 2.0),
            });
        }
        let mut surprise_events = events.clone();
        if surprise {
            // A big change landing at the start of the forecast quarter,
            // unmodeled (the model's regressors never see it).
            surprise_events.push(InorganicEvent {
                month: 12,
                fleet_factor: if rng.chance(0.5) {
                    rng.range(3.0, 5.0) // new region development
                } else {
                    rng.range(0.1, 0.25) // decommission
                },
            });
        }
        let spec = HistorySpec {
            months: 15,
            base_rate: Rate::gbps(rng.range(20.0, 500.0)),
            monthly_growth: rng.range(-0.01, 0.06),
            weekly_amplitude: rng.range(0.05, 0.25),
            yearly_amplitude: rng.range(0.02, 0.15),
            holiday_boost: rng.range(1.1, 1.5),
            noise_sigma: rng.range(0.03, 0.12),
            events: surprise_events,
            seed: config.seed ^ (svc as u64) << 8,
            ..Default::default()
        };
        let history = spec.generate();
        let (train, test) = history.split(12);

        // The model sees the regressors of the *planned* events only.
        let planned_spec = HistorySpec {
            events,
            ..spec.clone()
        };
        let planned = planned_spec.generate();
        let regs: Vec<Vec<f64>> = planned
            .regressors
            .iter()
            .map(|r| r.features().to_vec())
            .collect();

        let Ok(pipe) = ForecastPipeline::fit(
            train,
            &history.holidays,
            &regs[..12],
            PipelineConfig::default(),
        ) else {
            continue;
        };
        let future: [Vec<f64>; 3] = [regs[12].clone(), regs[13].clone(), regs[14].clone()];
        let fc = pipe.forecast_quarter(&regs[..12], &future);

        // Scale the organic daily projection to the pipeline's monthly
        // forecast so percentile aggregation reflects the full model.
        let organic_daily = pipe
            .organic()
            .predict_range(train.len(), 3 * DAYS_PER_MONTH as usize);
        let organic_monthly: Vec<f64> = monthly_percentiles(&organic_daily, 50.0);
        for p_idx in 0..3 {
            let p = [50.0, 75.0, 90.0][p_idx];
            let actual = monthly_percentiles(test, p);
            let forecast: Vec<f64> = (0..3)
                .map(|k| {
                    let day_slice =
                        &organic_daily[k * DAYS_PER_MONTH as usize..(k + 1) * DAYS_PER_MONTH as usize];
                    let pctl = percentile(day_slice, p);
                    // Multiply in the inorganic adjustment (ratio of the
                    // pipeline's monthly forecast to the organic mean).
                    let organic_mean = entitlement_core::stats::mean(day_slice);
                    let adj = if organic_mean > 0.0 {
                        fc.monthly[k] / organic_mean
                    } else {
                        1.0
                    };
                    let _ = organic_monthly; // aggregate kept for debugging
                    pctl * adj
                })
                .collect();
            let e = smape(&actual, &forecast);
            match p_idx {
                0 => out.smape_p50.push(e),
                1 => out.smape_p75.push(e),
                _ => out.smape_p90.push(e),
            }
        }
    }
    out
}

impl ForecastAccuracy {
    /// Median sMAPE at p50.
    pub fn median_smape(&self) -> f64 {
        percentile(&self.smape_p50, 50.0)
    }

    /// Fraction of services with sMAPE below a threshold (p50 series).
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        entitlement_core::stats::cdf_at(&self.smape_p50, threshold)
    }

    /// Count of anomalies (sMAPE > 1.0) in the p50 series.
    pub fn anomalies(&self) -> usize {
        self.smape_p50.iter().filter(|&&e| e > 1.0).count()
    }

    /// Render the CDF at decile points.
    #[must_use]
    pub fn render(&self, label: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## Fig 18/19: forecast sMAPE CDF ({label})");
        let _ = writeln!(out, "{:>10}  {:>8}  {:>8}  {:>8}", "fraction", "p50", "p75", "p90");
        for decile in 1..=10 {
            let f = decile as f64 * 10.0;
            let _ = writeln!(out, 
                "{:>9.0}%  {:>8.3}  {:>8.3}  {:>8.3}",
                f,
                percentile(&self.smape_p50, f),
                percentile(&self.smape_p75, f),
                percentile(&self.smape_p90, f),
            );
        }
        let _ = writeln!(out, 
            "below 0.4: {:.0}%  anomalies (>1.0): {}",
            self.fraction_below(0.4) * 100.0,
            self.anomalies()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_below_point_four_with_anomalies() {
        let acc = run(&AccuracyConfig {
            services: 30,
            ..Default::default()
        });
        assert!(acc.smape_p50.len() >= 25);
        assert!(
            acc.fraction_below(0.4) > 0.6,
            "majority below 0.4, got {:.2}",
            acc.fraction_below(0.4)
        );
        // All sMAPE values in the legal range.
        for &e in acc
            .smape_p50
            .iter()
            .chain(&acc.smape_p75)
            .chain(&acc.smape_p90)
        {
            assert!((0.0..=2.0).contains(&e));
        }
    }

    #[test]
    fn surprise_events_create_anomalies() {
        let none = run(&AccuracyConfig {
            services: 30,
            surprise_fraction: 0.0,
            seed: 0xF19,
        });
        let some = run(&AccuracyConfig {
            services: 30,
            surprise_fraction: 0.4,
            seed: 0xF19,
        });
        assert!(
            some.anomalies() > none.anomalies(),
            "surprises {} vs baseline {}",
            some.anomalies(),
            none.anomalies()
        );
    }

    #[test]
    fn percentiles_are_close_to_each_other() {
        // The paper: "the difference of different traffic percentile is
        // slim". Median sMAPE across percentiles within a small band.
        let acc = run(&AccuracyConfig {
            services: 30,
            ..Default::default()
        });
        let m50 = percentile(&acc.smape_p50, 50.0);
        let m90 = percentile(&acc.smape_p90, 50.0);
        assert!((m50 - m90).abs() < 0.2, "p50 {m50} vs p90 {m90}");
    }
}
