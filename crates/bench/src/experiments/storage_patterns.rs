//! Fig 3: two storage services with distinct traffic patterns —
//! Coldstorage's regular rack-rotation spikes vs. Warmstorage's smooth
//! time-of-day fluctuation.

use std::fmt::Write as _;
use entitlement_workload::TrafficPattern;
use serde::{Deserialize, Serialize};

/// The two time series plus their summary statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoragePatterns {
    /// Sample times, hours.
    pub hours: Vec<f64>,
    /// Coldstorage rate factor per sample.
    pub coldstorage: Vec<f64>,
    /// Warmstorage rate factor per sample.
    pub warmstorage: Vec<f64>,
    /// Coefficient of variation of each series.
    pub cold_cv: f64,
    /// Warmstorage CV.
    pub warm_cv: f64,
}

/// Sample both patterns over `days` at 5-minute resolution.
pub fn run(days: f64) -> StoragePatterns {
    let cold = TrafficPattern::coldstorage();
    let warm = TrafficPattern::warmstorage();
    let step = 300.0;
    let n = (days * 86_400.0 / step) as usize;
    let hours: Vec<f64> = (0..n).map(|i| i as f64 * step / 3600.0).collect();
    let coldstorage: Vec<f64> = hours.iter().map(|h| cold.factor_at(h * 3600.0)).collect();
    let warmstorage: Vec<f64> = hours.iter().map(|h| warm.factor_at(h * 3600.0)).collect();
    StoragePatterns {
        cold_cv: cold.cv(days, step),
        warm_cv: warm.cv(days, step),
        hours,
        coldstorage,
        warmstorage,
    }
}

impl StoragePatterns {
    /// Render a condensed view of the two series.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let xs = super::downsample(&self.hours, 25);
        let cold = super::downsample(&self.coldstorage, 25);
        let warm = super::downsample(&self.warmstorage, 25);
        out.push_str(&super::render_multi(
            "Fig 3: storage traffic patterns (rate factor)",
            "hour",
            &xs,
            &[("coldstorage", &cold), ("warmstorage", &warm)],
        ));
        let _ = writeln!(out, 
            "CV: coldstorage {:.2}, warmstorage {:.2}",
            self.cold_cv, self.warm_cv
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_is_spiky_warm_is_smooth() {
        let p = run(2.0);
        assert!(p.cold_cv > 2.0 * p.warm_cv);
        // Coldstorage hits its spike peak repeatedly.
        let peaks = p.coldstorage.iter().filter(|&&v| v > 2.0).count();
        assert!(peaks > 10, "spikes present: {peaks}");
        // Warmstorage never strays far from 1.
        assert!(p.warmstorage.iter().all(|&v| (0.7..=1.3).contains(&v)));
    }
}
