//! Ablations beyond the paper's figures (DESIGN.md §6):
//!
//! * N-segment hoses (the paper's future-work generalization);
//! * the stateful meter's recovery factor;
//! * centralized (gen-1) vs distributed (gen-2) enforcement.

use std::fmt::Write as _;
use entitlement_core::{DetRng, Direction, NpgId, QosClass, Rate, RegionId};
use entitlement_enforcement::controller::{centralized_waste, ControllerConfig};
use entitlement_enforcement::convergence::{simulate_marking, MarkingSim};
use entitlement_enforcement::StatefulMeter;
use entitlement_hose::segment_n_way;
use serde::{Deserialize, Serialize};

/// N-segment ablation: reserved capacity per segment count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SegmentsAblation {
    /// Segment counts swept.
    pub segments: Vec<usize>,
    /// Mean reserved capacity (Gbps) across cases at each count.
    pub mean_reserved_gbps: Vec<f64>,
}

/// Run the N-segment ablation over synthetic concentrated hoses.
pub fn segments_ablation(cases: usize, seed: u64) -> SegmentsAblation {
    let counts = [1usize, 2, 3, 4];
    let mut sums = vec![0.0; counts.len()];
    let mut resolved = vec![0usize; counts.len()];
    let mut rng = DetRng::new(seed);
    for case in 0..cases {
        let flows = super::segmented_benefit::synth_flow_series(&mut rng, 8, 24);
        for (i, &n) in counts.iter().enumerate() {
            if let Ok(hose) = segment_n_way(
                NpgId(case as u32),
                QosClass::C1,
                RegionId(0),
                Direction::Egress,
                Rate::gbps(900.0),
                &flows,
                n,
            ) {
                sums[i] += hose.reserved_capacity().as_gbps();
                resolved[i] += 1;
            }
        }
    }
    SegmentsAblation {
        segments: counts.to_vec(),
        mean_reserved_gbps: sums
            .iter()
            .zip(&resolved)
            .map(|(s, &n)| if n > 0 { s / n as f64 } else { f64::NAN })
            .collect(),
    }
}

impl SegmentsAblation {
    /// Render the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## Ablation: N-segment hose reserved capacity");
        let _ = writeln!(out, "{:>10}  {:>16}", "segments", "mean reserved G");
        for (n, r) in self.segments.iter().zip(&self.mean_reserved_gbps) {
            let _ = writeln!(out, "{n:>10}  {r:>16.0}");
        }
        out
    }
}

/// Recovery-factor ablation: convergence speed and overshoot of the
/// stateful meter as the un-throttle multiplier varies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecoveryAblation {
    /// Factors swept.
    pub factors: Vec<f64>,
    /// Iterations to converge (usize::MAX when it never does).
    pub convergence_iters: Vec<usize>,
    /// Steady-state mean conforming rate.
    pub steady_mean_tbps: Vec<f64>,
}

/// Run the recovery-factor sweep. The scenario is a demand *dip*: traffic
/// falls under the entitlement for a while and then surges again — slow
/// recovery under-utilizes, aggressive recovery overshoots.
pub fn recovery_ablation() -> RecoveryAblation {
    let factors = vec![1.1, 1.5, 2.0, 4.0, 8.0];
    let mut out = RecoveryAblation {
        factors: factors.clone(),
        convergence_iters: Vec::new(),
        steady_mean_tbps: Vec::new(),
    };
    for &f in &factors {
        let mut meter = StatefulMeter::with_recovery(f);
        let sim = MarkingSim {
            loss: 0.5,
            iterations: 60,
            ..Default::default()
        };
        let result = simulate_marking(&sim, &mut meter);
        out.convergence_iters.push(
            result
                .convergence_iteration(5.0, 0.35)
                .unwrap_or(usize::MAX),
        );
        out.steady_mean_tbps.push(result.steady_mean_tbps());
    }
    out
}

impl RecoveryAblation {
    /// Render the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## Ablation: stateful recovery factor");
        let _ = writeln!(out, 
            "{:>8}  {:>12}  {:>14}",
            "factor", "conv. iter", "steady Tbps"
        );
        for i in 0..self.factors.len() {
            let c = self.convergence_iters[i];
            let cs = if c == usize::MAX {
                "never".to_string()
            } else {
                c.to_string()
            };
            let _ = writeln!(out, 
                "{:>8.1}  {cs:>12}  {:>14.2}",
                self.factors[i], self.steady_mean_tbps[i]
            );
        }
        out
    }
}

/// Centralized-vs-distributed ablation result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ArchitectureAblation {
    /// Controller decision intervals swept (ticks).
    pub intervals: Vec<usize>,
    /// Traffic wasted (needlessly shaped) by the centralized design,
    /// Tbps-ticks.
    pub wasted_tbps: Vec<f64>,
    /// Per-decision compute cost at 100k hosts, seconds.
    pub compute_cost_100k_secs: f64,
}

/// Run the architecture comparison. The distributed design wastes zero
/// by construction here (marking only kicks in above the contract and
/// switches drop only under real congestion), so the table quantifies
/// the centralized penalty.
pub fn architecture_ablation() -> ArchitectureAblation {
    let intervals = vec![2, 4, 6, 12];
    let wasted = intervals
        .iter()
        .map(|&i| {
            centralized_waste(
                200,
                Rate::tbps(1.0),
                240,
                7,
                ControllerConfig {
                    decision_interval_ticks: i,
                    ..Default::default()
                },
            )
            .wasted_tbps
        })
        .collect();
    let controller = entitlement_enforcement::controller::Controller::new(
        1,
        ControllerConfig::default(),
    );
    ArchitectureAblation {
        intervals,
        wasted_tbps: wasted,
        compute_cost_100k_secs: controller.decision_cost_secs(100_000),
    }
}

impl ArchitectureAblation {
    /// Render the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## Ablation: centralized (gen-1) vs distributed (gen-2)");
        let _ = writeln!(out, "{:>18}  {:>14}", "decision interval", "wasted Tbps·t");
        for (i, w) in self.intervals.iter().zip(&self.wasted_tbps) {
            let _ = writeln!(out, "{i:>18}  {w:>14.2}");
        }
        let _ = writeln!(out, 
            "controller compute per round at 100k hosts: {:.1}s (distributed: none)",
            self.compute_cost_100k_secs
        );
        out
    }
}

/// SRLG ablation: how much correlated conduit failures cost in approved
/// bandwidth at a fixed SLO, versus the independent-failure model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SrlgAblation {
    /// Conduit-merge probabilities swept (0 = independent).
    pub merge_probabilities: Vec<f64>,
    /// SLO-feasible volume for a reference pipe at each setting, Gbps.
    pub granted_gbps: Vec<f64>,
    /// Conduits per setting (fewer = more correlated).
    pub conduit_counts: Vec<usize>,
}

/// Run the SRLG ablation on a reference pipe at 99% availability.
pub fn srlg_ablation(seed: u64) -> SrlgAblation {
    use entitlement_risk::{assess_risk, RiskConfig};
    use entitlement_topology::routing::Demand;
    use entitlement_topology::{BackboneSpec, SrlgMap};

    let topo = BackboneSpec::small(seed).build();
    let ids = topo.dc_ids();
    let demand = Demand {
        src: ids[0],
        dst: ids[2],
        amount: Rate::tbps(3.0),
    };
    let probs = vec![0.0, 0.3, 0.6, 0.9];
    let mut granted = Vec::new();
    let mut conduits = Vec::new();
    for &p in &probs {
        let map = if p == 0.0 {
            SrlgMap::independent(&topo)
        } else {
            SrlgMap::synthesize(&topo, p, seed ^ 0x5816)
        };
        let scenarios = map.enumerate(&topo, 2);
        let curves = assess_risk(&topo, &[demand], &scenarios, &RiskConfig::default());
        granted.push(curves[0].bandwidth_at(0.99).as_gbps());
        conduits.push(map.len());
    }
    SrlgAblation {
        merge_probabilities: probs,
        granted_gbps: granted,
        conduit_counts: conduits,
    }
}

impl SrlgAblation {
    /// Render the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## Ablation: correlated (SRLG) vs independent failures");
        let _ = writeln!(out, "{:>12}  {:>10}  {:>14}", "merge prob", "conduits", "granted @99%");
        for i in 0..self.merge_probabilities.len() {
            let _ = writeln!(out, 
                "{:>12.1}  {:>10}  {:>13.0}G",
                self.merge_probabilities[i], self.conduit_counts[i], self.granted_gbps[i]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srlg_correlation_never_increases_grants() {
        let out = srlg_ablation(0x51);
        assert_eq!(out.granted_gbps.len(), 4);
        // Independent grants something meaningful.
        assert!(out.granted_gbps[0] > 0.0);
        // The most correlated setting grants no more than independent.
        assert!(
            out.granted_gbps[3] <= out.granted_gbps[0] + 1e-6,
            "{:?}",
            out.granted_gbps
        );
        // Conduit count shrinks with the merge probability.
        assert!(out.conduit_counts[3] <= out.conduit_counts[0]);
    }

    #[test]
    fn more_segments_never_reserve_more() {
        let out = segments_ablation(10, 0xAB1);
        // Reserved capacity non-increasing in segment count.
        for w in out.mean_reserved_gbps.windows(2) {
            assert!(
                w[1] <= w[0] + 1.0,
                "more segments must not reserve more: {:?}",
                out.mean_reserved_gbps
            );
        }
        // The 1-segment (general hose) case reserves 8 × 900 G.
        assert!((out.mean_reserved_gbps[0] - 7200.0).abs() < 1.0);
    }

    #[test]
    fn recovery_factor_tradeoff() {
        let out = recovery_ablation();
        // Every factor still enforces the entitlement on average.
        for &m in &out.steady_mean_tbps {
            assert!((m - 5.0).abs() < 1.0, "steady {m}");
        }
        // All converge reasonably fast in this scenario.
        assert!(out.convergence_iters.iter().all(|&c| c < 30));
    }

    #[test]
    fn slower_controllers_waste_more() {
        let out = architecture_ablation();
        // Aliasing between the decision interval and the workload shift
        // makes the relationship non-monotone point-to-point; the
        // fastest controller must still beat the slowest, and every
        // setting wastes something.
        assert!(out.wasted_tbps.iter().all(|&w| w > 0.0), "{:?}", out.wasted_tbps);
        assert!(
            out.wasted_tbps[0] < *out.wasted_tbps.last().unwrap(),
            "fast vs slow: {:?}",
            out.wasted_tbps
        );
        assert!(out.compute_cost_100k_secs > 1.0);
    }
}
