//! Figs 23–25: convergence of the marking algorithms. Wraps
//! [`entitlement_enforcement::convergence`] across the paper's loss
//! stages (0%, 12.5%, 25%, 50%, 100%).

use std::fmt::Write as _;
use entitlement_enforcement::convergence::{run_both, MarkingSimResult};
use serde::{Deserialize, Serialize};

/// The paper's loss levels.
pub const LOSS_LEVELS: [f64; 5] = [0.0, 0.125, 0.25, 0.5, 1.0];

/// Results for both algorithms at every loss level.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MarkingConvergence {
    /// Loss levels.
    pub losses: Vec<f64>,
    /// Stateless results per loss level.
    pub stateless: Vec<MarkingSimResult>,
    /// Stateful results per loss level.
    pub stateful: Vec<MarkingSimResult>,
}

/// Run the full sweep.
pub fn run(iterations: usize) -> MarkingConvergence {
    let mut out = MarkingConvergence {
        losses: LOSS_LEVELS.to_vec(),
        stateless: Vec::new(),
        stateful: Vec::new(),
    };
    for &loss in &LOSS_LEVELS {
        let (sl, sf) = run_both(loss, iterations);
        out.stateless.push(sl);
        out.stateful.push(sf);
    }
    out
}

impl MarkingConvergence {
    /// Render the three figures' content.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## Fig 23: stateless marking, instantaneous conforming rate (Tbps)");
        out.push_str(&self.render_algo(|r| &r.conforming_tbps, &self.stateless));
        let _ = writeln!(out, "\n## Fig 24: stateless marking, average conforming rate (Tbps)");
        out.push_str(&self.render_algo(|r| &r.average_tbps, &self.stateless));
        let _ = writeln!(out, "\n## Fig 25: stateful marking, instantaneous conforming rate (Tbps)");
        out.push_str(&self.render_algo(|r| &r.conforming_tbps, &self.stateful));
        let _ = writeln!(out, "\nsteady-state summary (entitlement = 5 Tbps):");
        let _ = writeln!(out, 
            "{:>8}  {:>18}  {:>18}",
            "loss", "stateless mean", "stateful mean"
        );
        for (i, loss) in self.losses.iter().enumerate() {
            let _ = writeln!(out, 
                "{loss:>8.3}  {:>18.2}  {:>18.2}",
                self.stateless[i].steady_mean_tbps(),
                self.stateful[i].steady_mean_tbps()
            );
        }
        out
    }

    fn render_algo<'a>(
        &self,
        series: impl Fn(&'a MarkingSimResult) -> &'a Vec<f64>,
        results: &'a [MarkingSimResult],
    ) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:>6}", "iter");
        for loss in &self.losses {
            let _ = write!(out, "  loss={loss:<6.3}");
        }
        let _ = writeln!(out);
        let n = results[0].conforming_tbps.len().min(20);
        for i in 0..n {
            let _ = write!(out, "{i:>6}");
            for r in results {
                let _ = write!(out, "  {:>11.2}", series(r)[i]);
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper_shapes() {
        let out = run(60);
        assert_eq!(out.stateless.len(), 5);
        // At 100% loss: stateless swings hard, stateful settles at 5.
        let sl = &out.stateless[4];
        let sf = &out.stateful[4];
        assert!(sl.steady_swing_tbps() > 3.0);
        assert!((sf.steady_mean_tbps() - 5.0).abs() < 0.35);
        // At 0% loss both behave.
        assert!((out.stateless[0].steady_mean_tbps() - 5.0).abs() < 0.2);
        assert!((out.stateful[0].steady_mean_tbps() - 5.0).abs() < 0.2);
        // Stateless average overshoots once loss kicks in.
        for i in 2..5 {
            assert!(
                out.stateless[i].average_tbps.last().unwrap() > &5.4,
                "loss {}",
                out.losses[i]
            );
        }
    }
}
