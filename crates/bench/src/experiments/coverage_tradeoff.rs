//! Fig 21: hose coverage vs. number of representative TMs — coverage
//! rises with more TMs but with diminishing returns past ~2000, and the
//! trend is consistent across QoS classes.

use std::fmt::Write as _;
use entitlement_core::{DetRng, Direction, NpgId, QosClass, Rate, RegionId};
use entitlement_hose::coverage::coverage_curve;
use entitlement_hose::HoseRequest;
use serde::{Deserialize, Serialize};

/// One class's coverage curve sampled at checkpoints.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoverageCurve {
    /// The class label.
    pub qos: String,
    /// TM-count checkpoints.
    pub tm_counts: Vec<usize>,
    /// Coverage at each checkpoint.
    pub coverage: Vec<f64>,
}

/// The experiment output: one curve per QoS class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoverageTradeoff {
    /// Per-class curves.
    pub curves: Vec<CoverageCurve>,
}

/// Run for all four classes (hoses differ in size/destination count by
/// class, mimicking the class-specific demand mixes).
pub fn run(max_tms: usize, probes: usize, seed: u64) -> CoverageTradeoff {
    let mut rng = DetRng::new(seed);
    let checkpoints: Vec<usize> = [10, 25, 50, 100, 250, 500, 1000, 2000, 3000, 4000]
        .iter()
        .copied()
        .filter(|&c| c <= max_tms)
        .collect();
    let mut curves = Vec::new();
    for (i, qos) in QosClass::ALL.into_iter().enumerate() {
        let destinations = 4 + i; // premium classes are more concentrated
        let hose = HoseRequest::general(
            NpgId(i as u32),
            qos,
            RegionId(0),
            Direction::Egress,
            Rate::tbps(rng.range(0.5, 3.0)),
            (1..=destinations as u16).map(RegionId),
        );
        let curve = coverage_curve(&hose, max_tms, probes, seed ^ (i as u64) << 9);
        curves.push(CoverageCurve {
            qos: format!("{qos}"),
            tm_counts: checkpoints.clone(),
            coverage: checkpoints.iter().map(|&c| curve[c - 1]).collect(),
        });
    }
    CoverageTradeoff { curves }
}

impl CoverageTradeoff {
    /// Render every class's curve.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## Fig 21: hose coverage vs number of TMs");
        let _ = write!(out, "{:>8}", "tms");
        for c in &self.curves {
            let _ = write!(out, "  {:>8}", c.qos);
        }
        let _ = writeln!(out);
        for (row, &tms) in self.curves[0].tm_counts.iter().enumerate() {
            let _ = write!(out, "{tms:>8}");
            for c in &self.curves {
                let _ = write!(out, "  {:>8.3}", c.coverage[row]);
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diminishing_returns_and_class_consistency() {
        let out = run(4000, 200, 0xF21);
        assert_eq!(out.curves.len(), 4);
        for c in &out.curves {
            // Monotone non-decreasing.
            for w in c.coverage.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "{}: {:?}", c.qos, c.coverage);
            }
            // Diminishing returns: the gain from 10→500 dwarfs 2000→4000.
            let i10 = c.tm_counts.iter().position(|&t| t == 10).unwrap();
            let i500 = c.tm_counts.iter().position(|&t| t == 500).unwrap();
            let i2000 = c.tm_counts.iter().position(|&t| t == 2000).unwrap();
            let i4000 = c.tm_counts.iter().position(|&t| t == 4000).unwrap();
            // Marginal gain per TM shrinks by an order of magnitude.
            let early_rate = (c.coverage[i500] - c.coverage[i10]) / 490.0;
            let late_rate = (c.coverage[i4000] - c.coverage[i2000]) / 2000.0;
            assert!(
                early_rate > 3.0 * late_rate,
                "{}: early {early_rate} vs late {late_rate}",
                c.qos
            );
            // Meaningful coverage by 2000 TMs.
            assert!(c.coverage[i2000] > 0.3, "{}: {}", c.qos, c.coverage[i2000]);
        }
    }
}
