//! Figs 11–17: the end-to-end enforcement drill. This module wraps
//! [`entitlement_enforcement::drill::run_drill`] and slices the recorder
//! into the seven figures.

use entitlement_enforcement::drill::{run_drill_obs, DrillConfig};
use entitlement_obs::Obs;
use entitlement_enforcement::MarkingStrategy;
use entitlement_simnet::Recorder;
use serde::{Deserialize, Serialize};

/// All drill series (times in minutes).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DrillResult {
    /// Sample times, minutes.
    pub minutes: Vec<f64>,
    /// Fig 11.
    pub loss_conf: Vec<f64>,
    /// Fig 11.
    pub loss_nonconf: Vec<f64>,
    /// Fig 12.
    pub rate_total_tbps: Vec<f64>,
    /// Fig 12.
    pub rate_conform_tbps: Vec<f64>,
    /// Fig 12.
    pub rate_entitled_tbps: Vec<f64>,
    /// Fig 13.
    pub rtt_conf_ms: Vec<f64>,
    /// Fig 13.
    pub rtt_nonconf_ms: Vec<f64>,
    /// Fig 14.
    pub syn_conf: Vec<f64>,
    /// Fig 14.
    pub syn_nonconf: Vec<f64>,
    /// Fig 15.
    pub read_latency_s: Vec<f64>,
    /// Fig 16.
    pub write_latency_s: Vec<f64>,
    /// Fig 17.
    pub block_errors: Vec<f64>,
}

fn slice(r: &Recorder) -> DrillResult {
    DrillResult {
        minutes: r.times.iter().map(|t| t / 60.0).collect(),
        loss_conf: r.series("loss_conf"),
        loss_nonconf: r.series("loss_nonconf"),
        rate_total_tbps: r.series("rate_total_tbps"),
        rate_conform_tbps: r.series("rate_conform_tbps"),
        rate_entitled_tbps: r.series("rate_entitled_tbps"),
        rtt_conf_ms: r.series("rtt_conf_ms"),
        rtt_nonconf_ms: r.series("rtt_nonconf_ms"),
        syn_conf: r.series("syn_conf"),
        syn_nonconf: r.series("syn_nonconf"),
        read_latency_s: r.series("read_latency_s"),
        write_latency_s: r.series("write_latency_s"),
        block_errors: r.series("block_errors"),
    }
}

/// Run the drill with the default (paper) timeline.
pub fn run(strategy: MarkingStrategy) -> DrillResult {
    run_obs(strategy, &Obs::disabled())
}

/// [`run`] with telemetry: agent-cycle spans, KV latency histograms,
/// and staleness metrics land in `obs` (see
/// [`entitlement_enforcement::drill::run_drill_obs`]).
pub fn run_obs(strategy: MarkingStrategy, obs: &Obs) -> DrillResult {
    let r = run_drill_obs(
        &DrillConfig {
            strategy,
            ..Default::default()
        },
        obs,
    );
    slice(&r)
}

impl DrillResult {
    /// Render all seven figures.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let n = 26;
        let xs = super::downsample(&self.minutes, n);
        type Row<'a> = (&'a str, &'a str, &'a Vec<f64>, Option<&'a Vec<f64>>);
        let pairs: [Row<'_>; 7] = [
            ("Fig 11: packet loss ratio", "conf / nonconf", &self.loss_conf, Some(&self.loss_nonconf)),
            ("Fig 12: traffic rate (Tbps)", "total / conform", &self.rate_total_tbps, Some(&self.rate_conform_tbps)),
            ("Fig 12b: entitled rate (Tbps)", "entitled", &self.rate_entitled_tbps, None),
            ("Fig 13: RTT (ms)", "conf / nonconf", &self.rtt_conf_ms, Some(&self.rtt_nonconf_ms)),
            ("Fig 14: SYN transmissions", "conf / nonconf", &self.syn_conf, Some(&self.syn_nonconf)),
            ("Fig 15/16: app latency (s)", "read / write", &self.read_latency_s, Some(&self.write_latency_s)),
            ("Fig 17: block write errors", "errors", &self.block_errors, None),
        ];
        for (title, label, a, b) in pairs {
            let da = super::downsample(a, n);
            match b {
                Some(b) => {
                    let db = super::downsample(b, n);
                    out.push_str(&super::render_multi(title, "minute", &xs, &[(label, &da), ("", &db)]));
                }
                None => out.push_str(&super::render_series(title, "minute", label, &xs, &da)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The drill's own shape assertions live in
    /// `entitlement_enforcement::drill`; here we check the harness
    /// plumbing and the flow-based ablation's contrast.
    #[test]
    fn host_based_reads_recover_at_full_drop_but_flow_based_do_not() {
        let host = run(MarkingStrategy::HostBased);
        let flow = run(MarkingStrategy::FlowBased);
        let window = |r: &DrillResult, series: fn(&DrillResult) -> &Vec<f64>, a: f64, b: f64| {
            let vals: Vec<f64> = r
                .minutes
                .iter()
                .zip(series(r))
                .filter(|(&m, _)| m >= a && m < b)
                .map(|(_, &v)| v)
                .collect();
            entitlement_core::stats::mean(&vals)
        };
        // Host-based: reads fail over per host. At the 100% stage the
        // marked hosts are cleanly dead and latency falls back toward the
        // 50%-stage level or below (Fig 15).
        let host_50 = window(&host, |r| &r.read_latency_s, 115.0, 145.0);
        let host_100 = window(&host, |r| &r.read_latency_s, 170.0, 220.0);
        assert!(host_100 < host_50, "host-based recovers: {host_100} vs {host_50}");
        // Flow-based: every host keeps a slice of dead flows, failover
        // cannot route around them, so the 100% stage stays at least as
        // painful relative to its own 50% stage.
        let flow_50 = window(&flow, |r| &r.read_latency_s, 115.0, 145.0);
        let flow_100 = window(&flow, |r| &r.read_latency_s, 170.0, 220.0);
        let host_ratio = host_100 / host_50;
        let flow_ratio = flow_100 / flow_50;
        assert!(
            flow_ratio > host_ratio,
            "flow-based {flow_ratio} should fare worse than host-based {host_ratio}"
        );
    }
}
