//! One module per experiment; ids match DESIGN.md's experiment index.

pub mod ablations;
pub mod approval_slo;
pub mod coverage_tradeoff;
pub mod drill;
pub mod forecast_accuracy;
pub mod hose_example;
pub mod incident;
pub mod marking;
pub mod segmented_benefit;
pub mod service_distribution;
pub mod src_distribution;
pub mod storage_patterns;

/// A printable two-column series.
pub fn print_series(title: &str, x_label: &str, y_label: &str, xs: &[f64], ys: &[f64]) {
    println!("\n## {title}");
    println!("{x_label:>14}  {y_label}");
    for (x, y) in xs.iter().zip(ys) {
        println!("{x:>14.3}  {y:.4}");
    }
}

/// Print several aligned series under one title.
pub fn print_multi(title: &str, x_label: &str, xs: &[f64], series: &[(&str, &[f64])]) {
    println!("\n## {title}");
    print!("{x_label:>14}");
    for (name, _) in series {
        print!("  {name:>18}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>14.2}");
        for (_, ys) in series {
            let v = ys.get(i).copied().unwrap_or(f64::NAN);
            print!("  {v:>18.4}");
        }
        println!();
    }
}

/// Downsample a series to at most `n` evenly spaced points (keeps print
/// output readable for long drill runs).
pub fn downsample(xs: &[f64], n: usize) -> Vec<f64> {
    if xs.len() <= n || n == 0 {
        return xs.to_vec();
    }
    (0..n)
        .map(|i| xs[i * (xs.len() - 1) / (n - 1)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_keeps_endpoints() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&xs, 11);
        assert_eq!(d.len(), 11);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[10], 99.0);
    }

    #[test]
    fn downsample_short_is_identity() {
        let xs = vec![1.0, 2.0];
        assert_eq!(downsample(&xs, 10), xs);
    }
}
