//! One module per experiment; ids match DESIGN.md's experiment index.

pub mod ablations;
pub mod approval_slo;
pub mod coverage_tradeoff;
pub mod drill;
pub mod forecast_accuracy;
pub mod hose_example;
pub mod incident;
pub mod marking;
pub mod segmented_benefit;
pub mod service_distribution;
pub mod src_distribution;
pub mod storage_patterns;

use std::fmt::Write as _;

/// Render a two-column series as an aligned table.
#[must_use]
pub fn render_series(title: &str, x_label: &str, y_label: &str, xs: &[f64], ys: &[f64]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n## {title}");
    let _ = writeln!(out, "{x_label:>14}  {y_label}");
    for (x, y) in xs.iter().zip(ys) {
        let _ = writeln!(out, "{x:>14.3}  {y:.4}");
    }
    out
}

/// Render several aligned series under one title.
#[must_use]
pub fn render_multi(title: &str, x_label: &str, xs: &[f64], series: &[(&str, &[f64])]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n## {title}");
    let _ = write!(out, "{x_label:>14}");
    for (name, _) in series {
        let _ = write!(out, "  {name:>18}");
    }
    let _ = writeln!(out);
    for (i, x) in xs.iter().enumerate() {
        let _ = write!(out, "{x:>14.2}");
        for (_, ys) in series {
            let v = ys.get(i).copied().unwrap_or(f64::NAN);
            let _ = write!(out, "  {v:>18.4}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Downsample a series to at most `n` evenly spaced points (keeps print
/// output readable for long drill runs).
pub fn downsample(xs: &[f64], n: usize) -> Vec<f64> {
    if xs.len() <= n || n == 0 {
        return xs.to_vec();
    }
    (0..n)
        .map(|i| xs[i * (xs.len() - 1) / (n - 1)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_keeps_endpoints() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&xs, 11);
        assert_eq!(d.len(), 11);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[10], 99.0);
    }

    #[test]
    fn downsample_short_is_identity() {
        let xs = vec![1.0, 2.0];
        assert_eq!(downsample(&xs, 10), xs);
    }
}
