//! Fig 22: the tradeoff between approval percentage and the availability
//! SLO — as the availability requirement rises, more bandwidth must be
//! reserved against failures and the approved share of requests falls;
//! egress and ingress exhibit the same trend.

use std::fmt::Write as _;
use entitlement_approval::{hose_approval, ApprovalConfig, ApprovalSummary};
use entitlement_core::{Direction, NpgId, QosClass, SloTarget};
use entitlement_hose::HoseRequest;
use entitlement_topology::{BackboneSpec, Topology};
use serde::{Deserialize, Serialize};

/// Approval rate per availability target, per direction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ApprovalSlo {
    /// The availability targets swept.
    pub availability: Vec<f64>,
    /// Volume-weighted egress approval rate at each target.
    pub egress_approval: Vec<f64>,
    /// Ingress approval rate.
    pub ingress_approval: Vec<f64>,
}

/// Build demand: one hose per DC per direction, sized at a multiple of
/// the region's attached capacity so approvals are capacity-bound.
/// A deterministic per-(region, direction) jitter breaks the perfect
/// egress/ingress symmetry of the duplex fiber plant — real demand is
/// direction-asymmetric even when capacity is not, which is why the
/// paper's two curves are similar but not identical.
fn demand(topo: &Topology, direction: Direction, demand_scale: f64) -> Vec<HoseRequest> {
    let dcs = topo.dc_ids();
    dcs.iter()
        .enumerate()
        .map(|(i, &region)| {
            let attached = match direction {
                Direction::Egress => topo.egress_capacity(region),
                Direction::Ingress => topo.ingress_capacity(region),
            };
            let mut jitter_rng = entitlement_core::DetRng::new(
                0xD1F ^ (region.0 as u64) << 4
                    ^ if direction == Direction::Ingress { 1 } else { 0 },
            );
            let jitter = jitter_rng.range(0.85, 1.15);
            let remotes: Vec<_> = dcs.iter().copied().filter(|&r| r != region).collect();
            HoseRequest::general(
                NpgId(i as u32),
                QosClass::C2,
                region,
                direction,
                attached * demand_scale * jitter,
                remotes,
            )
        })
        .collect()
}

/// Run the sweep with the default (serial) risk-sweep settings.
pub fn run(targets: &[f64], demand_scale: f64, seed: u64) -> ApprovalSlo {
    run_with_sweep(targets, demand_scale, seed, 1, true)
}

/// Run the sweep with explicit risk-sweep `workers` / `dedup` knobs. The
/// result is bitwise identical for every knob combination — only the
/// wall-clock changes (see `entitlement_risk::sweep`).
pub fn run_with_sweep(
    targets: &[f64],
    demand_scale: f64,
    seed: u64,
    workers: usize,
    dedup: bool,
) -> ApprovalSlo {
    let topo = BackboneSpec {
        seed,
        ..BackboneSpec::small(seed)
    }
    .build();
    let config = ApprovalConfig {
        tms_per_hose: 6,
        max_cuts: 2,
        workers,
        dedup,
        ..Default::default()
    };
    let mut out = ApprovalSlo {
        availability: targets.to_vec(),
        egress_approval: Vec::new(),
        ingress_approval: Vec::new(),
    };
    for &a in targets {
        let slo = SloTarget::new(a).expect("valid availability");
        for direction in [Direction::Egress, Direction::Ingress] {
            let hoses = demand(&topo, direction, demand_scale);
            let slos = vec![slo; hoses.len()];
            let approvals = hose_approval(&topo, &hoses, &slos, &config);
            let rate = ApprovalSummary::from_approvals(&approvals).approval_rate();
            match direction {
                Direction::Egress => out.egress_approval.push(rate),
                Direction::Ingress => out.ingress_approval.push(rate),
            }
        }
    }
    out
}

impl ApprovalSlo {
    /// Render the two series.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## Fig 22: approval percentage vs availability SLO");
        let _ = writeln!(out, "{:>14}  {:>10}  {:>10}", "availability", "egress", "ingress");
        for (i, a) in self.availability.iter().enumerate() {
            let _ = writeln!(out, 
                "{a:>14.4}  {:>9.1}%  {:>9.1}%",
                self.egress_approval[i] * 100.0,
                self.ingress_approval[i] * 100.0
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approval_falls_as_availability_rises() {
        let out = run(&[0.9, 0.99, 0.999, 0.9995], 0.45, 0x22);
        for series in [&out.egress_approval, &out.ingress_approval] {
            // Non-increasing in the SLO.
            for w in series.windows(2) {
                assert!(
                    w[1] <= w[0] + 1e-9,
                    "approval must not rise with stricter SLO: {series:?}"
                );
            }
            // The sweep spans a meaningful range: high at loose SLO,
            // visibly reduced at the strict end.
            assert!(series[0] > 0.5, "loose-SLO approval {series:?}");
            assert!(
                series[3] < series[0],
                "strict SLO must bite: {series:?}"
            );
        }
    }
}
