//! Fig 4 & 5: a misbehaving service (the video-client bug) forms a +50%
//! traffic spike within three minutes and, without entitlement
//! enforcement, induces loss on *all* traffic of the QoS classes it
//! occupies — up to ~8% in Class A and ~2% in Class B.
//!
//! QoS isolation protects classes from each other, so each class is
//! modeled as its own (already highly utilized) queue; the misbehaving
//! service has most of its traffic in Class A and some in Class B.

use std::fmt::Write as _;
use entitlement_core::Rate;
use entitlement_simnet::{Bottleneck, MarkingCommand, World, WorldConfig};
use entitlement_workload::Incident;
use serde::{Deserialize, Serialize};

/// The incident experiment's series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IncidentResult {
    /// Sample times, minutes.
    pub minutes: Vec<f64>,
    /// The misbehaving service's offered rate (Fig 4), Tbps.
    pub service_rate_tbps: Vec<f64>,
    /// Network-wide loss ratio of Class A traffic (Fig 5).
    pub class_a_loss: Vec<f64>,
    /// Network-wide loss ratio of Class B traffic (Fig 5).
    pub class_b_loss: Vec<f64>,
    /// Peak losses.
    pub peak_a_loss: f64,
    /// Peak Class-B loss.
    pub peak_b_loss: f64,
}

/// Run the incident without enforcement.
pub fn run(seed: u64) -> IncidentResult {
    // Class A: misbehaving service is 30% of a 10T class at 95%
    // utilization; Class B: it contributes 10% of an 8T class at 90%.
    let incident = Incident::video_bug(1200.0, 4800.0); // starts at 20 min
    let dt = 30.0;
    let duration = 7200.0; // 2 hours

    let mk_world = |base: Rate, cap: Rate, seed: u64| {
        World::new(
            WorldConfig {
                hosts: 200,
                base_rate: base,
                dt_secs: dt,
                seed,
                ..Default::default()
            },
            Bottleneck {
                capacity: cap,
                ..Default::default()
            },
        )
    };

    // Class A: steady background 6.65T + misbehaving 2.85T = 9.5T of
    // 10T; the spike pushes it to ~10.9T (≈ 8% overflow).
    let mut world_a_bg = mk_world(Rate::tbps(6.65), Rate::tbps(10.0), seed);
    let mut world_a_bad = mk_world(Rate::tbps(2.85), Rate::tbps(10.0), seed ^ 1);
    world_a_bad.set_demand_multiplier(move |t| incident.factor_at(t));
    // Class B: background 7.0T + misbehaving 0.8T = 7.8T of 8T; the
    // +50% spike pushes it to ~8.2T.
    let mut world_b_bg = mk_world(Rate::tbps(7.0), Rate::tbps(8.0), seed ^ 2);
    let mut world_b_bad = mk_world(Rate::tbps(0.8), Rate::tbps(8.0), seed ^ 3);
    world_b_bad.set_demand_multiplier(move |t| incident.factor_at(t));

    let shared_a = Bottleneck {
        capacity: Rate::tbps(10.0),
        ..Default::default()
    };
    let shared_b = Bottleneck {
        capacity: Rate::tbps(8.0),
        ..Default::default()
    };

    let mut out = IncidentResult {
        minutes: Vec::new(),
        service_rate_tbps: Vec::new(),
        class_a_loss: Vec::new(),
        class_b_loss: Vec::new(),
        peak_a_loss: 0.0,
        peak_b_loss: 0.0,
    };

    let ticks = (duration / dt) as usize;
    for k in 0..ticks {
        let t = k as f64 * dt;
        // Each class's queue carries background + misbehaving traffic
        // together; no enforcement, everything is "conforming".
        let a_bg = world_a_bg.step(t, &MarkingCommand::None);
        let a_bad = world_a_bad.step(t, &MarkingCommand::None);
        let b_bg = world_b_bg.step(t, &MarkingCommand::None);
        let b_bad = world_b_bad.step(t, &MarkingCommand::None);

        let a = shared_a.serve(t, a_bg.total_sent + a_bad.total_sent, Rate::ZERO);
        let b = shared_b.serve(t, b_bg.total_sent + b_bad.total_sent, Rate::ZERO);

        out.minutes.push(t / 60.0);
        out.service_rate_tbps
            .push((a_bad.offered + b_bad.offered).as_tbps());
        out.class_a_loss.push(a.conf_loss);
        out.class_b_loss.push(b.conf_loss);
        out.peak_a_loss = out.peak_a_loss.max(a.conf_loss);
        out.peak_b_loss = out.peak_b_loss.max(b.conf_loss);
    }
    out
}

impl IncidentResult {
    /// Render Fig 4 and Fig 5 series.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let xs = super::downsample(&self.minutes, 24);
        let rate = super::downsample(&self.service_rate_tbps, 24);
        out.push_str(&super::render_series(
            "Fig 4: misbehaving service rate (Tbps)",
            "minute",
            "rate",
            &xs,
            &rate,
        ));
        let a = super::downsample(&self.class_a_loss, 24);
        let b = super::downsample(&self.class_b_loss, 24);
        out.push_str(&super::render_multi(
            "Fig 5: loss induced on two QoS classes",
            "minute",
            &xs,
            &[("classA_loss", &a), ("classB_loss", &b)],
        ));
        let _ = writeln!(out, 
            "peak loss: classA {:.1}%, classB {:.1}%",
            self.peak_a_loss * 100.0,
            self.peak_b_loss * 100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spike_forms_within_three_minutes() {
        let r = run(5);
        // Find the service rate before and at the top of the ramp.
        let before = r.service_rate_tbps[30]; // minute 15
        let after = r.service_rate_tbps[50]; // minute 25
        assert!(
            (after / before - 1.5).abs() < 0.1,
            "spike magnitude {}",
            after / before
        );
    }

    #[test]
    fn loss_shape_matches_fig5() {
        let r = run(5);
        // No loss before the incident.
        assert!(r.class_a_loss[..35].iter().all(|&l| l < 0.01));
        // Class A suffers several percent, Class B less, both bounded.
        assert!(
            (0.02..0.15).contains(&r.peak_a_loss),
            "classA peak {}",
            r.peak_a_loss
        );
        assert!(
            (0.005..0.08).contains(&r.peak_b_loss),
            "classB peak {}",
            r.peak_b_loss
        );
        assert!(r.peak_a_loss > r.peak_b_loss, "A hit harder than B");
        // Loss clears after mitigation (incident ends at minute 100).
        let tail = &r.class_a_loss[r.class_a_loss.len() - 20..];
        assert!(tail.iter().all(|&l| l < 0.01), "loss clears: {tail:?}");
    }
}
