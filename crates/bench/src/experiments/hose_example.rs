//! Fig 6: reserved capacity of the three contract representations on the
//! paper's worked example (Ads in region A, forecast 300/100/250/250 G
//! to B/C/D/E): pipe 900G, general hose 3600G, segmented hose 1800G.

use std::fmt::Write as _;
use entitlement_core::{Direction, NpgId, QosClass, Rate, RegionId};
use entitlement_hose::request::{HoseSegment, PipeRequest};
use entitlement_hose::HoseRequest;
use serde::{Deserialize, Serialize};

/// The three reserved capacities.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HoseExample {
    /// Pipe model reservation, Gbps.
    pub pipe_gbps: f64,
    /// General hose reservation, Gbps.
    pub general_hose_gbps: f64,
    /// Segmented hose reservation, Gbps.
    pub segmented_hose_gbps: f64,
}

/// Compute the example (deterministic — it is the paper's arithmetic).
pub fn run() -> HoseExample {
    let pipes: Vec<PipeRequest> = [(1u16, 300.0), (2, 100.0), (3, 250.0), (4, 250.0)]
        .iter()
        .map(|&(dst, g)| PipeRequest {
            npg: NpgId(0),
            qos: QosClass::C1,
            src: RegionId(0),
            dst: RegionId(dst),
            rate: Rate::gbps(g),
        })
        .collect();
    let total = Rate::gbps(900.0);
    let general = HoseRequest::general(
        NpgId(0),
        QosClass::C1,
        RegionId(0),
        Direction::Egress,
        total,
        (1..=4).map(RegionId),
    );
    let segmented = HoseRequest {
        npg: NpgId(0),
        qos: QosClass::C1,
        region: RegionId(0),
        direction: Direction::Egress,
        total,
        segments: vec![
            HoseSegment {
                regions: [RegionId(1), RegionId(2)].into_iter().collect(),
                cap: Rate::gbps(400.0),
            },
            HoseSegment {
                regions: [RegionId(3), RegionId(4)].into_iter().collect(),
                cap: Rate::gbps(500.0),
            },
        ],
    };
    HoseExample {
        pipe_gbps: HoseRequest::pipe_reserved_capacity(&pipes).as_gbps(),
        general_hose_gbps: general.reserved_capacity().as_gbps(),
        segmented_hose_gbps: segmented.reserved_capacity().as_gbps(),
    }
}

impl HoseExample {
    /// Render the comparison.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## Fig 6: reserved capacity per contract model");
        let _ = writeln!(out, "pipe model       {:>8.0} G (paper: 900 G)", self.pipe_gbps);
        let _ = writeln!(out, 
            "general hose     {:>8.0} G (paper: 3600 G)",
            self.general_hose_gbps
        );
        let _ = writeln!(out, 
            "segmented hose   {:>8.0} G (paper: 1800 G)",
            self.segmented_hose_gbps
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_paper_numbers() {
        let e = run();
        assert_eq!(e.pipe_gbps, 900.0);
        assert_eq!(e.general_hose_gbps, 3600.0);
        assert_eq!(e.segmented_hose_gbps, 1800.0);
    }
}
