//! # entitlement-bench
//!
//! The experiment harness that regenerates every figure of the Network
//! Entitlement paper's evaluation (see DESIGN.md §5 for the full index),
//! plus the ablations DESIGN.md calls out. Each experiment is a plain
//! function returning a serializable result with a `print` method; the
//! `repro` binary dispatches on figure id and prints the same series the
//! paper plots. Criterion benches in `benches/` time the underlying
//! pipelines.
//!
//! Absolute numbers differ from the paper (the substrate is a simulator,
//! not Meta's backbone); the *shapes* — who wins, by what factor, where
//! the crossovers sit — are asserted by the experiment tests and
//! recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod experiments;

pub use experiments::*;
