//! Regenerate the paper's figures.
//!
//! ```text
//! repro <id> [--json]     one experiment (fig1, fig3, fig6, ..., fig25,
//!                         ablations)
//! repro all [--json]      everything
//! repro list              show the experiment index
//! ```
//!
//! `--workers N` / `--no-dedup` control the risk-simulation sweep for
//! the approval experiments (fig22): `N` scoped threads route the
//! failure scenarios (0 = one per core), and dedup routes each distinct
//! failure set once. Both are output-invariant.
//!
//! `--trace out.jsonl` / `--metrics out.prom` collect span traces and a
//! Prometheus snapshot from the drill experiments (fig11–fig17): agent
//! cycles, KV operations, and staleness histograms, stamped by a
//! deterministic logical clock. Validate or summarize the outputs with
//! `entitlectl obs summarize`.

use entitlement_bench::experiments as exp;
use entitlement_enforcement::MarkingStrategy;
use entitlement_obs::{Clock, Obs};

const INDEX: &[(&str, &str)] = &[
    ("fig1", "service distribution of a high QoS class"),
    ("fig2", "service distribution of a low QoS class"),
    ("fig3", "Coldstorage vs Warmstorage traffic patterns"),
    ("fig4", "misbehaving service: the +50% spike"),
    ("fig5", "loss induced on two QoS classes"),
    ("fig6", "reserved capacity: pipe vs hose vs segmented hose"),
    ("fig7", "traffic distribution across sources for one destination"),
    ("fig11", "drill: packet loss per conformance class"),
    ("fig12", "drill: traffic rate vs entitlement"),
    ("fig13", "drill: RTT"),
    ("fig14", "drill: TCP SYN transmissions"),
    ("fig15", "drill: storage read latency"),
    ("fig16", "drill: storage write latency"),
    ("fig17", "drill: block write errors"),
    ("fig18", "forecast accuracy sMAPE CDF, QoS A"),
    ("fig19", "forecast accuracy sMAPE CDF, QoS B"),
    ("fig20", "segmented hose: TM-count reduction CDF"),
    ("fig21", "hose coverage vs number of TMs"),
    ("fig22", "approval percentage vs availability SLO"),
    ("fig23", "stateless marking, instantaneous rate"),
    ("fig24", "stateless marking, average rate"),
    ("fig25", "stateful marking, instantaneous rate"),
    ("ablations", "N-segments, recovery factor, gen-1 vs gen-2"),
];

/// Risk-sweep knobs shared by the approval-pipeline experiments.
#[derive(Clone, Copy)]
struct SweepOpts {
    workers: usize,
    dedup: bool,
}

/// `--trace` / `--metrics` output paths (drill experiments only).
#[derive(Clone, Default)]
struct TeleOpts {
    trace: Option<String>,
    metrics: Option<String>,
}

impl TeleOpts {
    fn from_args(args: &[String]) -> Self {
        let value = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1).cloned())
        };
        TeleOpts {
            trace: value("--trace"),
            metrics: value("--metrics"),
        }
    }

    fn requested(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    fn make_obs(&self) -> Obs {
        if self.requested() {
            Obs::new(Clock::counting(1))
        } else {
            Obs::disabled()
        }
    }

    fn write(&self, obs: &Obs) {
        if let Some(path) = &self.trace {
            std::fs::write(path, obs.trace.to_jsonl()).expect("write trace");
            eprintln!("{} trace event(s) written to {path}", obs.trace.len());
        }
        if let Some(path) = &self.metrics {
            std::fs::write(path, obs.registry.render()).expect("write metrics");
            eprintln!("metrics written to {path}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let sweep = SweepOpts {
        workers: args
            .iter()
            .position(|a| a == "--workers")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(1),
        dedup: !args.iter().any(|a| a == "--no-dedup"),
    };
    let tele = TeleOpts::from_args(&args);
    let id = args.first().map_or("list", String::as_str);

    match id {
        "list" => {
            println!("experiments:");
            for (id, desc) in INDEX {
                println!("  {id:<10} {desc}");
            }
        }
        "all" => {
            // Heavy experiments back several figure ids; run each once.
            for id in [
                "fig1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig11", "fig18", "fig19",
                "fig20", "fig21", "fig22", "fig23", "ablations",
            ] {
                run(id, json, sweep, &tele);
            }
        }
        _ => run(id, json, sweep, &tele),
    }
}

fn emit<T: serde::Serialize>(json: bool, id: &str, value: &T, print: impl FnOnce()) {
    if json {
        println!(
            "{{\"experiment\":\"{id}\",\"data\":{}}}",
            serde_json::to_string(value).expect("serializable result")
        );
    } else {
        print();
    }
}

fn run(id: &str, json: bool, sweep: SweepOpts, tele: &TeleOpts) {
    match id {
        "fig1" | "fig2" => {
            let (high, low) = exp::service_distribution::run(0x51);
            let d = if id == "fig1" { high } else { low };
            emit(json, id, &d, || print!("{}", d.render()));
        }
        "fig3" => {
            let p = exp::storage_patterns::run(2.0);
            emit(json, id, &p, || print!("{}", p.render()));
        }
        "fig4" | "fig5" => {
            let r = exp::incident::run(5);
            emit(json, id, &r, || print!("{}", r.render()));
        }
        "fig6" => {
            let e = exp::hose_example::run();
            emit(json, id, &e, || print!("{}", e.render()));
        }
        "fig7" => {
            let d = exp::src_distribution::run(0x51);
            emit(json, id, &d, || print!("{}", d.render()));
        }
        "fig11" | "fig12" | "fig13" | "fig14" | "fig15" | "fig16" | "fig17" => {
            let obs = tele.make_obs();
            let r = exp::drill::run_obs(MarkingStrategy::HostBased, &obs);
            emit(json, id, &r, || print!("{}", r.render()));
            tele.write(&obs);
        }
        "fig18" | "fig19" => {
            let seed = if id == "fig18" { 0xF18 } else { 0xF19 };
            let acc = exp::forecast_accuracy::run(&exp::forecast_accuracy::AccuracyConfig {
                seed,
                ..Default::default()
            });
            let label = if id == "fig18" { "QoS A" } else { "QoS B" };
            emit(json, id, &acc, || print!("{}", acc.render(label)));
        }
        "fig20" => {
            let b = exp::segmented_benefit::run(&Default::default());
            emit(json, id, &b, || print!("{}", b.render()));
        }
        "fig21" => {
            let c = exp::coverage_tradeoff::run(4000, 400, 0xF21);
            emit(json, id, &c, || print!("{}", c.render()));
        }
        "fig22" => {
            let a = exp::approval_slo::run_with_sweep(
                &[0.9, 0.95, 0.99, 0.995, 0.999, 0.9995],
                0.45,
                0x22,
                sweep.workers,
                sweep.dedup,
            );
            emit(json, id, &a, || print!("{}", a.render()));
        }
        "fig23" | "fig24" | "fig25" => {
            let m = exp::marking::run(60);
            emit(json, id, &m, || print!("{}", m.render()));
        }
        "ablations" => {
            let s = exp::ablations::segments_ablation(20, 0xAB1);
            let r = exp::ablations::recovery_ablation();
            let a = exp::ablations::architecture_ablation();
            let g = exp::ablations::srlg_ablation(0x51);
            if json {
                emit(json, "ablation_segments", &s, || {});
                emit(json, "ablation_recovery", &r, || {});
                emit(json, "ablation_architecture", &a, || {});
                emit(json, "ablation_srlg", &g, || {});
            } else {
                print!("{}{}{}{}", s.render(), r.render(), a.render(), g.render());
            }
        }
        other => {
            eprintln!("unknown experiment '{other}'; try `repro list`");
            std::process::exit(2);
        }
    }
}
