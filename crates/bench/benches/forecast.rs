//! Criterion benches for the demand-forecast pipeline (Figs 18–19):
//! decomposable-model fitting, quantile-GBDT training, and the full
//! quarterly pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use entitlement_core::Rate;
use entitlement_forecast::{
    DecomposableModel, ForecastPipeline, GbdtConfig, ModelConfig, PipelineConfig, QuantileGbdt,
};
use entitlement_workload::HistorySpec;

fn history(months: usize) -> (Vec<f64>, Vec<u32>, Vec<Vec<f64>>) {
    let h = HistorySpec {
        months,
        base_rate: Rate::gbps(200.0),
        seed: 77,
        ..Default::default()
    }
    .generate();
    let regs = h.regressors.iter().map(|r| r.features().to_vec()).collect();
    (h.daily_bps, h.holidays, regs)
}

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposable_model");
    for months in [6usize, 12, 24] {
        let (daily, holidays, _) = history(months);
        group.bench_with_input(BenchmarkId::new("fit", months * 30), &daily, |b, daily| {
            b.iter(|| DecomposableModel::fit(daily, &holidays, ModelConfig::default()).unwrap())
        });
    }
    let (daily, holidays, _) = history(12);
    let model = DecomposableModel::fit(&daily, &holidays, ModelConfig::default()).unwrap();
    group.bench_function("predict_90_days", |b| {
        b.iter(|| model.predict_range(360, 90))
    });
    group.finish();
}

fn bench_gbdt(c: &mut Criterion) {
    let xs: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![(i % 17) as f64, (i % 5) as f64, i as f64 / 10.0])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 + x[1]).collect();
    let mut group = c.benchmark_group("quantile_gbdt");
    group.sample_size(20);
    group.bench_function("fit_200x3_100rounds", |b| {
        b.iter(|| QuantileGbdt::fit(&xs, &ys, GbdtConfig::default()))
    });
    let model = QuantileGbdt::fit(&xs, &ys, GbdtConfig::default());
    group.bench_function("predict", |b| b.iter(|| model.predict(&[3.0, 2.0, 5.0])));
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let (daily, holidays, regs) = history(12);
    let mut group = c.benchmark_group("forecast_pipeline");
    group.sample_size(20);
    group.bench_function("fit_and_forecast_quarter", |b| {
        b.iter(|| {
            let pipe =
                ForecastPipeline::fit(&daily, &holidays, &regs, PipelineConfig::default()).unwrap();
            let future = [regs[9].clone(), regs[10].clone(), regs[11].clone()];
            pipe.forecast_quarter(&regs, &future)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decompose, bench_gbdt, bench_pipeline);
criterion_main!(benches);
