//! Criterion benches for the granting side: segmentation (Fig 6/20),
//! representative-TM generation and coverage (Fig 20/21), risk
//! assessment, and the full approval pipeline (Fig 22).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use entitlement_approval::{hose_approval, ApprovalConfig};
use entitlement_core::{DetRng, Direction, NpgId, QosClass, Rate, RegionId, SloTarget};
use entitlement_hose::coverage::{coverage_of, probe_points};
use entitlement_hose::{generate_tms, segment_flow_series, HoseRequest, TmGenConfig};
use entitlement_risk::{assess_risk, RiskConfig};
use entitlement_topology::routing::Demand;
use entitlement_topology::{BackboneSpec, ScenarioSet};

fn synth_flows(dests: usize) -> entitlement_hose::segment::FlowSeries {
    let mut rng = DetRng::new(9);
    let mut flows = entitlement_hose::segment::FlowSeries::new();
    for d in 0..dests {
        let base = 1000.0 / (d + 1) as f64;
        flows.insert(
            RegionId(1 + d as u16),
            (0..24).map(|t| base * (1.0 + 0.1 * rng.f64() + 0.05 * (t as f64).sin())).collect(),
        );
    }
    flows
}

fn bench_segmentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("segmented_hose");
    for dests in [4usize, 8, 16, 32] {
        let flows = synth_flows(dests);
        group.bench_with_input(BenchmarkId::new("algorithm1", dests), &flows, |b, flows| {
            b.iter(|| {
                segment_flow_series(
                    NpgId(1),
                    QosClass::C1,
                    RegionId(0),
                    Direction::Egress,
                    Rate::gbps(900.0),
                    flows,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_tm_generation(c: &mut Criterion) {
    let hose = HoseRequest::general(
        NpgId(1),
        QosClass::C1,
        RegionId(0),
        Direction::Egress,
        Rate::gbps(900.0),
        (1..=8).map(RegionId),
    );
    let mut group = c.benchmark_group("tm_generation");
    for count in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("generate", count), &count, |b, &count| {
            b.iter(|| {
                generate_tms(
                    &hose,
                    &TmGenConfig {
                        count,
                        ..Default::default()
                    },
                )
            })
        });
    }
    let tms = generate_tms(
        &hose,
        &TmGenConfig {
            count: 500,
            ..Default::default()
        },
    );
    let probes = probe_points(&hose, 200, 3);
    group.bench_function("coverage_500tms_200probes", |b| {
        b.iter(|| coverage_of(&tms, &probes))
    });
    group.finish();
}

fn bench_risk(c: &mut Criterion) {
    let topo = BackboneSpec::small(41).build();
    let ids = topo.dc_ids();
    let demands: Vec<Demand> = ids
        .iter()
        .skip(1)
        .map(|&dst| Demand {
            src: ids[0],
            dst,
            amount: Rate::gbps(200.0),
        })
        .collect();
    let mut group = c.benchmark_group("risk_simulation");
    group.sample_size(20);
    for max_cuts in [1usize, 2] {
        let scenarios = ScenarioSet::enumerate(&topo, max_cuts);
        group.bench_with_input(
            BenchmarkId::new("assess", format!("{}cuts_{}scen", max_cuts, scenarios.len())),
            &scenarios,
            |b, scenarios| {
                b.iter(|| assess_risk(&topo, &demands, scenarios, &RiskConfig::default()))
            },
        );
    }
    group.finish();
}

fn bench_approval(c: &mut Criterion) {
    let topo = BackboneSpec::small(41).build();
    let dcs = topo.dc_ids();
    let hoses: Vec<HoseRequest> = dcs
        .iter()
        .enumerate()
        .map(|(i, &region)| {
            HoseRequest::general(
                NpgId(i as u32),
                QosClass::C2,
                region,
                Direction::Egress,
                Rate::tbps(1.0),
                dcs.iter().copied().filter(|&r| r != region),
            )
        })
        .collect();
    let slos = vec![SloTarget::new(0.99).unwrap(); hoses.len()];
    let mut group = c.benchmark_group("approval");
    group.sample_size(10);
    group.bench_function("hose_approval_5dcs", |b| {
        b.iter(|| {
            hose_approval(
                &topo,
                &hoses,
                &slos,
                &ApprovalConfig {
                    tms_per_hose: 4,
                    max_cuts: 1,
                    ..Default::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_selection_and_srlg(c: &mut Criterion) {
    use entitlement_hose::{greedy_select, SelectConfig};
    use entitlement_topology::SrlgMap;

    let hose = HoseRequest::general(
        NpgId(1),
        QosClass::C1,
        RegionId(0),
        Direction::Egress,
        Rate::gbps(900.0),
        (1..=6).map(RegionId),
    );
    let mut group = c.benchmark_group("selection_srlg");
    group.sample_size(10);
    group.bench_function("greedy_select_500c_200p", |b| {
        b.iter(|| {
            greedy_select(
                &hose,
                50,
                0.9,
                &SelectConfig {
                    candidates: 500,
                    probes: 200,
                    ..Default::default()
                },
            )
        })
    });
    let topo = BackboneSpec::small(41).build();
    group.bench_function("srlg_synthesize_and_enumerate", |b| {
        b.iter(|| {
            let map = SrlgMap::synthesize(&topo, 0.5, 7);
            map.enumerate(&topo, 2)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_segmentation,
    bench_tm_generation,
    bench_risk,
    bench_approval,
    bench_selection_and_srlg
);
criterion_main!(benches);
