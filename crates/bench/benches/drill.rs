//! Criterion benches for the end-to-end simulations: the §6 drill
//! (Figs 11–17) and the §2.2 incident (Figs 4–5), at several fleet
//! sizes — these are the figure-regeneration pipelines themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use entitlement_bench::experiments;
use entitlement_enforcement::drill::{run_drill, DrillConfig};
use entitlement_enforcement::MarkingStrategy;

fn bench_drill(c: &mut Criterion) {
    let mut group = c.benchmark_group("drill");
    group.sample_size(10);
    for hosts in [200usize, 1000] {
        group.bench_with_input(BenchmarkId::new("full_timeline", hosts), &hosts, |b, &hosts| {
            b.iter(|| {
                run_drill(&DrillConfig {
                    hosts,
                    ..Default::default()
                })
            })
        });
    }
    group.bench_function("flow_based_ablation", |b| {
        b.iter(|| {
            run_drill(&DrillConfig {
                hosts: 200,
                strategy: MarkingStrategy::FlowBased,
                ..Default::default()
            })
        })
    });
    group.finish();
}

fn bench_incident(c: &mut Criterion) {
    let mut group = c.benchmark_group("incident");
    group.sample_size(10);
    group.bench_function("two_class_2h", |b| {
        b.iter(|| experiments::incident::run(5))
    });
    group.finish();
}

fn bench_marking_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("marking_convergence");
    group.bench_function("both_algorithms_5_losses", |b| {
        b.iter(|| experiments::marking::run(50))
    });
    group.finish();
}

fn bench_netfluid_and_multidrill(c: &mut Criterion) {
    use entitlement_core::{NpgId, QosClass, Rate};
    use entitlement_enforcement::multidrill::{run_multi_drill, MultiDrillConfig, ServiceSpec};
    use entitlement_simnet::netfluid::{NetWorld, NetWorldConfig, ServiceFlow};
    use entitlement_topology::BackboneSpec;
    use entitlement_workload::TrafficPattern;

    let mut group = c.benchmark_group("fleet_simulations");
    group.sample_size(10);

    let topo = BackboneSpec::default().build();
    let dcs = topo.dc_ids();
    let flows: Vec<ServiceFlow> = dcs
        .iter()
        .zip(dcs.iter().cycle().skip(3))
        .take(20)
        .enumerate()
        .map(|(i, (&s, &d))| ServiceFlow {
            npg: NpgId((i % 4) as u32),
            qos: QosClass::C2,
            src: s,
            dst: d,
            base_rate: Rate::gbps(300.0),
            pattern: TrafficPattern::Flat,
        })
        .filter(|f| f.src != f.dst)
        .collect();
    group.bench_function("netfluid_120_ticks", |b| {
        b.iter(|| {
            let mut net =
                NetWorld::new(topo.clone(), flows.clone(), NetWorldConfig::default()).unwrap();
            for k in 0..120 {
                net.step(k as f64 * 30.0);
            }
        })
    });

    let services: Vec<ServiceSpec> = (0..8)
        .map(|i| ServiceSpec {
            npg: NpgId(i),
            base_rate: Rate::tbps(1.5),
            pattern: TrafficPattern::Flat,
            entitled: Rate::tbps(1.0),
            hosts: 500,
        })
        .collect();
    group.bench_function("multidrill_8_services_1h", |b| {
        b.iter(|| run_multi_drill(&services, &MultiDrillConfig::default()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_drill,
    bench_incident,
    bench_marking_convergence,
    bench_netfluid_and_multidrill
);
criterion_main!(benches);
