//! Criterion benches for the enforcement hot paths: the per-packet
//! classifier (the simulated BPF program), metering updates, marking
//! command construction, and KV-store aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use entitlement_core::{NpgId, QosClass, Rate};
use entitlement_enforcement::bpf::{ClassifyInput, MarkingTable};
use entitlement_enforcement::{Marker, MarkingStrategy, Meter, StatefulMeter, StatelessMeter};
use entitlement_kvstore::{ShardedStore, StoreConfig};

fn bench_classify(c: &mut Criterion) {
    let mut table = MarkingTable::new();
    table.set_host_cut(NpgId(1), QosClass::C2, 30);
    table.set_flow_cut(NpgId(1), QosClass::C1, 10);
    let mut i = 0u8;
    c.bench_function("bpf_classify", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            table.classify(ClassifyInput {
                npg: NpgId(1),
                qos: if i.is_multiple_of(2) { QosClass::C1 } else { QosClass::C2 },
                flow_group: i % 100,
                host_group: i.wrapping_mul(7) % 100,
            })
        })
    });
}

fn bench_metering(c: &mut Criterion) {
    let mut group = c.benchmark_group("metering");
    let mut stateless = StatelessMeter::new();
    let mut stateful = StatefulMeter::new();
    group.bench_function("stateless_update", |b| {
        b.iter(|| stateless.update(Rate::tbps(6.0), Rate::tbps(5.5), Rate::tbps(5.0)))
    });
    group.bench_function("stateful_update", |b| {
        b.iter(|| stateful.update(Rate::tbps(6.0), Rate::tbps(5.5), Rate::tbps(5.0)))
    });
    group.finish();
}

fn bench_marking(c: &mut Criterion) {
    let mut group = c.benchmark_group("marking_command");
    for hosts in [1_000usize, 10_000, 100_000] {
        let marker = Marker::new(MarkingStrategy::HostBased);
        group.bench_with_input(BenchmarkId::new("host_based", hosts), &hosts, |b, &hosts| {
            b.iter(|| marker.command(0.7, hosts))
        });
    }
    group.finish();
}

fn bench_kvstore(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvstore");
    for agents in [100usize, 1000, 10_000] {
        let store = ShardedStore::new(StoreConfig::default());
        for h in 0..agents {
            store.put(&format!("rates/svc/total/h{h}"), 1e9, 0);
        }
        group.bench_with_input(
            BenchmarkId::new("aggregate_sum", agents),
            &store,
            |b, store| b.iter(|| store.aggregate_sum("rates/svc/total/", 100)),
        );
    }
    let store = ShardedStore::new(StoreConfig::default());
    let mut h = 0u64;
    group.bench_function("put", |b| {
        b.iter(|| {
            h = h.wrapping_add(1);
            store.put(&format!("rates/svc/total/h{}", h % 10_000), 1e9, h);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_classify,
    bench_metering,
    bench_marking,
    bench_kvstore
);
criterion_main!(benches);
