//! Risk-sweep throughput: serial vs parallel vs dedup+parallel.
//!
//! Two angles on the same knobs:
//!
//! * `fig22_pipeline` — the end-to-end approval-SLO experiment behind
//!   `repro fig22`, swept with each `(workers, dedup)` combination. The
//!   pipeline enumerates distinct fiber cuts, so the gain here is the
//!   thread fan-out (plus the removal of the per-scenario topology
//!   clone, which every combination enjoys).
//! * `monte_carlo_sweep` — `assess_risk` on a Monte-Carlo scenario set,
//!   where most draws repeat the same few failure sets and dedup routes
//!   an order of magnitude fewer scenarios. `seed-style` reproduces the
//!   pre-overlay code path (clone the topology and rewrite capacities
//!   for every scenario) as the baseline the speedup is measured from.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use entitlement_bench::experiments::approval_slo;
use entitlement_core::Rate;
use entitlement_risk::curve::AvailabilityCurve;
use entitlement_risk::{assess_risk, RiskConfig};
use entitlement_topology::routing::Demand;
use entitlement_topology::{route_matrix, BackboneSpec, ScenarioSet, Topology};

const FIG22_TARGETS: &[f64] = &[0.9, 0.99, 0.9995];

fn bench_fig22(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig22_pipeline");
    group.sample_size(10);
    for (label, workers, dedup) in [
        ("serial", 1usize, false),
        ("parallel-8", 8, false),
        ("dedup+parallel-8", 8, true),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(approval_slo::run_with_sweep(
                    FIG22_TARGETS,
                    0.45,
                    0x22,
                    workers,
                    dedup,
                ))
            })
        });
    }
    group.finish();
}

/// The pre-overlay sweep, kept verbatim as the speedup baseline: route
/// the background, clone the whole topology, rewrite its capacities,
/// and route the batch on the clone — once per scenario, no dedup.
fn seed_style_assess(
    topo: &Topology,
    demands: &[Demand],
    scenarios: &ScenarioSet,
    background: &[Demand],
    k_paths: usize,
) -> Vec<AvailabilityCurve> {
    let mut samples: Vec<Vec<(Rate, f64)>> =
        vec![Vec::with_capacity(scenarios.len()); demands.len()];
    for scenario in &scenarios.scenarios {
        let bg = route_matrix(topo, background, &scenario.dead_links, k_paths);
        let mut residual_topo = topo.clone();
        residual_topo.apply_residual(&bg.residual);
        let outcome = route_matrix(&residual_topo, demands, &scenario.dead_links, k_paths);
        for (i, &a) in outcome.admitted.iter().enumerate() {
            samples[i].push((a, scenario.probability));
        }
    }
    samples
        .into_iter()
        .map(AvailabilityCurve::from_samples)
        .collect()
}

fn bench_monte_carlo(c: &mut Criterion) {
    let topo = BackboneSpec::small(41).build();
    let ids = topo.region_ids();
    let background = vec![Demand {
        src: ids[0],
        dst: ids[2],
        amount: Rate::tbps(4.0),
    }];
    let demands: Vec<Demand> = ids
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, &dst)| Demand {
            src: ids[0],
            dst,
            amount: Rate::gbps(40.0 * i as f64),
        })
        .collect();
    let scenarios = ScenarioSet::sample(&topo, 2000, 0x515);

    let mut group = c.benchmark_group("monte_carlo_sweep");
    group.sample_size(10);
    group.bench_function("seed-style", |b| {
        b.iter(|| {
            black_box(seed_style_assess(
                &topo, &demands, &scenarios, &background, 4,
            ))
        })
    });
    for (label, workers, dedup) in [
        ("serial", 1usize, false),
        ("parallel-8", 8, false),
        ("dedup+parallel-8", 8, true),
    ] {
        let config = RiskConfig {
            k_paths: 4,
            background: background.clone(),
            workers,
            dedup,
        };
        group.bench_function(label, |b| {
            b.iter(|| black_box(assess_risk(&topo, &demands, &scenarios, &config)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig22, bench_monte_carlo);
criterion_main!(benches);
