//! entitlement-racecheck: a deterministic concurrency verifier for the
//! fleet/KV enforcement runtime.
//!
//! The paper's enforcement story (§6) only holds if the parallel
//! runtime — shard partials batch-published to the KV store, folded by
//! the driver, broadcast to metering agents — is schedule-independent:
//! every interleaving must produce the same f64 bits the deterministic
//! engine produces. This crate verifies that, statically-ish, with
//! three pieces:
//!
//! - [`session`]: vector-clock happens-before tracking. Every tracked
//!   access is checked against prior conflicting accesses; unordered
//!   conflicts are `R0101` races. Locks get order/deadlock checks
//!   (`R0104`).
//! - [`sync`]: instrumented shims over the runtime's primitives
//!   (atomics, `parking_lot`-style mutexes, tokio `watch` channels).
//!   Feature `instrument` turns recording on; without it every shim is
//!   a re-export/type alias of the real primitive — zero cost, so
//!   production builds are untouched.
//! - [`sched`]: a controlled scheduler replaying protocol models under
//!   seeded-random and bounded-exhaustive (sleep-set pruned, DPOR-style)
//!   interleavings, asserting bit-exact outcome equality against the
//!   canonical schedule on every run (`R0102`/`R0103` on divergence).
//!
//! Findings render through the `analyzer` diagnostics model
//! ([`report`]), so `R0101`–`R0104` behave exactly like the `E`-code
//! families: stable codes, text and JSON renderers, CI-greppable.
//!
//! The fleet protocol harness itself lives in
//! `entitlement-enforcement` (`enforcement::verify`), which builds its
//! model against the *real* shard fold, KV store, and meter functions;
//! this crate only provides the verification substrate.

#![forbid(unsafe_code)]

pub mod report;
pub mod sched;
pub mod session;
pub mod sync;
pub mod vclock;

pub use report::VerifyOutcome;
pub use sched::{
    explore_exhaustive, explore_random, fnv1a_bits, DivergenceCode, Exploration, OutcomeSlot,
    ProtocolRun, Step,
};
pub use session::{AccessMode, Race, RaceKind, Session};
pub use vclock::VClock;
