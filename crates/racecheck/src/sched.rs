//! The controlled scheduler: replay a protocol of logical tasks under
//! chosen interleavings and check every schedule's outcome and
//! happens-before graph.
//!
//! A protocol is a fixed set of tasks, each a sequence of [`Step`]s. A
//! step declares its sync behavior (`awaits`/`signals` over named
//! events, `locks`/`unlocks`), its tracked memory footprint
//! (`reads`/`writes` over named locations), and an action closure that
//! performs the real work against shared state. Steps are the atomicity
//! granularity: the scheduler interleaves *between* steps, never inside
//! one.
//!
//! Because runs mutate real state, the explorer never rewinds — it
//! rebuilds the protocol from a factory closure and replays a prefix
//! for every schedule explored. On small configs (the 2–4 shard × 2–3
//! worker protocols this crate targets) that is microseconds per
//! schedule.
//!
//! Exhaustive mode is a DFS over the schedule tree with sleep-set
//! pruning (classic stateless model checking à la DPOR): after
//! exploring task `t` from a node, siblings that are *independent* of
//! `t` (disjoint footprints, no shared sync) are put to sleep for the
//! subtree rooted at the next sibling, cutting commuting permutations
//! without losing any distinguishable schedule.

use crate::session::{Race, Session};
use entitlement_core::DetRng;
use std::collections::BTreeSet;

/// Which diagnostic a diverging outcome slot maps to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceCode {
    /// R0102: the slot is an order-sensitive float fold.
    FloatFold,
    /// R0103: the slot is a protocol outcome that must match the
    /// deterministic reference on every schedule.
    ScheduleDivergence,
}

/// One named f64-bit (or hash) outcome of a completed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutcomeSlot {
    /// Stable slot name, e.g. `fold/total`.
    pub label: String,
    /// Exact bits (f64 `to_bits` or a hash of a vector of them).
    pub bits: u64,
    /// Which code fires if this slot diverges across schedules.
    pub code: DivergenceCode,
}

/// One step of one task. Built with the chainable constructors:
///
/// ```
/// # use entitlement_racecheck::sched::Step;
/// let step = Step::new("c0/publish/s1")
///     .reads("partial/s1")
///     .writes("kv/s1")
///     .signals("c0/pub/s1")
///     .run(|| { /* publish the partial */ });
/// ```
pub struct Step {
    /// Display label, also used as the access label in race reports.
    pub label: String,
    /// Events that must have been signaled before this step is enabled.
    pub awaits: Vec<String>,
    /// Events signaled (with a release edge) after the step runs.
    pub signals: Vec<String>,
    /// Locks acquired before the action.
    pub locks: Vec<String>,
    /// Locks released after the action.
    pub unlocks: Vec<String>,
    /// Tracked locations read.
    pub reads: Vec<String>,
    /// Tracked locations written.
    pub writes: Vec<String>,
    action: Option<Box<dyn FnMut()>>,
}

impl Step {
    /// A step with the given label and empty footprint.
    pub fn new(label: impl Into<String>) -> Step {
        Step {
            label: label.into(),
            awaits: Vec::new(),
            signals: Vec::new(),
            locks: Vec::new(),
            unlocks: Vec::new(),
            reads: Vec::new(),
            writes: Vec::new(),
            action: None,
        }
    }

    /// Block until `event` has been signaled; acquire its edge.
    pub fn awaits(mut self, event: impl Into<String>) -> Step {
        self.awaits.push(event.into());
        self
    }

    /// Signal `event` after running; release edge.
    pub fn signals(mut self, event: impl Into<String>) -> Step {
        self.signals.push(event.into());
        self
    }

    /// Acquire `lock` for the duration of the step.
    pub fn locks(mut self, lock: impl Into<String>) -> Step {
        let name = lock.into();
        self.locks.push(name.clone());
        self.unlocks.push(name);
        self
    }

    /// Declare a tracked read of `loc`.
    pub fn reads(mut self, loc: impl Into<String>) -> Step {
        self.reads.push(loc.into());
        self
    }

    /// Declare a tracked write of `loc`.
    pub fn writes(mut self, loc: impl Into<String>) -> Step {
        self.writes.push(loc.into());
        self
    }

    /// Attach the action closure.
    pub fn run(mut self, f: impl FnMut() + 'static) -> Step {
        self.action = Some(Box::new(f));
        self
    }

    fn meta(&self) -> StepMeta {
        StepMeta {
            awaits: self.awaits.clone(),
            signals: self.signals.clone(),
            locks: self.locks.clone(),
            unlocks: self.unlocks.clone(),
            reads: self.reads.clone(),
            writes: self.writes.clone(),
        }
    }
}

/// Step metadata without the action: what the explorer needs to decide
/// independence.
#[derive(Clone, Debug)]
struct StepMeta {
    awaits: Vec<String>,
    signals: Vec<String>,
    locks: Vec<String>,
    unlocks: Vec<String>,
    reads: Vec<String>,
    writes: Vec<String>,
}

/// Two steps commute iff they touch disjoint tracked state: no
/// write/any overlap, no signal/await-or-signal overlap, no shared
/// lock. Conservative: anything shared counts as dependent.
fn independent(a: &StepMeta, b: &StepMeta) -> bool {
    let overlap = |xs: &[String], ys: &[String]| xs.iter().any(|x| ys.contains(x));
    let a_rw: Vec<String> = a.reads.iter().chain(&a.writes).cloned().collect();
    let b_rw: Vec<String> = b.reads.iter().chain(&b.writes).cloned().collect();
    if overlap(&a.writes, &b_rw) || overlap(&b.writes, &a_rw) {
        return false;
    }
    let a_sync: Vec<String> = a.awaits.iter().chain(&a.signals).cloned().collect();
    let b_sync: Vec<String> = b.awaits.iter().chain(&b.signals).cloned().collect();
    if overlap(&a.signals, &b_sync) || overlap(&b.signals, &a_sync) {
        return false;
    }
    let a_locks: Vec<String> = a.locks.iter().chain(&a.unlocks).cloned().collect();
    let b_locks: Vec<String> = b.locks.iter().chain(&b.unlocks).cloned().collect();
    !overlap(&a_locks, &b_locks)
}

/// A buildable instance of the protocol: tasks plus the outcome probe
/// run after the schedule completes.
pub struct ProtocolRun {
    /// One step sequence per logical task.
    pub tasks: Vec<Vec<Step>>,
    /// Reads the shared state into labeled outcome bits.
    pub outcome: Box<dyn FnMut() -> Vec<OutcomeSlot>>,
}

/// The result of executing one complete schedule.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Task ids in execution order.
    pub schedule: Vec<usize>,
    /// Outcome slots (empty if the schedule deadlocked).
    pub outcome: Vec<OutcomeSlot>,
    /// Races found by the session during this run.
    pub races: Vec<Race>,
    /// True if the run wedged before all tasks finished.
    pub deadlocked: bool,
}

/// Snapshot of the scheduler frontier right after a replayed prefix.
struct Node {
    enabled: Vec<usize>,
    meta: Vec<Option<StepMeta>>,
}

enum Tail<'a> {
    /// Stop at the end of the prefix (DFS interior/leaf probe).
    Stop,
    /// After the prefix, always run the lowest-numbered enabled task
    /// (the canonical reference schedule).
    Canonical,
    /// After the prefix, pick uniformly with the given rng.
    Random(&'a mut DetRng),
}

/// Execute `run`, following `prefix` exactly, then continuing per
/// `tail`. Returns the (possibly partial, for [`Tail::Stop`]) result
/// plus the frontier at the end of the prefix.
fn execute(mut run: ProtocolRun, prefix: &[usize], mut tail: Tail<'_>) -> (RunResult, Node) {
    let n = run.tasks.len();
    let session = Session::new(n);
    let _guard = session.install();
    let mut pcs = vec![0usize; n];
    let mut signaled: BTreeSet<String> = BTreeSet::new();
    let mut schedule = Vec::new();
    let mut node: Option<Node> = None;
    let mut deadlocked = false;
    let mut complete = false;

    loop {
        let enabled: Vec<usize> = (0..n)
            .filter(|&t| {
                pcs[t] < run.tasks[t].len()
                    && run.tasks[t][pcs[t]]
                        .awaits
                        .iter()
                        .all(|a| signaled.contains(a))
            })
            .collect();

        if schedule.len() == prefix.len() && node.is_none() {
            node = Some(Node {
                enabled: enabled.clone(),
                meta: (0..n)
                    .map(|t| run.tasks[t].get(pcs[t]).map(Step::meta))
                    .collect(),
            });
            if matches!(tail, Tail::Stop) && !enabled.is_empty() {
                break;
            }
        }

        if enabled.is_empty() {
            complete = pcs
                .iter()
                .zip(&run.tasks)
                .all(|(pc, steps)| *pc == steps.len());
            if !complete {
                deadlocked = true;
                let stuck: Vec<String> = (0..n)
                    .filter(|&t| pcs[t] < run.tasks[t].len())
                    .map(|t| run.tasks[t][pcs[t]].label.clone())
                    .collect();
                session.report_deadlock(&format!(
                    "no step enabled; blocked on {}",
                    stuck.join(", ")
                ));
            }
            break;
        }

        let t = if schedule.len() < prefix.len() {
            let want = prefix[schedule.len()];
            assert!(
                enabled.contains(&want),
                "schedule prefix replay diverged: task {want} not enabled"
            );
            want
        } else {
            match &mut tail {
                Tail::Stop => unreachable!("handled above"),
                Tail::Canonical => enabled[0],
                Tail::Random(rng) => enabled[rng.usize(enabled.len())],
            }
        };

        schedule.push(t);
        let step = &mut run.tasks[t][pcs[t]];
        session.begin_step(t);
        for a in &step.awaits {
            session.acquire(a);
        }
        for l in &step.locks {
            session.lock(l);
        }
        for r in &step.reads {
            session.access(r, crate::session::AccessMode::Read, &step.label);
        }
        if let Some(f) = step.action.as_mut() {
            f();
        }
        for w in &step.writes {
            session.access(w, crate::session::AccessMode::Write, &step.label);
        }
        for u in &step.unlocks {
            session.unlock(u);
        }
        for sg in &step.signals {
            session.release(sg);
            signaled.insert(sg.clone());
        }
        pcs[t] += 1;
    }

    let outcome = if complete { (run.outcome)() } else { Vec::new() };
    let result = RunResult {
        schedule,
        outcome,
        races: session.races(),
        deadlocked,
    };
    let node = node.unwrap_or(Node {
        enabled: Vec::new(),
        meta: Vec::new(),
    });
    (result, node)
}

/// One outcome slot that differed from the reference schedule.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The slot label.
    pub slot: String,
    /// Which code this divergence maps to.
    pub code: DivergenceCode,
    /// Bits the canonical reference schedule produced.
    pub reference_bits: u64,
    /// Bits the diverging schedule produced.
    pub observed_bits: u64,
    /// The diverging schedule (task ids in order).
    pub schedule: Vec<usize>,
}

/// Everything an exploration found.
#[derive(Debug)]
pub struct Exploration {
    /// Complete schedules executed.
    pub schedules: usize,
    /// Subtrees skipped by sleep-set pruning.
    pub pruned: u64,
    /// True if the schedule cap stopped the search early.
    pub capped: bool,
    /// Outcome of the canonical (lowest-enabled-first) schedule.
    pub reference: Vec<OutcomeSlot>,
    /// Deduplicated races across all schedules.
    pub races: Vec<Race>,
    /// Deduplicated outcome divergences across all schedules.
    pub divergences: Vec<Divergence>,
}

struct Accumulator {
    schedules: usize,
    pruned: u64,
    capped: bool,
    max_schedules: usize,
    reference: Vec<OutcomeSlot>,
    races: Vec<Race>,
    race_keys: BTreeSet<String>,
    divergences: Vec<Divergence>,
    divergence_keys: BTreeSet<String>,
}

impl Accumulator {
    fn absorb(&mut self, result: &RunResult) {
        self.schedules += 1;
        for race in &result.races {
            let key = format!("{:?}|{}|{}", race.kind, race.location, race.message);
            if self.race_keys.insert(key) {
                self.races.push(race.clone());
            }
        }
        if result.deadlocked {
            return;
        }
        assert_eq!(
            result.outcome.len(),
            self.reference.len(),
            "outcome slot count must be schedule-independent"
        );
        for (slot, reference) in result.outcome.iter().zip(&self.reference) {
            if slot.bits != reference.bits {
                let key = format!("{}|{:x}", slot.label, slot.bits);
                if self.divergence_keys.insert(key) {
                    self.divergences.push(Divergence {
                        slot: slot.label.clone(),
                        code: slot.code,
                        reference_bits: reference.bits,
                        observed_bits: slot.bits,
                        schedule: result.schedule.clone(),
                    });
                }
            }
        }
    }

    fn finish(self) -> Exploration {
        Exploration {
            schedules: self.schedules,
            pruned: self.pruned,
            capped: self.capped,
            reference: self.reference,
            races: self.races,
            divergences: self.divergences,
        }
    }
}

fn new_accumulator<F>(factory: &F, max_schedules: usize) -> Accumulator
where
    F: Fn() -> ProtocolRun,
{
    let (reference, _) = execute(factory(), &[], Tail::Canonical);
    let mut acc = Accumulator {
        schedules: 0,
        pruned: 0,
        capped: false,
        max_schedules,
        reference: reference.outcome.clone(),
        races: Vec::new(),
        race_keys: BTreeSet::new(),
        divergences: Vec::new(),
        divergence_keys: BTreeSet::new(),
    };
    acc.absorb(&reference);
    acc
}

/// Bounded-exhaustive exploration with sleep-set pruning. Explores
/// every schedule up to `max_schedules` complete runs (sets `capped`
/// if the bound was hit).
pub fn explore_exhaustive<F>(factory: &F, max_schedules: usize) -> Exploration
where
    F: Fn() -> ProtocolRun,
{
    let mut acc = new_accumulator(factory, max_schedules);
    // The canonical reference already counted one schedule; the DFS
    // will re-reach the canonical leaf, so reset the counter.
    acc.schedules = 0;
    let mut prefix = Vec::new();
    dfs(factory, &mut prefix, &BTreeSet::new(), &mut acc);
    acc.finish()
}

fn dfs<F>(factory: &F, prefix: &mut Vec<usize>, sleep: &BTreeSet<usize>, acc: &mut Accumulator)
where
    F: Fn() -> ProtocolRun,
{
    if acc.schedules >= acc.max_schedules {
        acc.capped = true;
        return;
    }
    let (result, node) = execute(factory(), prefix, Tail::Stop);
    if node.enabled.is_empty() {
        // The prefix is a complete (or deadlocked) schedule.
        acc.absorb(&result);
        return;
    }
    let mut explored: Vec<usize> = Vec::new();
    for &t in &node.enabled {
        if sleep.contains(&t) {
            acc.pruned += 1;
            continue;
        }
        let t_meta = node.meta[t].as_ref().expect("enabled task has a next step");
        let child_sleep: BTreeSet<usize> = sleep
            .iter()
            .chain(&explored)
            .copied()
            .filter(|&u| {
                node.meta[u]
                    .as_ref()
                    .is_some_and(|u_meta| independent(u_meta, t_meta))
            })
            .collect();
        prefix.push(t);
        dfs(factory, prefix, &child_sleep, acc);
        prefix.pop();
        explored.push(t);
        if acc.capped {
            return;
        }
    }
}

/// Seeded-random exploration: `count` schedules drawn with a
/// [`DetRng`] forked per run from `seed` (plus the canonical
/// reference, which is always schedule 0).
pub fn explore_random<F>(factory: &F, seed: u64, count: usize) -> Exploration
where
    F: Fn() -> ProtocolRun,
{
    let mut acc = new_accumulator(factory, usize::MAX);
    let mut root = DetRng::new(seed);
    for i in 0..count {
        let mut rng = root.fork(i as u64);
        let (result, _) = execute(factory(), &[], Tail::Random(&mut rng));
        acc.absorb(&result);
    }
    acc.finish()
}

/// Hash a sequence of f64 bit patterns into one outcome word (FNV-1a),
/// for slots that summarize a vector (e.g. all hosts' conform rates).
pub fn fnv1a_bits(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

// Re-exported for harness builders.
pub use crate::session::RaceKind;

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Two tasks each increment a shared cell without synchronization.
    fn racy_counter() -> ProtocolRun {
        let cell = Rc::new(RefCell::new(0u64));
        let mk = |name: &str, cell: &Rc<RefCell<u64>>| {
            let cell = Rc::clone(cell);
            Step::new(name)
                .reads("cell")
                .writes("cell")
                .run(move || *cell.borrow_mut() += 1)
        };
        let tasks = vec![vec![mk("t0/inc", &cell)], vec![mk("t1/inc", &cell)]];
        let outcome_cell = Rc::clone(&cell);
        ProtocolRun {
            tasks,
            outcome: Box::new(move || {
                vec![OutcomeSlot {
                    label: "cell".to_string(),
                    bits: *outcome_cell.borrow(),
                    code: DivergenceCode::ScheduleDivergence,
                }]
            }),
        }
    }

    /// Same shape, but the second increment awaits the first's signal.
    fn ordered_counter() -> ProtocolRun {
        let cell = Rc::new(RefCell::new(0u64));
        let c0 = Rc::clone(&cell);
        let c1 = Rc::clone(&cell);
        let tasks = vec![
            vec![Step::new("t0/inc")
                .reads("cell")
                .writes("cell")
                .signals("done0")
                .run(move || *c0.borrow_mut() += 1)],
            vec![Step::new("t1/inc")
                .awaits("done0")
                .reads("cell")
                .writes("cell")
                .run(move || *c1.borrow_mut() += 1)],
        ];
        let outcome_cell = Rc::clone(&cell);
        ProtocolRun {
            tasks,
            outcome: Box::new(move || {
                vec![OutcomeSlot {
                    label: "cell".to_string(),
                    bits: *outcome_cell.borrow(),
                    code: DivergenceCode::ScheduleDivergence,
                }]
            }),
        }
    }

    /// An order-sensitive f64 fold: each task adds its value to an
    /// accumulator in arrival order; catastrophic cancellation makes
    /// the bit pattern schedule-dependent.
    fn arrival_order_fold() -> ProtocolRun {
        let acc = Rc::new(RefCell::new(0.0f64));
        let values = [1e16, 1.0, -1e16];
        let tasks: Vec<Vec<Step>> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let acc = Rc::clone(&acc);
                vec![Step::new(format!("t{i}/add"))
                    .reads("acc")
                    .writes("acc")
                    .run(move || *acc.borrow_mut() += v)]
            })
            .collect();
        let outcome_acc = Rc::clone(&acc);
        ProtocolRun {
            tasks,
            outcome: Box::new(move || {
                vec![OutcomeSlot {
                    label: "acc".to_string(),
                    bits: outcome_acc.borrow().to_bits(),
                    code: DivergenceCode::FloatFold,
                }]
            }),
        }
    }

    #[test]
    fn exhaustive_finds_the_unsynchronized_race() {
        let out = explore_exhaustive(&racy_counter, 1_000);
        assert!(
            out.races
                .iter()
                .any(|r| r.kind == RaceKind::ConflictingAccess),
            "{out:?}"
        );
        // Both increments still land (the actions are real), so the
        // outcome itself does not diverge here.
        assert!(out.divergences.is_empty());
        assert_eq!(out.schedules, 2);
    }

    #[test]
    fn exhaustive_passes_the_ordered_protocol() {
        let out = explore_exhaustive(&ordered_counter, 1_000);
        assert!(out.races.is_empty(), "{:?}", out.races);
        assert!(out.divergences.is_empty());
        assert_eq!(out.schedules, 1, "await collapses the tree");
    }

    #[test]
    fn float_fold_divergence_fires_r0102_slot() {
        let out = explore_exhaustive(&arrival_order_fold, 1_000);
        assert!(
            !out.divergences.is_empty(),
            "1e16 + 1 - 1e16 must be order-sensitive"
        );
        assert!(out
            .divergences
            .iter()
            .all(|d| d.code == DivergenceCode::FloatFold));
        // 3 unordered single-step tasks: 3! = 6 schedules, some pruned
        // only if independent (they all conflict on `acc`, so none are).
        assert_eq!(out.schedules, 6);
        assert_eq!(out.pruned, 0);
    }

    #[test]
    fn sleep_sets_prune_independent_interleavings() {
        // Two tasks touching disjoint cells: both orders commute, so
        // sleep sets cut the second order.
        let mk = || {
            let tasks = vec![
                vec![Step::new("t0").writes("a")],
                vec![Step::new("t1").writes("b")],
            ];
            ProtocolRun {
                tasks,
                outcome: Box::new(Vec::new),
            }
        };
        let out = explore_exhaustive(&mk, 1_000);
        assert!(out.races.is_empty());
        assert_eq!(out.schedules, 1, "commuting pair explored once");
        assert!(out.pruned >= 1);
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let mk = || {
            let tasks = vec![
                vec![Step::new("t0/wait").awaits("never")],
                vec![Step::new("t1/fine")],
            ];
            ProtocolRun {
                tasks,
                outcome: Box::new(Vec::new),
            }
        };
        let out = explore_exhaustive(&mk, 1_000);
        assert!(
            out.races.iter().any(|r| r.kind == RaceKind::Deadlock),
            "{out:?}"
        );
    }

    #[test]
    fn random_exploration_is_seed_deterministic() {
        let a = explore_random(&arrival_order_fold, 42, 32);
        let b = explore_random(&arrival_order_fold, 42, 32);
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.divergences.len(), b.divergences.len());
        assert!(!a.divergences.is_empty());
    }

    #[test]
    fn schedule_cap_reports_capped() {
        let out = explore_exhaustive(&arrival_order_fold, 2);
        assert!(out.capped);
        assert!(out.schedules <= 2);
    }

    #[test]
    fn fnv_hash_distinguishes_orders() {
        let a = fnv1a_bits([1u64, 2, 3]);
        let b = fnv1a_bits([3u64, 2, 1]);
        assert_ne!(a, b);
    }
}
