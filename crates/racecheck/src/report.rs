//! Render an [`Exploration`] through the `analyzer` diagnostics model,
//! so racecheck findings carry the same stable codes, severities, and
//! text/JSON shapes as every other verifier in the workspace.
//!
//! Mapping: session races → `R0101` (conflicting access) / `R0104`
//! (lock-order inversion or deadlock); outcome divergences → `R0102`
//! (order-sensitive float fold) or `R0103` (protocol schedule
//! divergence), per the slot's declared [`DivergenceCode`].

use crate::sched::{DivergenceCode, Exploration};
use crate::session::RaceKind;
use entitlement_analyzer::{Code, Diagnostic, Location, Report};

/// A completed verification run: exploration statistics plus the
/// findings as an analyzer [`Report`].
#[derive(Debug)]
pub struct VerifyOutcome {
    /// Complete schedules executed.
    pub schedules: usize,
    /// Subtrees skipped by sleep-set pruning.
    pub pruned: u64,
    /// True if the schedule cap stopped an exhaustive search early.
    pub capped: bool,
    /// All findings, rendered with stable R-codes.
    pub report: Report,
}

impl VerifyOutcome {
    /// Build from a finished exploration.
    pub fn from_exploration(x: &Exploration) -> VerifyOutcome {
        let mut report = Report::default();
        for race in &x.races {
            let code = match race.kind {
                RaceKind::ConflictingAccess => Code::R0101,
                RaceKind::LockOrderInversion | RaceKind::Deadlock => Code::R0104,
            };
            report.diagnostics.push(Diagnostic::new(
                code,
                Location::root(&race.location),
                race.message.clone(),
            ));
        }
        for d in &x.divergences {
            let code = match d.code {
                DivergenceCode::FloatFold => Code::R0102,
                DivergenceCode::ScheduleDivergence => Code::R0103,
            };
            let schedule: Vec<String> = d.schedule.iter().map(ToString::to_string).collect();
            report.diagnostics.push(Diagnostic::new(
                code,
                Location::root(&d.slot),
                format!(
                    "schedule [{}] produced bits {:#018x}, deterministic reference {:#018x}",
                    schedule.join(","),
                    d.observed_bits,
                    d.reference_bits
                ),
            ));
        }
        VerifyOutcome {
            schedules: x.schedules,
            pruned: x.pruned,
            capped: x.capped,
            report,
        }
    }

    /// True when no finding fired.
    pub fn clean(&self) -> bool {
        self.report.diagnostics.is_empty()
    }

    /// One-line exploration summary (schedules, pruning, findings).
    pub fn summary(&self) -> String {
        format!(
            "explored {} schedule(s), pruned {} subtree(s){}; {} finding(s)",
            self.schedules,
            self.pruned,
            if self.capped { " [capped]" } else { "" },
            self.report.diagnostics.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{explore_exhaustive, DivergenceCode, OutcomeSlot, ProtocolRun, Step};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn racy() -> ProtocolRun {
        let cell = Rc::new(RefCell::new(0.0f64));
        let tasks = (0..2)
            .map(|i| {
                let cell = Rc::clone(&cell);
                vec![Step::new(format!("t{i}/add"))
                    .reads("cell")
                    .writes("cell")
                    .run(move || *cell.borrow_mut() += 1.0)]
            })
            .collect();
        let oc = Rc::clone(&cell);
        ProtocolRun {
            tasks,
            outcome: Box::new(move || {
                vec![OutcomeSlot {
                    label: "cell".to_string(),
                    bits: oc.borrow().to_bits(),
                    code: DivergenceCode::ScheduleDivergence,
                }]
            }),
        }
    }

    #[test]
    fn races_map_to_r0101_with_stable_rendering() {
        let out = VerifyOutcome::from_exploration(&explore_exhaustive(&racy, 100));
        assert!(!out.clean());
        let text = out.report.render_text();
        assert!(text.contains("error[R0101] cell:"), "{text}");
        assert!(out.report.render_json().contains("\"R0101\""));
        assert!(out.summary().contains("finding(s)"), "{}", out.summary());
    }

    #[test]
    fn clean_protocol_renders_clean() {
        let mk = || ProtocolRun {
            tasks: vec![vec![Step::new("only").writes("x")]],
            outcome: Box::new(Vec::new),
        };
        let out = VerifyOutcome::from_exploration(&explore_exhaustive(&mk, 100));
        assert!(out.clean());
        assert!(!out.report.has_errors());
    }
}
