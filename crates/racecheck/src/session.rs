//! A racecheck session: the happens-before state for one scheduled run.
//!
//! The scheduler drives a set of logical tasks; each task carries a
//! [`VClock`]. Sync objects (channels, locks, atomics used with
//! acquire/release orderings) carry a release clock; acquiring joins it
//! into the running task's clock. Every tracked memory access is
//! checked against the last conflicting accesses on the same location:
//! a conflicting pair not ordered by happens-before — where at least
//! one side is unsynchronized — is an `R0101` race.
//!
//! Atomic accesses with `Ordering::Relaxed` are deliberately treated as
//! *unsynchronized*: they are atomic at the ISA level but establish no
//! happens-before edge, which is exactly the bug class the X0202 lint
//! and the obs accumulator audit target (a Relaxed read-modify-write
//! can't order the data it guards). `Acquire`/`Release`/`AcqRel`/
//! `SeqCst` accesses are recorded as synchronized and create edges.
//!
//! The session is shared behind an `Rc` so the instrumented sync shims
//! (see [`crate::sync`]) can report into it via a thread-local handle
//! while the scheduler owns the run. This thread-local is the one
//! deliberate exception to the workspace "no globals" rule: it scopes
//! strictly to a verification run on the verifying thread and is never
//! consulted by production code paths.

use crate::vclock::VClock;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

/// What kind of concurrency defect a [`Race`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceKind {
    /// Two conflicting accesses unordered by happens-before (R0101).
    ConflictingAccess,
    /// Two locks acquired in opposite orders on different tasks (R0104).
    LockOrderInversion,
    /// A schedule wedged: unfinished tasks, none enabled (R0104).
    Deadlock,
}

/// One finding from a session, pre-rendering: the scheduler maps these
/// onto `analyzer` diagnostics in [`crate::report`].
#[derive(Clone, Debug)]
pub struct Race {
    /// Defect class.
    pub kind: RaceKind,
    /// The location (memory cell, lock pair, or protocol point).
    pub location: String,
    /// Human-readable description naming both sides.
    pub message: String,
}

/// How an access interacts with the happens-before graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessMode {
    /// Plain read: conflicts with writes.
    Read,
    /// Plain write: conflicts with everything.
    Write,
}

#[derive(Clone, Debug)]
struct Access {
    task: usize,
    clock: VClock,
    label: String,
    /// True when the access itself carries acquire/release semantics;
    /// two synchronized accesses never race even if unordered.
    synced: bool,
}

#[derive(Default)]
struct LocState {
    last_write: Option<Access>,
    /// Most recent read per task since the last write.
    reads: Vec<Access>,
}

struct State {
    tasks: usize,
    clocks: Vec<VClock>,
    current: usize,
    /// Release clock per sync object id.
    sync_vc: BTreeMap<String, VClock>,
    locs: BTreeMap<String, LocState>,
    /// Locks currently held, per task, in acquisition order.
    held: Vec<Vec<String>>,
    /// Observed lock-order edges `a → b`: `b` was acquired while `a`
    /// was held.
    lock_edges: BTreeMap<String, BTreeSet<String>>,
    races: Vec<Race>,
    race_keys: BTreeSet<String>,
    next_sync_id: u64,
}

/// Shared handle to one run's happens-before state.
#[derive(Clone)]
pub struct Session {
    state: Rc<RefCell<State>>,
}

thread_local! {
    static ACTIVE: RefCell<Option<Session>> = const { RefCell::new(None) };
}

/// Run `f` against the active session, if one is installed on this
/// thread. The instrumented shims call this on every operation; outside
/// a verification run it is a no-op returning `None`.
pub fn with_active<T>(f: impl FnOnce(&Session) -> T) -> Option<T> {
    ACTIVE.with(|slot| slot.borrow().as_ref().map(f))
}

/// RAII guard that uninstalls the thread-local session on drop, so a
/// panicking schedule can't leak state into the next run.
pub struct ActiveGuard {
    _private: (),
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        ACTIVE.with(|slot| slot.borrow_mut().take());
    }
}

impl Session {
    /// A fresh session over `tasks` logical tasks.
    pub fn new(tasks: usize) -> Session {
        Session {
            state: Rc::new(RefCell::new(State {
                tasks,
                clocks: (0..tasks).map(|_| VClock::new(tasks)).collect(),
                current: 0,
                sync_vc: BTreeMap::new(),
                locs: BTreeMap::new(),
                held: vec![Vec::new(); tasks],
                lock_edges: BTreeMap::new(),
                races: Vec::new(),
                race_keys: BTreeSet::new(),
                next_sync_id: 0,
            })),
        }
    }

    /// Install this session as the thread's active one so shims report
    /// into it. The returned guard uninstalls on drop.
    pub fn install(&self) -> ActiveGuard {
        ACTIVE.with(|slot| *slot.borrow_mut() = Some(self.clone()));
        ActiveGuard { _private: () }
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.state.borrow().tasks
    }

    /// Mark `task` as the one executing: its clock ticks (a new local
    /// event) and subsequent accesses/edges attribute to it.
    pub fn begin_step(&self, task: usize) {
        let mut s = self.state.borrow_mut();
        s.current = task;
        s.clocks[task].tick(task);
    }

    /// Allocate a process-unique id for a dynamically created sync
    /// object (channel, lock) so instrumented wrappers can name it.
    pub fn fresh_sync_id(&self) -> u64 {
        let mut s = self.state.borrow_mut();
        s.next_sync_id += 1;
        s.next_sync_id
    }

    /// Acquire edge: join the sync object's release clock into the
    /// current task's clock.
    pub fn acquire(&self, sync: &str) {
        let mut s = self.state.borrow_mut();
        let cur = s.current;
        if let Some(vc) = s.sync_vc.get(sync).cloned() {
            s.clocks[cur].join(&vc);
        }
    }

    /// Release edge: publish the current task's clock into the sync
    /// object (joining, so multiple releasers accumulate).
    pub fn release(&self, sync: &str) {
        let mut s = self.state.borrow_mut();
        let cur = s.current;
        let clock = s.clocks[cur].clone();
        s.sync_vc
            .entry(sync.to_string())
            .and_modify(|vc| vc.join(&clock))
            .or_insert(clock);
    }

    /// Record an unsynchronized access (plain memory semantics).
    pub fn access(&self, loc: &str, mode: AccessMode, label: &str) {
        self.access_inner(loc, mode, label, false);
    }

    /// Record an access that itself synchronizes (acquire/release
    /// atomics, channel internals): still conflict-checked against
    /// unsynchronized accesses, but two synced accesses never race.
    pub fn access_synced(&self, loc: &str, mode: AccessMode, label: &str) {
        self.access_inner(loc, mode, label, true);
    }

    fn access_inner(&self, loc: &str, mode: AccessMode, label: &str, synced: bool) {
        let mut s = self.state.borrow_mut();
        let cur = s.current;
        let clock = s.clocks[cur].clone();
        let access = Access {
            task: cur,
            clock,
            label: label.to_string(),
            synced,
        };

        // Collect race pairs first, then mutate, to keep the borrow
        // checker happy about `s`.
        let mut pairs: Vec<(String, String)> = Vec::new();
        {
            let st = s.locs.entry(loc.to_string()).or_default();
            if let Some(w) = &st.last_write {
                if conflicts(w, &access) {
                    pairs.push((w.label.clone(), access.label.clone()));
                }
            }
            if mode == AccessMode::Write {
                for r in &st.reads {
                    if conflicts(r, &access) {
                        pairs.push((r.label.clone(), access.label.clone()));
                    }
                }
                st.last_write = Some(access);
                st.reads.clear();
            } else {
                st.reads.retain(|r| r.task != cur);
                st.reads.push(access);
            }
        }
        for (a, b) in pairs {
            push_race(
                &mut s,
                RaceKind::ConflictingAccess,
                loc,
                &format!("unsynchronized conflicting access on `{loc}`: `{a}` vs `{b}` (no happens-before edge)"),
            );
        }
    }

    /// Record a lock acquisition: acquire edge plus lock-order
    /// bookkeeping. Acquiring `b` while holding `a` after some task
    /// acquired `a` while holding `b` is an R0104 inversion.
    pub fn lock(&self, lock_id: &str) {
        self.acquire(lock_id);
        let mut s = self.state.borrow_mut();
        let cur = s.current;
        let held = s.held[cur].clone();
        for h in &held {
            let inverted = s
                .lock_edges
                .get(lock_id)
                .is_some_and(|outs| outs.contains(h));
            if inverted {
                push_race(
                    &mut s,
                    RaceKind::LockOrderInversion,
                    lock_id,
                    &format!("lock-order inversion: `{h}` → `{lock_id}` here, `{lock_id}` → `{h}` elsewhere"),
                );
            }
            s.lock_edges
                .entry(h.clone())
                .or_default()
                .insert(lock_id.to_string());
        }
        s.held[cur].push(lock_id.to_string());
    }

    /// Record a lock release: release edge, drop from the held stack.
    pub fn unlock(&self, lock_id: &str) {
        self.release(lock_id);
        let mut s = self.state.borrow_mut();
        let cur = s.current;
        if let Some(pos) = s.held[cur].iter().rposition(|h| h == lock_id) {
            s.held[cur].remove(pos);
        }
    }

    /// Record a wedged schedule (the scheduler found unfinished tasks
    /// with nothing enabled).
    pub fn report_deadlock(&self, detail: &str) {
        let mut s = self.state.borrow_mut();
        push_race(
            &mut s,
            RaceKind::Deadlock,
            "schedule",
            &format!("deadlocked schedule: {detail}"),
        );
    }

    /// All findings so far, in discovery order.
    pub fn races(&self) -> Vec<Race> {
        self.state.borrow().races.clone()
    }
}

fn conflicts(prev: &Access, next: &Access) -> bool {
    prev.task != next.task
        && !(prev.synced && next.synced)
        && !prev.clock.le(&next.clock)
}

fn push_race(s: &mut State, kind: RaceKind, location: &str, message: &str) {
    let key = format!("{kind:?}|{location}|{message}");
    if s.race_keys.insert(key) {
        s.races.push(Race {
            kind,
            location: location.to_string(),
            message: message.to_string(),
        });
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("Session")
            .field("tasks", &s.tasks)
            .field("races", &s.races.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unordered_write_write_is_a_race() {
        let s = Session::new(2);
        s.begin_step(0);
        s.access("x", AccessMode::Write, "t0/store");
        s.begin_step(1);
        s.access("x", AccessMode::Write, "t1/store");
        let races = s.races();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::ConflictingAccess);
        assert!(races[0].message.contains("t0/store"));
    }

    #[test]
    fn release_acquire_orders_the_pair() {
        let s = Session::new(2);
        s.begin_step(0);
        s.access("x", AccessMode::Write, "t0/store");
        s.release("chan");
        s.begin_step(1);
        s.acquire("chan");
        s.access("x", AccessMode::Read, "t1/load");
        assert!(s.races().is_empty());
    }

    #[test]
    fn read_read_never_races() {
        let s = Session::new(2);
        s.begin_step(0);
        s.access("x", AccessMode::Read, "t0/load");
        s.begin_step(1);
        s.access("x", AccessMode::Read, "t1/load");
        assert!(s.races().is_empty());
    }

    #[test]
    fn synced_pair_is_not_a_race_but_mixed_is() {
        let s = Session::new(2);
        s.begin_step(0);
        s.access_synced("c", AccessMode::Write, "t0/release-store");
        s.begin_step(1);
        s.access_synced("c", AccessMode::Write, "t1/release-store");
        assert!(s.races().is_empty(), "two synced accesses never race");
        s.begin_step(0);
        s.access("c", AccessMode::Write, "t0/relaxed-rmw");
        assert_eq!(s.races().len(), 1, "relaxed side races the synced write");
    }

    #[test]
    fn same_task_accesses_never_race() {
        let s = Session::new(2);
        s.begin_step(0);
        s.access("x", AccessMode::Write, "a");
        s.begin_step(0);
        s.access("x", AccessMode::Write, "b");
        assert!(s.races().is_empty());
    }

    #[test]
    fn lock_order_inversion_detected() {
        let s = Session::new(2);
        s.begin_step(0);
        s.lock("A");
        s.lock("B"); // edge A → B
        s.unlock("B");
        s.unlock("A");
        s.begin_step(1);
        s.lock("B");
        s.lock("A"); // edge B → A: inversion
        let races = s.races();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::LockOrderInversion);
    }

    #[test]
    fn duplicate_findings_dedup() {
        let s = Session::new(2);
        s.begin_step(0);
        s.access("x", AccessMode::Write, "w0");
        s.begin_step(1);
        s.access("x", AccessMode::Write, "w1");
        s.begin_step(0);
        s.access("x", AccessMode::Write, "w0");
        // w1 vs w0 and w0 vs w1 render differently, but repeating the
        // identical pair does not grow the list.
        let n = s.races().len();
        s.begin_step(1);
        s.access("x", AccessMode::Write, "w1");
        assert_eq!(s.races().len(), n);
    }

    #[test]
    fn with_active_scopes_to_the_guard() {
        assert!(with_active(|_| ()).is_none());
        let s = Session::new(1);
        {
            let _guard = s.install();
            assert!(with_active(Session::tasks).is_some());
        }
        assert!(with_active(|_| ()).is_none());
    }
}
