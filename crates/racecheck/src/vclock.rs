//! Vector clocks over a fixed, small task universe.
//!
//! The verifier schedules a handful of logical tasks (workers, the
//! driver, meter chunks), so clocks are dense `Vec<u64>`s indexed by
//! task id rather than sparse maps. `a.le(&b)` is the happens-before
//! test: every event `a` has seen, `b` has seen too.

/// A dense vector clock: `clock[t]` counts events task `t` has
/// performed that this clock has observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VClock {
    slots: Vec<u64>,
}

impl VClock {
    /// The zero clock over `tasks` tasks.
    pub fn new(tasks: usize) -> VClock {
        VClock { slots: vec![0; tasks] }
    }

    /// Number of tasks this clock spans.
    pub fn tasks(&self) -> usize {
        self.slots.len()
    }

    /// The component for `task`.
    pub fn get(&self, task: usize) -> u64 {
        self.slots.get(task).copied().unwrap_or(0)
    }

    /// Advance `task`'s own component by one (a new local event).
    pub fn tick(&mut self, task: usize) {
        self.slots[task] += 1;
    }

    /// Pointwise max with `other` (acquire: absorb everything the
    /// releasing clock had seen).
    pub fn join(&mut self, other: &VClock) {
        for (mine, theirs) in self.slots.iter_mut().zip(&other.slots) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Happens-before-or-equal: every component of `self` is ≤ the
    /// matching component of `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.slots
            .iter()
            .zip(&other.slots)
            .all(|(mine, theirs)| mine <= theirs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clocks_are_ordered_both_ways() {
        let a = VClock::new(3);
        let b = VClock::new(3);
        assert!(a.le(&b) && b.le(&a));
    }

    #[test]
    fn tick_breaks_symmetry() {
        let mut a = VClock::new(2);
        a.tick(0);
        let b = VClock::new(2);
        assert!(b.le(&a));
        assert!(!a.le(&b));
    }

    #[test]
    fn join_orders_a_release_acquire_pair() {
        // Task 0 releases (its clock is published), task 1 acquires.
        let mut t0 = VClock::new(2);
        t0.tick(0);
        let mut t1 = VClock::new(2);
        t1.tick(1);
        // Concurrent before the join...
        assert!(!t0.le(&t1) && !t1.le(&t0));
        t1.join(&t0);
        // ...ordered after it.
        assert!(t0.le(&t1));
        assert_eq!(t1.get(0), 1);
        assert_eq!(t1.get(1), 1);
    }

    #[test]
    fn concurrent_clocks_are_incomparable() {
        let mut a = VClock::new(2);
        a.tick(0);
        let mut b = VClock::new(2);
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
    }
}
