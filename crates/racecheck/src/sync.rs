//! Instrumented sync shims: drop-in replacements for the primitives
//! the fleet/KV runtime synchronizes with.
//!
//! With the `instrument` feature **disabled** (the default) every name
//! here is a plain re-export or type alias of the underlying
//! std / `parking_lot` / `tokio` primitive — zero cost, zero behavior
//! change, so production builds are byte-identical to builds that never
//! heard of racecheck.
//!
//! With `instrument` **enabled**, each primitive is wrapped in a thin
//! shim with the same method surface that reports into the active
//! [`crate::session::Session`] (if any):
//!
//! - Atomics record an access per operation. `Relaxed` operations are
//!   recorded *unsynchronized* — atomic at the ISA level but carrying
//!   no happens-before edge — while `Acquire`/`Release`/`AcqRel`/
//!   `SeqCst` operations create the matching vector-clock edges and
//!   are recorded synchronized.
//! - Mutexes record lock/unlock (release-acquire edges plus lock-order
//!   bookkeeping for R0104).
//! - `watch` channels record a release edge on `send` and an acquire
//!   edge on `borrow`/`changed`.
//!
//! Outside an installed session every shim degrades to a pass-through.

#[cfg(not(feature = "instrument"))]
mod passthrough {
    /// Atomic types: plain std re-exports when not instrumenting.
    pub mod atomic {
        pub use std::sync::atomic::{AtomicU64, Ordering};
    }

    /// `parking_lot`-style mutex (infallible `lock()`).
    pub type Mutex<T> = parking_lot::Mutex<T>;
    /// Guard returned by [`Mutex::lock`].
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    /// Single-value broadcast channel: tokio's, untouched.
    pub mod watch {
        pub use tokio::sync::watch::{channel, Receiver, Ref, Sender};
    }
}

#[cfg(not(feature = "instrument"))]
pub use passthrough::*;

#[cfg(feature = "instrument")]
mod instrumented {
    use crate::session::with_active;

    fn acquires(order: std::sync::atomic::Ordering) -> bool {
        use std::sync::atomic::Ordering as O;
        matches!(order, O::Acquire | O::AcqRel | O::SeqCst)
    }

    fn releases(order: std::sync::atomic::Ordering) -> bool {
        use std::sync::atomic::Ordering as O;
        matches!(order, O::Release | O::AcqRel | O::SeqCst)
    }

    /// Instrumented atomics.
    pub mod atomic {
        use super::{acquires, releases};
        use crate::session::{with_active, AccessMode};

        pub use std::sync::atomic::Ordering;

        /// Shim over [`std::sync::atomic::AtomicU64`] reporting every
        /// operation to the active session.
        #[derive(Debug, Default)]
        pub struct AtomicU64 {
            inner: std::sync::atomic::AtomicU64,
        }

        impl AtomicU64 {
            /// Create with an initial value.
            pub const fn new(v: u64) -> AtomicU64 {
                AtomicU64 {
                    inner: std::sync::atomic::AtomicU64::new(v),
                }
            }

            fn loc(&self) -> String {
                format!("atomic@{:x}", std::ptr::from_ref(self) as usize)
            }

            fn record(&self, mode: AccessMode, order: Ordering, op: &str) {
                with_active(|s| {
                    let loc = self.loc();
                    if acquires(order) {
                        s.acquire(&loc);
                    }
                    let label = format!("{op}({order:?})");
                    if acquires(order) || releases(order) {
                        s.access_synced(&loc, mode, &label);
                    } else {
                        s.access(&loc, mode, &label);
                    }
                    if releases(order) {
                        s.release(&loc);
                    }
                });
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> u64 {
                self.record(AccessMode::Read, order, "load");
                self.inner.load(order)
            }

            /// Atomic store.
            pub fn store(&self, v: u64, order: Ordering) {
                self.record(AccessMode::Write, order, "store");
                self.inner.store(v, order);
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
                self.record(AccessMode::Write, order, "fetch_add");
                self.inner.fetch_add(v, order)
            }

            /// Compare-and-swap (weak, may spuriously fail).
            pub fn compare_exchange_weak(
                &self,
                current: u64,
                new: u64,
                success: Ordering,
                failure: Ordering,
            ) -> Result<u64, u64> {
                self.record(AccessMode::Write, success, "compare_exchange_weak");
                self.inner.compare_exchange_weak(current, new, success, failure)
            }

            /// Compare-and-swap (strong).
            pub fn compare_exchange(
                &self,
                current: u64,
                new: u64,
                success: Ordering,
                failure: Ordering,
            ) -> Result<u64, u64> {
                self.record(AccessMode::Write, success, "compare_exchange");
                self.inner.compare_exchange(current, new, success, failure)
            }
        }
    }

    /// Shim over [`parking_lot::Mutex`] recording lock/unlock edges.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: parking_lot::Mutex<T>,
    }

    /// Guard that records the unlock (release edge) on drop.
    pub struct MutexGuard<'a, T> {
        inner: std::sync::MutexGuard<'a, T>,
        id: String,
    }

    impl<T> Mutex<T> {
        /// Create a mutex.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: parking_lot::Mutex::new(value),
            }
        }

        /// Lock (infallible, parking_lot semantics), recording the
        /// acquire edge and lock-order bookkeeping.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let id = format!("mutex@{:x}", std::ptr::from_ref(self) as usize);
            with_active(|s| s.lock(&id));
            MutexGuard {
                inner: self.inner.lock(),
                id,
            }
        }

        /// Consume, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            with_active(|s| s.unlock(&self.id));
        }
    }

    /// Instrumented single-value broadcast channel.
    pub mod watch {
        use crate::session::{with_active, AccessMode};

        pub use tokio::sync::watch::{Ref, RecvError, SendError};

        static NEXT_CHANNEL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

        /// Sending half; `send` records a release edge.
        pub struct Sender<T> {
            inner: tokio::sync::watch::Sender<T>,
            id: String,
        }

        /// Receiving half; `borrow`/`changed` record acquire edges.
        pub struct Receiver<T> {
            inner: tokio::sync::watch::Receiver<T>,
            id: String,
        }

        /// Create a channel seeded with `initial`.
        pub fn channel<T>(initial: T) -> (Sender<T>, Receiver<T>) {
            let n = NEXT_CHANNEL.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
            let id = format!("watch#{n}");
            let (tx, rx) = tokio::sync::watch::channel(initial);
            (
                Sender {
                    inner: tx,
                    id: id.clone(),
                },
                Receiver { inner: rx, id },
            )
        }

        impl<T> Sender<T> {
            /// Publish a value, waking waiting receivers.
            pub fn send(&self, value: T) -> Result<(), SendError<T>> {
                with_active(|s| {
                    s.access_synced(&self.id, AccessMode::Write, "watch::send");
                    s.release(&self.id);
                });
                self.inner.send(value)
            }
        }

        impl<T> Clone for Receiver<T> {
            fn clone(&self) -> Self {
                Receiver {
                    inner: self.inner.clone(),
                    id: self.id.clone(),
                }
            }
        }

        impl<T> Receiver<T> {
            /// Latest value (acquire edge: everything released by the
            /// last `send` is now visible).
            pub fn borrow(&self) -> Ref<'_, T> {
                with_active(|s| {
                    s.acquire(&self.id);
                    s.access_synced(&self.id, AccessMode::Read, "watch::borrow");
                });
                self.inner.borrow()
            }

            /// Wait for a value newer than the last seen.
            pub async fn changed(&mut self) -> Result<(), RecvError> {
                let out = self.inner.changed().await;
                with_active(|s| {
                    s.acquire(&self.id);
                    s.access_synced(&self.id, AccessMode::Read, "watch::changed");
                });
                out
            }
        }
    }
}

#[cfg(feature = "instrument")]
pub use instrumented::*;

#[cfg(all(test, feature = "instrument"))]
mod tests {
    use super::atomic::{AtomicU64, Ordering};
    use crate::session::{RaceKind, Session};

    #[test]
    fn relaxed_rmw_races_across_tasks() {
        let s = Session::new(2);
        let _guard = s.install();
        let a = AtomicU64::new(0);
        s.begin_step(0);
        a.fetch_add(1, Ordering::Relaxed);
        s.begin_step(1);
        a.fetch_add(1, Ordering::Relaxed);
        let races = s.races();
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].kind, RaceKind::ConflictingAccess);
        assert_eq!(a.load(Ordering::Acquire), 2);
    }

    #[test]
    fn acqrel_rmw_is_clean_across_tasks() {
        let s = Session::new(2);
        let _guard = s.install();
        let a = AtomicU64::new(0);
        s.begin_step(0);
        a.fetch_add(1, Ordering::AcqRel);
        s.begin_step(1);
        a.fetch_add(1, Ordering::AcqRel);
        assert!(s.races().is_empty(), "{:?}", s.races());
    }

    #[test]
    fn acqrel_cas_loop_orders_a_dependent_read() {
        // The obs `fold_bits` shape: task 0 CAS-publishes, task 1
        // acquires by loading, then reads derived plain state.
        let s = Session::new(2);
        let _guard = s.install();
        let a = AtomicU64::new(0);
        s.begin_step(0);
        s.access("derived", crate::session::AccessMode::Write, "t0/derived");
        let cur = a.load(Ordering::Acquire);
        a.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            .expect("uncontended");
        s.begin_step(1);
        a.load(Ordering::Acquire);
        s.access("derived", crate::session::AccessMode::Read, "t1/derived");
        assert!(s.races().is_empty(), "{:?}", s.races());
    }

    #[test]
    fn relaxed_cas_leaves_dependent_read_racy() {
        let s = Session::new(2);
        let _guard = s.install();
        let a = AtomicU64::new(0);
        s.begin_step(0);
        s.access("derived", crate::session::AccessMode::Write, "t0/derived");
        let cur = a.load(Ordering::Relaxed);
        a.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            .expect("uncontended");
        s.begin_step(1);
        a.load(Ordering::Relaxed);
        s.access("derived", crate::session::AccessMode::Read, "t1/derived");
        let races = s.races();
        assert!(
            races.iter().any(|r| r.location == "derived"),
            "expected the derived read to race: {races:?}"
        );
    }

    #[test]
    fn mutex_lock_creates_happens_before() {
        use super::Mutex;
        let s = Session::new(2);
        let _guard = s.install();
        let m = Mutex::new(0u64);
        s.begin_step(0);
        {
            let mut g = m.lock();
            *g += 1;
            s.access("guarded", crate::session::AccessMode::Write, "t0/w");
        }
        s.begin_step(1);
        {
            let mut g = m.lock();
            *g += 1;
            s.access("guarded", crate::session::AccessMode::Write, "t1/w");
        }
        assert!(s.races().is_empty(), "{:?}", s.races());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn watch_send_borrow_orders_the_payload() {
        use super::watch;
        let s = Session::new(2);
        let _guard = s.install();
        let (tx, rx) = watch::channel(0usize);
        s.begin_step(0);
        s.access("payload", crate::session::AccessMode::Write, "t0/w");
        tx.send(1).expect("receiver alive");
        s.begin_step(1);
        assert_eq!(*rx.borrow(), 1);
        s.access("payload", crate::session::AccessMode::Read, "t1/r");
        assert!(s.races().is_empty(), "{:?}", s.races());
    }
}
