//! The SLO evaluation policy: window sizes, burn thresholds,
//! hysteresis, delivery tolerance, and the utilization audit bands.
//!
//! [`SloPolicy::validate`] reports nonsense configurations with the
//! same stable `E06xx` codes the static analyzer uses, so a bad
//! `entitlectl slo` flag set and a bad lint-bundle section read
//! identically.

/// One policy-validation finding: a stable code plus a human message.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyIssue {
    /// Stable diagnostic code (`E0601`–`E0603`).
    pub code: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// The knobs of the windowed SLO evaluator.
///
/// Defaults follow SRE multi-burn-rate practice scaled to the drill's
/// 30-second cycles: a 5-cycle fast window at 14× budget burn catches
/// sharp outages in minutes, a 60-cycle slow window at 2× filters
/// blips; hysteresis holds a firing alert until the fast burn has
/// stayed below `clear_fraction` of its threshold for a full
/// `hysteresis` run of cycles.
#[derive(Clone, Debug, PartialEq)]
pub struct SloPolicy {
    /// Fast burn window, in cycles.
    pub fast_window: usize,
    /// Slow burn window, in cycles. Must exceed `fast_window`.
    pub slow_window: usize,
    /// Fire when the fast-window burn rate reaches this multiple of
    /// the error budget (and the slow window agrees).
    pub fast_burn: f64,
    /// Slow-window burn-rate threshold.
    pub slow_burn: f64,
    /// A firing alert starts clearing once the fast burn drops to
    /// `clear_fraction * fast_burn`; must lie in (0, 1).
    pub clear_fraction: f64,
    /// Consecutive calm cycles required before a firing alert clears.
    pub hysteresis: usize,
    /// Fractional slack on the delivery check: an interval is good when
    /// `delivered ≥ min(demand, approved) · (1 − delivery_tolerance)`.
    /// Absorbs the metering convergence window after a contract cut.
    pub delivery_tolerance: f64,
    /// Mean demand / approved below this ⇒ **over-entitled** (the
    /// reservation is mostly headroom the paper would reclaim).
    pub under_utilization: f64,
    /// Mean demand / approved above this ⇒ **under-entitled** (demand
    /// presses against the approval; renegotiate upward).
    pub over_utilization: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            fast_window: 5,
            slow_window: 60,
            fast_burn: 14.0,
            slow_burn: 2.0,
            clear_fraction: 0.5,
            hysteresis: 5,
            delivery_tolerance: 0.15,
            under_utilization: 0.5,
            over_utilization: 0.95,
        }
    }
}

impl SloPolicy {
    /// The label describing this policy's alert windows, e.g.
    /// `fast5/slow60` — what a violated entity is reported with.
    #[must_use]
    pub fn window_label(&self) -> String {
        format!("fast{}/slow{}", self.fast_window, self.slow_window)
    }

    /// Validate the policy. An empty vec means usable; otherwise every
    /// finding carries its stable code:
    ///
    /// * `E0601` — a window (or the hysteresis) is zero, or the
    ///   delivery tolerance lies outside `[0, 1)`;
    /// * `E0602` — the fast window is not strictly shorter than the
    ///   slow window;
    /// * `E0603` — a burn threshold does not exceed 1 (burning slower
    ///   than the budget is not an incident), or the clear fraction
    ///   lies outside (0, 1).
    #[must_use]
    pub fn validate(&self) -> Vec<PolicyIssue> {
        let mut out = Vec::new();
        if self.fast_window == 0 || self.slow_window == 0 {
            out.push(PolicyIssue {
                code: "E0601",
                message: format!(
                    "burn windows must be positive cycle counts (fast {}, slow {})",
                    self.fast_window, self.slow_window
                ),
            });
        }
        if self.hysteresis == 0 {
            out.push(PolicyIssue {
                code: "E0601",
                message: "hysteresis must be a positive cycle count".to_string(),
            });
        }
        if !self.delivery_tolerance.is_finite()
            || self.delivery_tolerance < 0.0
            || self.delivery_tolerance >= 1.0
        {
            out.push(PolicyIssue {
                code: "E0601",
                message: format!(
                    "delivery tolerance {} outside [0, 1)",
                    self.delivery_tolerance
                ),
            });
        }
        if self.fast_window >= self.slow_window {
            out.push(PolicyIssue {
                code: "E0602",
                message: format!(
                    "fast window ({} cycles) must be strictly shorter than the slow \
                     window ({} cycles)",
                    self.fast_window, self.slow_window
                ),
            });
        }
        for (name, v) in [("fast", self.fast_burn), ("slow", self.slow_burn)] {
            if !v.is_finite() || v <= 1.0 {
                out.push(PolicyIssue {
                    code: "E0603",
                    message: format!(
                        "{name} burn threshold {v} must exceed 1 (1× burn just spends \
                         the budget exactly)"
                    ),
                });
            }
        }
        if !self.clear_fraction.is_finite()
            || self.clear_fraction <= 0.0
            || self.clear_fraction >= 1.0
        {
            out.push(PolicyIssue {
                code: "E0603",
                message: format!("clear fraction {} outside (0, 1)", self.clear_fraction),
            });
        }
        if !(self.under_utilization.is_finite()
            && self.over_utilization.is_finite()
            && self.under_utilization >= 0.0
            && self.under_utilization < self.over_utilization)
        {
            out.push(PolicyIssue {
                code: "E0601",
                message: format!(
                    "audit bands must satisfy 0 ≤ under ({}) < over ({})",
                    self.under_utilization, self.over_utilization
                ),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        assert!(SloPolicy::default().validate().is_empty());
    }

    #[test]
    fn zero_window_fires_e0601() {
        let p = SloPolicy {
            fast_window: 0,
            ..Default::default()
        };
        let issues = p.validate();
        assert!(issues.iter().any(|i| i.code == "E0601"), "{issues:?}");
    }

    #[test]
    fn fast_window_not_below_slow_fires_e0602() {
        let p = SloPolicy {
            fast_window: 60,
            slow_window: 60,
            ..Default::default()
        };
        assert!(p.validate().iter().any(|i| i.code == "E0602"));
        let p = SloPolicy {
            fast_window: 90,
            slow_window: 60,
            ..Default::default()
        };
        assert!(p.validate().iter().any(|i| i.code == "E0602"));
    }

    #[test]
    fn burn_threshold_at_or_below_one_fires_e0603() {
        for bad in [1.0, 0.5, 0.0, -3.0, f64::NAN] {
            let p = SloPolicy {
                fast_burn: bad,
                ..Default::default()
            };
            assert!(
                p.validate().iter().any(|i| i.code == "E0603"),
                "fast_burn {bad}"
            );
        }
        let p = SloPolicy {
            slow_burn: 1.0,
            ..Default::default()
        };
        assert!(p.validate().iter().any(|i| i.code == "E0603"));
    }

    #[test]
    fn tolerance_and_clear_fraction_ranges() {
        let p = SloPolicy {
            delivery_tolerance: 1.0,
            ..Default::default()
        };
        assert!(p.validate().iter().any(|i| i.code == "E0601"));
        let p = SloPolicy {
            clear_fraction: 1.0,
            ..Default::default()
        };
        assert!(p.validate().iter().any(|i| i.code == "E0603"));
    }

    #[test]
    fn window_label_names_both_windows() {
        assert_eq!(SloPolicy::default().window_label(), "fast5/slow60");
    }
}
