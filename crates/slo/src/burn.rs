//! Multi-window burn-rate alerting.
//!
//! The *burn rate* of a window is the fraction of bad intervals in it
//! divided by the error budget (`1 − target`): burn 1 means the budget
//! is being spent exactly at the rate that exhausts it by period end;
//! burn 14 over a 5-cycle window means a sharp incident. Following SRE
//! multi-burn-rate practice an alert fires only when **both** the fast
//! and the slow window exceed their thresholds — the fast window gives
//! low detection latency, the slow window keeps one-cycle blips from
//! paging — and clears only after the fast burn has stayed below
//! `clear_fraction × threshold` for a full hysteresis run of cycles.
//!
//! The clear threshold sits strictly below the fire threshold, so for
//! any *monotone* burn series the state machine can never flap
//! (fire → clear → fire): refiring needs the burn to rise back above a
//! level it already fell below. The proptests pin this.

use crate::config::SloPolicy;

/// A fixed-capacity ring of good/bad interval outcomes.
#[derive(Clone, Debug)]
pub struct BurnWindow {
    buf: Vec<bool>,
    cap: usize,
    next: usize,
    filled: usize,
    bad: usize,
}

impl BurnWindow {
    /// New window over `cap` cycles (`cap` ≥ 1 enforced by
    /// [`SloPolicy::validate`]; a zero cap is clamped to 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        BurnWindow {
            buf: vec![false; cap],
            cap,
            next: 0,
            filled: 0,
            bad: 0,
        }
    }

    /// Record one interval outcome, evicting the oldest when full.
    pub fn push(&mut self, bad: bool) {
        if self.filled == self.cap {
            if self.buf[self.next] {
                self.bad -= 1;
            }
        } else {
            self.filled += 1;
        }
        self.buf[self.next] = bad;
        if bad {
            self.bad += 1;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// Fraction of bad intervals among those recorded so far (0 while
    /// empty). Until the window fills, the denominator is the *window
    /// capacity*, not the fill level: a half-full window of all-bad
    /// cycles burns at half rate, so short traces cannot over-alarm.
    #[must_use]
    pub fn bad_fraction(&self) -> f64 {
        self.bad as f64 / self.cap as f64
    }

    /// Number of recorded intervals (saturates at the capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.filled
    }

    /// Whether no interval has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }
}

/// Whether an alert transition fires or clears.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertKind {
    /// Both windows crossed their burn thresholds.
    Fire,
    /// The fast burn stayed calm for a full hysteresis window.
    Clear,
}

impl AlertKind {
    /// Stable lowercase form used in trace labels and reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AlertKind::Fire => "fire",
            AlertKind::Clear => "clear",
        }
    }
}

/// One state transition of a [`BurnAlert`], with the burns that
/// caused it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlertTransition {
    /// Fire or clear.
    pub kind: AlertKind,
    /// Fast-window burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition.
    pub slow_burn: f64,
}

/// The two-window burn-rate alert state machine for one
/// `(entity, QoS)` series.
#[derive(Clone, Debug)]
pub struct BurnAlert {
    fast: BurnWindow,
    slow: BurnWindow,
    budget: f64,
    fast_threshold: f64,
    slow_threshold: f64,
    clear_fraction: f64,
    hysteresis: usize,
    firing: bool,
    calm: usize,
}

impl BurnAlert {
    /// New alert for an SLO `target` under `policy`. The error budget
    /// is `1 − target`, floored at a tiny epsilon so a 1.0 target
    /// degenerates to "any bad interval burns infinitely fast" without
    /// dividing by zero.
    #[must_use]
    pub fn new(policy: &SloPolicy, target: f64) -> Self {
        BurnAlert {
            fast: BurnWindow::new(policy.fast_window),
            slow: BurnWindow::new(policy.slow_window),
            budget: (1.0 - target.clamp(0.0, 1.0)).max(1e-9),
            fast_threshold: policy.fast_burn,
            slow_threshold: policy.slow_burn,
            clear_fraction: policy.clear_fraction,
            hysteresis: policy.hysteresis.max(1),
            firing: false,
            calm: 0,
        }
    }

    /// Record one interval outcome; returns the transition it caused,
    /// if any.
    pub fn observe(&mut self, bad: bool) -> Option<AlertTransition> {
        self.fast.push(bad);
        self.slow.push(bad);
        let fast = self.fast.bad_fraction() / self.budget;
        let slow = self.slow.bad_fraction() / self.budget;
        self.observe_burn(fast, slow)
    }

    /// Advance the state machine on precomputed burn rates. This is the
    /// raw transition logic [`observe`](Self::observe) delegates to;
    /// exposed so offline series (and the no-flap proptests) can drive
    /// the machine directly.
    pub fn observe_burn(&mut self, fast_burn: f64, slow_burn: f64) -> Option<AlertTransition> {
        if self.firing {
            if fast_burn <= self.clear_fraction * self.fast_threshold {
                self.calm += 1;
                if self.calm >= self.hysteresis {
                    self.firing = false;
                    self.calm = 0;
                    return Some(AlertTransition {
                        kind: AlertKind::Clear,
                        fast_burn,
                        slow_burn,
                    });
                }
            } else {
                self.calm = 0;
            }
            None
        } else {
            self.calm = 0;
            if fast_burn >= self.fast_threshold && slow_burn >= self.slow_threshold {
                self.firing = true;
                Some(AlertTransition {
                    kind: AlertKind::Fire,
                    fast_burn,
                    slow_burn,
                })
            } else {
                None
            }
        }
    }

    /// Whether the alert is currently firing.
    #[must_use]
    pub fn firing(&self) -> bool {
        self.firing
    }

    /// Current fast-window burn rate.
    #[must_use]
    pub fn fast_burn(&self) -> f64 {
        self.fast.bad_fraction() / self.budget
    }

    /// Current slow-window burn rate.
    #[must_use]
    pub fn slow_burn(&self) -> f64 {
        self.slow.bad_fraction() / self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SloPolicy {
        SloPolicy::default()
    }

    #[test]
    fn window_ring_tracks_bad_fraction() {
        let mut w = BurnWindow::new(4);
        assert!(w.is_empty());
        assert_eq!(w.bad_fraction(), 0.0);
        w.push(true);
        w.push(false);
        // Partial fill divides by capacity: 1 bad of cap 4.
        assert_eq!(w.bad_fraction(), 0.25);
        w.push(true);
        w.push(true);
        assert_eq!(w.len(), 4);
        assert_eq!(w.bad_fraction(), 0.75);
        // Eviction: the first (bad) sample rolls off.
        w.push(false);
        assert_eq!(w.bad_fraction(), 0.5);
    }

    #[test]
    fn sustained_outage_fires_and_recovery_clears() {
        // target 0.99 → budget 0.01; all-bad fast window burns at 100×.
        let mut alert = BurnAlert::new(&policy(), 0.99);
        let mut fired_at = None;
        for i in 0..60 {
            if let Some(t) = alert.observe(true) {
                assert_eq!(t.kind, AlertKind::Fire);
                fired_at = Some(i);
                break;
            }
        }
        // Slow window (cap 60) gates: needs slow burn ≥ 2 → ≥ 2% of 60
        // cycles bad → fires on the 2nd bad cycle.
        assert_eq!(fired_at, Some(1));
        assert!(alert.firing());
        // Recovery: fast window (cap 5) flushes in 5 cycles, then the
        // hysteresis run of 5 calm cycles must complete.
        let mut cleared_at = None;
        for i in 0..40 {
            if let Some(t) = alert.observe(false) {
                assert_eq!(t.kind, AlertKind::Clear);
                cleared_at = Some(i);
                break;
            }
        }
        let cleared = cleared_at.expect("alert clears after recovery");
        assert!((6..=12).contains(&cleared), "cleared at {cleared}");
        assert!(!alert.firing());
    }

    #[test]
    fn single_blip_does_not_fire() {
        let mut alert = BurnAlert::new(&policy(), 0.99);
        // 1 bad cycle in 60: the fast burn spikes to 20 (≥ the 14×
        // threshold) but the slow window never reaches 2× — multi-window
        // gating keeps the blip from paging.
        for i in 0..60 {
            let bad = i == 10;
            assert!(alert.observe(bad).is_none(), "fired on a blip at {i}");
        }
        assert!(!alert.firing());
    }

    #[test]
    fn refire_needs_a_fresh_crossing() {
        let mut alert = BurnAlert::new(&policy(), 0.99);
        let mut kinds = Vec::new();
        for _ in 0..30 {
            if let Some(t) = alert.observe(true) {
                kinds.push(t.kind);
            }
        }
        for _ in 0..30 {
            if let Some(t) = alert.observe(false) {
                kinds.push(t.kind);
            }
        }
        for _ in 0..30 {
            if let Some(t) = alert.observe(true) {
                kinds.push(t.kind);
            }
        }
        assert_eq!(
            kinds,
            vec![AlertKind::Fire, AlertKind::Clear, AlertKind::Fire],
            "a genuine second outage refires after a clean clear"
        );
    }

    #[test]
    fn perfect_target_budget_is_floored() {
        let mut alert = BurnAlert::new(&policy(), 1.0);
        // One bad interval at a 1.0 target burns astronomically; both
        // windows cross immediately and the machine still functions.
        assert!(alert.observe(true).is_some());
    }
}
