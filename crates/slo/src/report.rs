//! The SLO report: per-`(entity, QoS)` attainment, utilization audit
//! class, alert timeline, and violation flags, rendered as a fixed-width
//! text table or as JSON with a pinned key order.
//!
//! The vendored serde serializes maps as arrays of pairs, so — like the
//! obs trace sink — the JSON here is emitted by hand to keep the key
//! order stable and the output byte-identical across same-seed runs.

use crate::config::SloPolicy;
use crate::eval::AlertEvent;
use serde::write_json_string;
use std::fmt::Write as _;

/// Utilization audit classification for one entity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditClass {
    /// Mean demand sits well below the approved rate: reclaimable
    /// headroom (renegotiate downward).
    OverEntitled,
    /// Demand tracks the approval comfortably.
    WellEntitled,
    /// Demand presses against the approval: renegotiate upward before
    /// the SLO erodes.
    UnderEntitled,
}

impl AuditClass {
    /// Stable lowercase-kebab form used in reports and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AuditClass::OverEntitled => "over-entitled",
            AuditClass::WellEntitled => "well-entitled",
            AuditClass::UnderEntitled => "under-entitled",
        }
    }
}

/// One `(entity, QoS)` row of the report.
#[derive(Clone, Debug, PartialEq)]
pub struct EntityReport {
    /// Entity name, e.g. `npg:2`.
    pub entity: String,
    /// QoS class, e.g. `c3`.
    pub qos: String,
    /// Contract SLO target the attainment is judged against.
    pub target: f64,
    /// Intervals observed.
    pub intervals: u64,
    /// Intervals classified good.
    pub good: u64,
    /// `good / intervals` (1.0 when nothing observed).
    pub attainment: f64,
    /// Mean demand / mean approved.
    pub utilization: f64,
    /// Utilization audit band.
    pub audit: AuditClass,
    /// `attainment < target`.
    pub violated: bool,
    /// The burn-alert window label the violation is judged under,
    /// e.g. `fast5/slow60`.
    pub window: String,
    /// Mean offered demand, Gbit/s.
    pub mean_demand_gbps: f64,
    /// Mean conforming delivery, Gbit/s.
    pub mean_delivered_gbps: f64,
    /// Mean approved rate, Gbit/s.
    pub mean_approved_gbps: f64,
    /// Whether the burn alert is still firing at end of run.
    pub firing: bool,
    /// Alert transitions in cycle order.
    pub alerts: Vec<AlertEvent>,
}

/// The full report: the policy it was evaluated under plus one row per
/// `(entity, QoS)` in key order.
#[derive(Clone, Debug, PartialEq)]
pub struct SloReport {
    /// Evaluation policy.
    pub policy: SloPolicy,
    /// Rows, sorted by `(entity, qos)`.
    pub entities: Vec<EntityReport>,
}

/// Shortest-round-trip float form shared with the trace labels.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl SloReport {
    /// Whether any entity missed its SLO target.
    #[must_use]
    pub fn has_violations(&self) -> bool {
        self.entities.iter().any(|e| e.violated)
    }

    /// Total alert transitions of kind fire across all entities.
    #[must_use]
    pub fn alerts_fired(&self) -> u64 {
        self.entities
            .iter()
            .flat_map(|e| e.alerts.iter())
            .filter(|a| a.kind == crate::burn::AlertKind::Fire)
            .count() as u64
    }

    /// Render the human-readable table. Violated rows are listed again
    /// under a `violations:` section naming the entity, QoS, and the
    /// alert window they were judged under.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "slo report (windows {}, tolerance {})",
            self.policy.window_label(),
            fmt_f64(self.policy.delivery_tolerance)
        );
        let _ = writeln!(
            out,
            "{:<12} {:<4} {:>8} {:>10} {:>10} {:>7} {:>9} {:>9} {:>9}  {:<14} status",
            "entity",
            "qos",
            "target",
            "attain",
            "intervals",
            "util",
            "dem_gbps",
            "del_gbps",
            "app_gbps",
            "audit"
        );
        for e in &self.entities {
            let status = if e.violated {
                "VIOLATED"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<12} {:<4} {:>8} {:>10} {:>10} {:>7} {:>9} {:>9} {:>9}  {:<14} {}",
                e.entity,
                e.qos,
                fmt_f64(e.target),
                format!("{:.4}", e.attainment),
                format!("{}/{}", e.good, e.intervals),
                format!("{:.2}", e.utilization),
                format!("{:.2}", e.mean_demand_gbps),
                format!("{:.2}", e.mean_delivered_gbps),
                format!("{:.2}", e.mean_approved_gbps),
                e.audit.as_str(),
                status
            );
        }
        let mut alerts: Vec<(&EntityReport, &AlertEvent)> = Vec::new();
        for e in &self.entities {
            for a in &e.alerts {
                alerts.push((e, a));
            }
        }
        if !alerts.is_empty() {
            let _ = writeln!(out, "alerts:");
            for (e, a) in &alerts {
                let _ = writeln!(
                    out,
                    "  cycle {:>5}  {:<5} {} {} window {} fast_burn {:.2} slow_burn {:.2}",
                    a.cycle,
                    a.kind.as_str(),
                    e.entity,
                    e.qos,
                    a.window,
                    a.fast_burn,
                    a.slow_burn
                );
            }
        }
        let violated: Vec<&EntityReport> =
            self.entities.iter().filter(|e| e.violated).collect();
        if violated.is_empty() {
            let _ = writeln!(out, "violations: none");
        } else {
            let _ = writeln!(out, "violations:");
            for e in &violated {
                let _ = writeln!(
                    out,
                    "  {} {} attainment {:.4} < target {} (window {})",
                    e.entity,
                    e.qos,
                    e.attainment,
                    fmt_f64(e.target),
                    e.window
                );
            }
        }
        out
    }

    /// Render as JSON with a pinned key order (hand-emitted; the
    /// vendored serde cannot guarantee map ordering).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"policy\":{");
        let p = &self.policy;
        let _ = write!(
            out,
            "\"fast_window\":{},\"slow_window\":{},\"fast_burn\":{},\"slow_burn\":{},\
             \"clear_fraction\":{},\"hysteresis\":{},\"delivery_tolerance\":{},\
             \"under_utilization\":{},\"over_utilization\":{}",
            p.fast_window,
            p.slow_window,
            fmt_f64(p.fast_burn),
            fmt_f64(p.slow_burn),
            fmt_f64(p.clear_fraction),
            p.hysteresis,
            fmt_f64(p.delivery_tolerance),
            fmt_f64(p.under_utilization),
            fmt_f64(p.over_utilization)
        );
        out.push_str("},\"entities\":[");
        for (i, e) in self.entities.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"entity\":");
            write_json_string(&e.entity, &mut out);
            out.push_str(",\"qos\":");
            write_json_string(&e.qos, &mut out);
            let _ = write!(
                out,
                ",\"target\":{},\"intervals\":{},\"good\":{},\"attainment\":{},\
                 \"utilization\":{},\"audit\":\"{}\",\"violated\":{},\"window\":",
                fmt_f64(e.target),
                e.intervals,
                e.good,
                fmt_f64(e.attainment),
                fmt_f64(e.utilization),
                e.audit.as_str(),
                e.violated
            );
            write_json_string(&e.window, &mut out);
            let _ = write!(
                out,
                ",\"mean_demand_gbps\":{},\"mean_delivered_gbps\":{},\
                 \"mean_approved_gbps\":{},\"firing\":{},\"alerts\":[",
                fmt_f64(e.mean_demand_gbps),
                fmt_f64(e.mean_delivered_gbps),
                fmt_f64(e.mean_approved_gbps),
                e.firing
            );
            for (j, a) in e.alerts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"cycle\":{},\"kind\":\"{}\",\"window\":",
                    a.cycle,
                    a.kind.as_str()
                );
                write_json_string(&a.window, &mut out);
                let _ = write!(
                    out,
                    ",\"fast_burn\":{},\"slow_burn\":{}}}",
                    fmt_f64(a.fast_burn),
                    fmt_f64(a.slow_burn)
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burn::AlertKind;

    fn sample() -> SloReport {
        SloReport {
            policy: SloPolicy::default(),
            entities: vec![EntityReport {
                entity: "npg:2".to_string(),
                qos: "c3".to_string(),
                target: 0.99,
                intervals: 500,
                good: 420,
                attainment: 0.84,
                utilization: 1.3,
                audit: AuditClass::UnderEntitled,
                violated: true,
                window: "fast5/slow60".to_string(),
                mean_demand_gbps: 1300.0,
                mean_delivered_gbps: 900.0,
                mean_approved_gbps: 1000.0,
                firing: false,
                alerts: vec![AlertEvent {
                    entity: "npg:2".to_string(),
                    qos: "c3".to_string(),
                    cycle: 242,
                    kind: AlertKind::Fire,
                    window: "fast5/slow60".to_string(),
                    fast_burn: 40.0,
                    slow_burn: 3.33,
                }],
            }],
        }
    }

    #[test]
    fn violated_rows_name_entity_qos_and_window() {
        let text = sample().render_text();
        assert!(text.contains("VIOLATED"), "{text}");
        assert!(
            text.contains("npg:2 c3 attainment 0.8400 < target 0.99 (window fast5/slow60)"),
            "{text}"
        );
        assert!(text.contains("cycle   242  fire"), "{text}");
    }

    #[test]
    fn healthy_report_says_no_violations() {
        let mut r = sample();
        r.entities[0].violated = false;
        r.entities[0].alerts.clear();
        assert!(!r.has_violations());
        let text = r.render_text();
        assert!(text.contains("violations: none"), "{text}");
        assert!(!text.contains("alerts:"), "{text}");
    }

    #[test]
    fn json_key_order_is_pinned() {
        let json = sample().render_json();
        assert!(json.starts_with("{\"policy\":{\"fast_window\":5,\"slow_window\":60,"));
        let entity_pos = json.find("\"entity\":\"npg:2\"").unwrap();
        let qos_pos = json.find("\"qos\":\"c3\"").unwrap();
        let attain_pos = json.find("\"attainment\":0.84").unwrap();
        assert!(entity_pos < qos_pos && qos_pos < attain_pos);
        assert!(json.contains("\"audit\":\"under-entitled\""));
        assert!(json.contains("\"alerts\":[{\"cycle\":242,\"kind\":\"fire\""));
        // It parses back as JSON.
        serde_json::parse(&json).expect("valid json");
    }

    #[test]
    fn alerts_fired_counts_only_fires() {
        let mut r = sample();
        let clear = AlertEvent {
            kind: AlertKind::Clear,
            cycle: 330,
            ..r.entities[0].alerts[0].clone()
        };
        r.entities[0].alerts.push(clear);
        assert_eq!(r.alerts_fired(), 1);
    }
}
