//! # entitlement-slo
//!
//! The windowed SLO evaluation engine: the layer that *interprets* the
//! telemetry `entitlement-obs` collects. The paper's contract life
//! cycle (§3, §5.3, §7) hinges on knowing whether the SLO — "approved
//! demand satisfied in at least X% of intervals" — is actually met at
//! runtime, and whether services consume the entitlement they
//! reserved; re-negotiation runs off exactly this attainment and
//! utilization signal.
//!
//! Four pieces, all deterministic (same interval stream ⇒ byte-identical
//! reports):
//!
//! * [`SloEvaluator`] — a streaming fold over per-cycle
//!   [`IntervalObs`] observations, keyed by `(entity, QoS)`. Each
//!   interval is classified *good* (delivered ≥ the approved share of
//!   demand, within tolerance, and the KV aggregates were readable —
//!   unmeasurable intervals count **bad**, fail-closed) or *bad*, and
//!   folded into the attainment fraction compared against the
//!   contract's [`SloTarget`](entitlement_core::SloTarget).
//! * [`BurnAlert`] — multi-window burn-rate alerting à la SRE
//!   practice: a fast window (default 5 cycles) catches sharp burns, a
//!   slow window (default 60) filters blips; an alert fires only when
//!   **both** exceed their thresholds and clears only after the fast
//!   burn stays low for a full hysteresis window, so a monotone burn
//!   series can never flap (see the proptests).
//! * the **utilization audit** — each entity is classified
//!   over-/well-/under-entitled from mean demand vs. approved rate,
//!   flagging the headroom the paper would reclaim at re-negotiation.
//! * [`BenchRecord`] — a per-run performance record (p50/p99 agent
//!   cycle latency, delivered throughput, attainment) serialized to
//!   `BENCH_<name>.json` and diffed against the prior run with a
//!   tolerance gate, so perf regressions fail CI instead of landing.
//!
//! Alert transitions are emitted as typed [`AlertEvent`]s *and* as
//! `slo`-span trace events with the workspace's pinned JSONL key
//! order, so one trace file carries the raw intervals and the alert
//! timeline; [`SloEvaluator::fold_trace`] rebuilds the same report
//! offline from that file (`entitlectl slo report`).

#![forbid(unsafe_code)]

pub mod bench;
pub mod burn;
pub mod config;
pub mod eval;
pub mod report;

pub use bench::{BenchRecord, BenchTolerance};
pub use burn::{AlertKind, AlertTransition, BurnAlert, BurnWindow};
pub use config::{PolicyIssue, SloPolicy};
pub use eval::{AlertEvent, IntervalObs, SloEvaluator};
pub use report::{AuditClass, EntityReport, SloReport};
