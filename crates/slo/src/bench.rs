//! Run-to-run regression tracking.
//!
//! Each benchmarked run serializes one [`BenchRecord`] — p50/p99/p99.9
//! agent cycle latency, mean delivered throughput, attainment, alert
//! count —
//! to `BENCH_<name>.json`. The next run diffs itself against that file
//! under a [`BenchTolerance`]: small drift passes, a real regression
//! (latency up by more than the fractional gate, throughput or
//! attainment down) produces findings that fail `entitlectl slo audit`.

use crate::report::SloReport;
use entitlement_obs::{Histogram, TraceEvent};
use serde::write_json_string;
use std::fmt::Write as _;

/// One run's performance record.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (file is `BENCH_<name>.json`).
    pub name: String,
    /// Seed the run used.
    pub seed: u64,
    /// Cycles (intervals) observed across all entities.
    pub cycles: u64,
    /// Median agent cycle latency, ms.
    pub p50_cycle_ms: f64,
    /// Tail agent cycle latency, ms.
    pub p99_cycle_ms: f64,
    /// Extreme-tail (p99.9) agent cycle latency, ms.
    pub p999_cycle_ms: f64,
    /// Mean conforming delivered throughput across entities, Gbit/s.
    pub mean_delivered_gbps: f64,
    /// Worst per-entity SLO attainment.
    pub attainment: f64,
    /// Alert fire transitions during the run.
    pub alerts_fired: u64,
}

/// Fractional gates for the regression diff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchTolerance {
    /// Allowed absolute drop in attainment (e.g. 0.005 = half a point).
    pub attainment_drop: f64,
    /// Allowed fractional increase in p50/p99 latency.
    pub latency_frac: f64,
    /// Allowed fractional drop in delivered throughput.
    pub throughput_frac: f64,
}

impl Default for BenchTolerance {
    fn default() -> Self {
        BenchTolerance {
            attainment_drop: 0.005,
            latency_frac: 0.25,
            throughput_frac: 0.25,
        }
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn num(v: &serde::JsonValue, key: &str) -> f64 {
    match v.get(key) {
        Some(serde::JsonValue::Number(n)) => *n,
        _ => 0.0,
    }
}

impl BenchRecord {
    /// Build the record from a run's trace events (agent `cycle` and
    /// market `admit` span durations feed the latency quantiles) and
    /// its [`SloReport`] (throughput, attainment, alerts).
    ///
    /// Under the counting clock the folded durations are *logical*
    /// milliseconds — each clock read inside the span adds one — so a
    /// baseline pins the span's instrumentation density, not wall
    /// time. Trace-schema v2's decision-provenance events (the
    /// `index_probe` read and the sweep-path scenario spans inside
    /// `market/admit`) are part of that density: adding or removing
    /// provenance instrumentation shows up as a bench diff and the
    /// committed `BENCH_market.json` moves with it.
    #[must_use]
    pub fn from_run(name: &str, seed: u64, events: &[TraceEvent], report: &SloReport) -> Self {
        let cycle_ms = Histogram::new();
        for e in events {
            if (e.span == "agent" && e.phase == "cycle")
                || (e.span == "market" && e.phase == "admit")
            {
                cycle_ms.record(e.dur_ms);
            }
        }
        let cycles = report.entities.iter().map(|e| e.intervals).sum();
        let mean_delivered_gbps = report
            .entities
            .iter()
            .map(|e| e.mean_delivered_gbps)
            .sum::<f64>();
        let attainment = report
            .entities
            .iter()
            .map(|e| e.attainment)
            .fold(1.0, f64::min);
        BenchRecord {
            name: name.to_string(),
            seed,
            cycles,
            p50_cycle_ms: cycle_ms.quantile(0.5).unwrap_or(0.0),
            p99_cycle_ms: cycle_ms.quantile(0.99).unwrap_or(0.0),
            p999_cycle_ms: cycle_ms.p999().unwrap_or(0.0),
            mean_delivered_gbps,
            attainment,
            alerts_fired: report.alerts_fired(),
        }
    }

    /// Serialize with pinned key order (hand-emitted JSON, same policy
    /// as the trace sink and the SLO report).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"name\":");
        write_json_string(&self.name, &mut out);
        let _ = write!(
            out,
            ",\"seed\":{},\"cycles\":{},\"p50_cycle_ms\":{},\"p99_cycle_ms\":{},\
             \"p999_cycle_ms\":{},\
             \"mean_delivered_gbps\":{},\"attainment\":{},\"alerts_fired\":{}}}",
            self.seed,
            self.cycles,
            fmt_f64(self.p50_cycle_ms),
            fmt_f64(self.p99_cycle_ms),
            fmt_f64(self.p999_cycle_ms),
            fmt_f64(self.mean_delivered_gbps),
            fmt_f64(self.attainment),
            self.alerts_fired
        );
        out
    }

    /// Parse a record previously written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns the parse error string when the input is not a JSON
    /// object with a string `name`.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = serde_json::parse(s)?;
        let name = match v.get("name") {
            Some(serde::JsonValue::String(n)) => n.clone(),
            _ => return Err("bench record missing string \"name\"".to_string()),
        };
        Ok(BenchRecord {
            name,
            seed: num(&v, "seed") as u64,
            cycles: num(&v, "cycles") as u64,
            p50_cycle_ms: num(&v, "p50_cycle_ms"),
            p99_cycle_ms: num(&v, "p99_cycle_ms"),
            p999_cycle_ms: num(&v, "p999_cycle_ms"),
            mean_delivered_gbps: num(&v, "mean_delivered_gbps"),
            attainment: num(&v, "attainment"),
            alerts_fired: num(&v, "alerts_fired") as u64,
        })
    }

    /// Diff this run against a prior baseline. Each returned string is
    /// one regression finding; an empty vec passes the gate.
    ///
    /// Latency gates only fire when the baseline is non-trivial
    /// (> 0 ms): manual-clock drills record zero-duration cycles, and a
    /// zero baseline would turn any measurable latency into a
    /// regression by division.
    #[must_use]
    pub fn diff(&self, prior: &BenchRecord, tol: &BenchTolerance) -> Vec<String> {
        let mut out = Vec::new();
        if self.attainment < prior.attainment - tol.attainment_drop {
            out.push(format!(
                "attainment regressed: {} -> {} (allowed drop {})",
                fmt_f64(prior.attainment),
                fmt_f64(self.attainment),
                fmt_f64(tol.attainment_drop)
            ));
        }
        for (label, now, was) in [
            ("p50_cycle_ms", self.p50_cycle_ms, prior.p50_cycle_ms),
            ("p99_cycle_ms", self.p99_cycle_ms, prior.p99_cycle_ms),
            ("p999_cycle_ms", self.p999_cycle_ms, prior.p999_cycle_ms),
        ] {
            if was > 0.0 && now > was * (1.0 + tol.latency_frac) {
                out.push(format!(
                    "{label} regressed: {} -> {} ms (allowed +{}%)",
                    fmt_f64(was),
                    fmt_f64(now),
                    fmt_f64(tol.latency_frac * 100.0)
                ));
            }
        }
        if prior.mean_delivered_gbps > 0.0
            && self.mean_delivered_gbps
                < prior.mean_delivered_gbps * (1.0 - tol.throughput_frac)
        {
            out.push(format!(
                "throughput regressed: {} -> {} gbps (allowed -{}%)",
                fmt_f64(prior.mean_delivered_gbps),
                fmt_f64(self.mean_delivered_gbps),
                fmt_f64(tol.throughput_frac * 100.0)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BenchRecord {
        BenchRecord {
            name: "drill".to_string(),
            seed: 3607,
            cycles: 500,
            p50_cycle_ms: 2.0,
            p99_cycle_ms: 8.0,
            p999_cycle_ms: 9.5,
            mean_delivered_gbps: 950.0,
            attainment: 0.996,
            alerts_fired: 0,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = record();
        let json = r.to_json();
        assert!(json.starts_with("{\"name\":\"drill\",\"seed\":3607,\"cycles\":500,"));
        let back = BenchRecord::from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let r = record();
        assert!(r.diff(&record(), &BenchTolerance::default()).is_empty());
    }

    #[test]
    fn attainment_drop_is_a_regression() {
        let mut now = record();
        now.attainment = 0.98;
        let findings = now.diff(&record(), &BenchTolerance::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("attainment regressed"));
    }

    #[test]
    fn latency_and_throughput_gates() {
        let mut now = record();
        now.p99_cycle_ms = 11.0; // +37.5% > 25% gate
        now.mean_delivered_gbps = 700.0; // -26% > 25% gate
        let findings = now.diff(&record(), &BenchTolerance::default());
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn p999_tail_blowup_is_a_regression() {
        // p50/p99 hold steady while only the extreme tail blows up —
        // the gate the p999 column exists to catch.
        let mut now = record();
        now.p999_cycle_ms = 20.0; // +110% > 25% gate
        let findings = now.diff(&record(), &BenchTolerance::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("p999_cycle_ms regressed"));
    }

    #[test]
    fn zero_latency_baseline_never_divides_into_a_regression() {
        let mut prior = record();
        prior.p50_cycle_ms = 0.0;
        prior.p99_cycle_ms = 0.0;
        let mut now = record();
        now.p50_cycle_ms = 5.0;
        now.p99_cycle_ms = 5.0;
        assert!(now.diff(&prior, &BenchTolerance::default()).is_empty());
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let mut now = record();
        now.attainment = 0.994; // -0.002 within 0.005
        now.p50_cycle_ms = 2.3; // +15% within 25%
        now.mean_delivered_gbps = 900.0; // -5% within 25%
        assert!(now.diff(&record(), &BenchTolerance::default()).is_empty());
    }
}
