//! The streaming SLO evaluator: a fold over per-cycle interval
//! observations, keyed by `(entity, QoS)`.
//!
//! The drill and daemon loops feed [`SloEvaluator::observe`] one
//! [`IntervalObs`] per metering cycle — no post-hoc re-parse — and each
//! observation is simultaneously emitted as an `slo`/`interval` trace
//! event (pinned JSONL key order, floats in shortest-round-trip form),
//! so [`SloEvaluator::fold_trace`] can rebuild the identical evaluator
//! offline from the trace file alone. `entitlectl slo report|audit` is
//! exactly that offline fold.
//!
//! **Fail-closed accounting**: an interval whose aggregates were
//! unreadable (`measurable == false`, e.g. a KV shard outage) counts
//! *bad* even if traffic kept flowing — an SLO you cannot measure is an
//! SLO you cannot claim.

use crate::burn::{AlertKind, BurnAlert};
use crate::config::SloPolicy;
use crate::report::{EntityReport, SloReport};
use entitlement_obs::{Obs, TraceEvent};
use std::collections::BTreeMap;

/// One metering cycle's delivery observation for one `(entity, QoS)`.
#[derive(Clone, Debug, PartialEq)]
pub struct IntervalObs {
    /// The entitled entity, e.g. `npg:2`.
    pub entity: String,
    /// QoS class, e.g. `c3`.
    pub qos: String,
    /// The contract's SLO target (attainment is compared against it).
    pub target: f64,
    /// Offered demand this cycle, bits/s.
    pub demand_bps: f64,
    /// Conforming (delivered-as-approved) rate this cycle, bits/s.
    pub delivered_bps: f64,
    /// The approved/entitled rate in force this cycle, bits/s.
    pub approved_bps: f64,
    /// Whether the cycle's aggregates were readable. Unmeasurable
    /// cycles count bad (fail-closed).
    pub measurable: bool,
}

/// A typed alert transition, as recorded in the report (the same
/// transition is also emitted as an `slo`/`alert_*` trace event).
#[derive(Clone, Debug, PartialEq)]
pub struct AlertEvent {
    /// Entity the alert belongs to.
    pub entity: String,
    /// QoS class.
    pub qos: String,
    /// 1-based cycle index at which the transition happened.
    pub cycle: u64,
    /// Fire or clear.
    pub kind: AlertKind,
    /// The policy's window label, e.g. `fast5/slow60`.
    pub window: String,
    /// Fast-window burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition.
    pub slow_burn: f64,
}

struct EntityState {
    target: f64,
    intervals: u64,
    good: u64,
    sum_demand_bps: f64,
    sum_delivered_bps: f64,
    sum_approved_bps: f64,
    alert: BurnAlert,
    alerts: Vec<AlertEvent>,
}

/// The streaming fold. Same observation stream ⇒ identical report,
/// bitwise.
pub struct SloEvaluator {
    policy: SloPolicy,
    states: BTreeMap<(String, String), EntityState>,
}

/// Shortest-round-trip float formatting: `format!("{v}")` is exact
/// under `str::parse::<f64>`, which is what keeps the in-process fold
/// and the offline trace fold byte-identical.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl SloEvaluator {
    /// New evaluator under `policy`.
    #[must_use]
    pub fn new(policy: SloPolicy) -> Self {
        SloEvaluator {
            policy,
            states: BTreeMap::new(),
        }
    }

    /// The policy this evaluator folds under.
    #[must_use]
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Fold one interval, emitting `slo` trace events into `obs`
    /// (an `interval` event always; `alert_fire`/`alert_clear` on a
    /// burn-alert transition).
    pub fn observe(&mut self, obs: &Obs, o: &IntervalObs) {
        let required =
            o.demand_bps.min(o.approved_bps) * (1.0 - self.policy.delivery_tolerance);
        let good = o.measurable && o.delivered_bps >= required;

        let key = (o.entity.clone(), o.qos.clone());
        let policy = &self.policy;
        let st = self.states.entry(key).or_insert_with(|| EntityState {
            target: o.target,
            intervals: 0,
            good: 0,
            sum_demand_bps: 0.0,
            sum_delivered_bps: 0.0,
            sum_approved_bps: 0.0,
            alert: BurnAlert::new(policy, o.target),
            alerts: Vec::new(),
        });
        st.target = o.target;
        st.intervals += 1;
        if good {
            st.good += 1;
        }
        st.sum_demand_bps += o.demand_bps;
        st.sum_delivered_bps += o.delivered_bps;
        st.sum_approved_bps += o.approved_bps;
        let cycle = st.intervals;

        obs.event(
            "slo",
            "interval",
            &[
                ("entity", &o.entity),
                ("qos", &o.qos),
                ("target", &fmt_f64(o.target)),
                ("demand_bps", &fmt_f64(o.demand_bps)),
                ("delivered_bps", &fmt_f64(o.delivered_bps)),
                ("approved_bps", &fmt_f64(o.approved_bps)),
                ("measurable", if o.measurable { "true" } else { "false" }),
                ("good", if good { "true" } else { "false" }),
            ],
        );

        if let Some(t) = st.alert.observe(!good) {
            let event = AlertEvent {
                entity: o.entity.clone(),
                qos: o.qos.clone(),
                cycle,
                kind: t.kind,
                window: self.policy.window_label(),
                fast_burn: t.fast_burn,
                slow_burn: t.slow_burn,
            };
            let phase = match t.kind {
                AlertKind::Fire => "alert_fire",
                AlertKind::Clear => "alert_clear",
            };
            obs.event(
                "slo",
                phase,
                &[
                    ("entity", &o.entity),
                    ("qos", &o.qos),
                    ("cycle", &cycle.to_string()),
                    ("window", &event.window),
                    ("fast_burn", &fmt_f64(t.fast_burn)),
                    ("slow_burn", &fmt_f64(t.slow_burn)),
                ],
            );
            st.alerts.push(event);
        }
    }

    /// Rebuild the evaluator state from a recorded trace: every
    /// `slo`/`interval` event is re-observed (without re-emitting —
    /// the sink is disabled). Alert transitions are *recomputed* from
    /// the interval stream under this evaluator's policy, so the same
    /// policy reproduces the in-process alert timeline exactly and a
    /// different policy re-judges the same run.
    pub fn fold_trace(&mut self, events: &[TraceEvent]) {
        let silent = Obs::disabled();
        for e in events {
            if e.span != "slo" || e.phase != "interval" {
                continue;
            }
            let label = |k: &str| -> Option<&str> {
                e.labels
                    .iter()
                    .find(|(lk, _)| lk == k)
                    .map(|(_, v)| v.as_str())
            };
            let num = |k: &str| label(k).and_then(|v| v.parse::<f64>().ok());
            let (Some(entity), Some(qos)) = (label("entity"), label("qos")) else {
                continue;
            };
            let o = IntervalObs {
                entity: entity.to_string(),
                qos: qos.to_string(),
                target: num("target").unwrap_or(0.99),
                demand_bps: num("demand_bps").unwrap_or(0.0),
                delivered_bps: num("delivered_bps").unwrap_or(0.0),
                approved_bps: num("approved_bps").unwrap_or(0.0),
                measurable: label("measurable") != Some("false"),
            };
            self.observe(&silent, &o);
        }
    }

    /// Whether any entity's burn alert is firing right now.
    #[must_use]
    pub fn any_firing(&self) -> bool {
        self.states.values().any(|s| s.alert.firing())
    }

    /// Produce the report: one row per `(entity, QoS)` in key order.
    #[must_use]
    pub fn report(&self) -> SloReport {
        let entities = self
            .states
            .iter()
            .map(|((entity, qos), st)| {
                let attainment = if st.intervals > 0 {
                    st.good as f64 / st.intervals as f64
                } else {
                    1.0
                };
                let utilization = if st.sum_approved_bps > 0.0 {
                    st.sum_demand_bps / st.sum_approved_bps
                } else {
                    0.0
                };
                EntityReport {
                    entity: entity.clone(),
                    qos: qos.clone(),
                    target: st.target,
                    intervals: st.intervals,
                    good: st.good,
                    attainment,
                    utilization,
                    audit: self.policy.classify(utilization),
                    violated: attainment < st.target,
                    window: self.policy.window_label(),
                    mean_demand_gbps: mean_gbps(st.sum_demand_bps, st.intervals),
                    mean_delivered_gbps: mean_gbps(st.sum_delivered_bps, st.intervals),
                    mean_approved_gbps: mean_gbps(st.sum_approved_bps, st.intervals),
                    firing: st.alert.firing(),
                    alerts: st.alerts.clone(),
                }
            })
            .collect();
        SloReport {
            policy: self.policy.clone(),
            entities,
        }
    }
}

fn mean_gbps(sum_bps: f64, intervals: u64) -> f64 {
    if intervals == 0 {
        0.0
    } else {
        sum_bps / intervals as f64 / 1e9
    }
}

impl SloPolicy {
    /// Classify an entity's mean utilization (demand / approved) into
    /// an audit band.
    #[must_use]
    pub fn classify(&self, utilization: f64) -> crate::report::AuditClass {
        use crate::report::AuditClass;
        if utilization < self.under_utilization {
            AuditClass::OverEntitled
        } else if utilization > self.over_utilization {
            AuditClass::UnderEntitled
        } else {
            AuditClass::WellEntitled
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entitlement_obs::Clock;

    fn interval(good: bool) -> IntervalObs {
        IntervalObs {
            entity: "npg:2".to_string(),
            qos: "c3".to_string(),
            target: 0.99,
            demand_bps: 2e12,
            delivered_bps: if good { 1e12 } else { 0.2e12 },
            approved_bps: 1e12,
            measurable: true,
        }
    }

    #[test]
    fn good_and_bad_intervals_fold_into_attainment() {
        let mut ev = SloEvaluator::new(SloPolicy::default());
        let obs = Obs::disabled();
        for i in 0..100 {
            ev.observe(&obs, &interval(i % 50 != 0));
        }
        let r = ev.report();
        assert_eq!(r.entities.len(), 1);
        let e = &r.entities[0];
        assert_eq!(e.intervals, 100);
        assert_eq!(e.good, 98);
        assert!((e.attainment - 0.98).abs() < 1e-12);
        assert!(e.violated, "0.98 < 0.99 target");
    }

    #[test]
    fn unmeasurable_intervals_count_bad_fail_closed() {
        let mut ev = SloEvaluator::new(SloPolicy::default());
        let obs = Obs::disabled();
        let mut o = interval(true);
        o.measurable = false;
        ev.observe(&obs, &o);
        let r = ev.report();
        assert_eq!(r.entities[0].good, 0, "unmeasurable is never good");
    }

    #[test]
    fn delivery_tolerance_absorbs_slack() {
        let p = SloPolicy {
            delivery_tolerance: 0.2,
            ..Default::default()
        };
        let mut ev = SloEvaluator::new(p);
        let obs = Obs::disabled();
        let mut o = interval(true);
        // required = min(2T, 1T) * 0.8 = 0.8T
        o.delivered_bps = 0.85e12;
        ev.observe(&obs, &o);
        o.delivered_bps = 0.75e12;
        ev.observe(&obs, &o);
        let r = ev.report();
        assert_eq!(r.entities[0].good, 1);
    }

    #[test]
    fn interval_events_carry_the_fold_labels() {
        let mut ev = SloEvaluator::new(SloPolicy::default());
        let obs = Obs::new(Clock::manual(12));
        ev.observe(&obs, &interval(true));
        let events = obs.trace.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!((e.span.as_str(), e.phase.as_str()), ("slo", "interval"));
        let get = |k: &str| {
            e.labels
                .iter()
                .find(|(lk, _)| lk == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        assert_eq!(get("entity"), "npg:2");
        assert_eq!(get("qos"), "c3");
        assert_eq!(get("good"), "true");
        assert_eq!(get("delivered_bps"), "1000000000000");
    }

    #[test]
    fn sustained_badness_emits_fire_then_clear_events() {
        let mut ev = SloEvaluator::new(SloPolicy::default());
        let obs = Obs::new(Clock::manual(0));
        for _ in 0..20 {
            ev.observe(&obs, &interval(false));
        }
        assert!(ev.any_firing());
        for _ in 0..20 {
            ev.observe(&obs, &interval(true));
        }
        assert!(!ev.any_firing());
        let phases: Vec<String> = obs
            .trace
            .events()
            .iter()
            .filter(|e| e.phase.starts_with("alert_"))
            .map(|e| e.phase.clone())
            .collect();
        assert_eq!(phases, vec!["alert_fire", "alert_clear"]);
        let r = ev.report();
        assert_eq!(r.entities[0].alerts.len(), 2);
        assert_eq!(r.entities[0].alerts[0].kind, AlertKind::Fire);
        assert_eq!(r.entities[0].alerts[0].window, "fast5/slow60");
    }

    #[test]
    fn offline_fold_reproduces_the_streaming_report() {
        let run = |via_trace: bool| {
            let mut ev = SloEvaluator::new(SloPolicy::default());
            let obs = Obs::new(Clock::counting(1));
            for i in 0..80u64 {
                let mut o = interval(true);
                o.demand_bps = 1.3e12 + (i as f64) * 1e9;
                o.delivered_bps = if (30..45).contains(&i) { 0.1e12 } else { 1e12 };
                o.measurable = !(60..65).contains(&i);
                ev.observe(&obs, &o);
            }
            if via_trace {
                let mut offline = SloEvaluator::new(SloPolicy::default());
                offline.fold_trace(&obs.trace.events());
                offline.report()
            } else {
                ev.report()
            }
        };
        let streaming = run(false);
        let offline = run(true);
        assert_eq!(streaming.render_json(), offline.render_json());
        assert_eq!(streaming.render_text(), offline.render_text());
    }

    #[test]
    fn entities_report_in_key_order() {
        let mut ev = SloEvaluator::new(SloPolicy::default());
        let obs = Obs::disabled();
        let mut b = interval(true);
        b.entity = "npg:9".to_string();
        ev.observe(&obs, &b);
        ev.observe(&obs, &interval(true));
        let r = ev.report();
        assert_eq!(r.entities[0].entity, "npg:2");
        assert_eq!(r.entities[1].entity, "npg:9");
    }
}
