//! No-flap property of the burn-rate alert state machine.
//!
//! The clear threshold (`clear_fraction × fast_burn`) sits strictly
//! below the fire threshold, so for any *monotone* burn series the
//! alert can transition at most Fire → Clear: refiring would need the
//! fast burn to climb back above a level it already fell below, which
//! a monotone series cannot do. These proptests pin that invariant
//! both on raw burn rates ([`BurnAlert::observe_burn`]) and on
//! good/bad interval outcomes ([`BurnAlert::observe`]).

use entitlement_slo::{AlertKind, BurnAlert, SloPolicy};
use proptest::prelude::*;

/// A monotone (ascending or descending) series of burn rates.
fn monotone_series() -> impl Strategy<Value = Vec<f64>> {
    (
        proptest::collection::vec(0.0f64..200.0, 1..150),
        any::<bool>(),
    )
        .prop_map(|(mut v, ascending)| {
            v.sort_by(f64::total_cmp);
            if !ascending {
                v.reverse();
            }
            v
        })
}

/// The only transition sequences a monotone series may produce: never
/// a Clear before a Fire, never a second Fire after a Clear.
fn assert_no_flap(kinds: &[AlertKind]) {
    assert!(
        matches!(
            kinds,
            [] | [AlertKind::Fire] | [AlertKind::Fire, AlertKind::Clear]
        ),
        "flapping transition sequence: {kinds:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Driving the raw state machine with any monotone burn series
    /// (the slow window scaled by an arbitrary factor stays monotone
    /// too) yields a prefix of [Fire, Clear] — no flapping.
    #[test]
    fn monotone_burn_series_never_flaps(
        burns in monotone_series(),
        scale in 0.1f64..1.0,
    ) {
        let policy = SloPolicy::default();
        let mut alert = BurnAlert::new(&policy, 0.99);
        let mut kinds = Vec::new();
        for &b in &burns {
            if let Some(t) = alert.observe_burn(b, b * scale) {
                kinds.push(t.kind);
            }
        }
        assert_no_flap(&kinds);
    }

    /// Interval outcomes sorted into one run of good and one run of
    /// bad cycles (an outage-then-recovery or recovery-then-outage
    /// shape) drive the windowed burns monotonically in each phase;
    /// the alert fires at most once and never refires after clearing.
    #[test]
    fn monotone_outcome_series_never_flaps(
        n_good in 0usize..120,
        n_bad in 0usize..120,
        bad_first in any::<bool>(),
        target in 0.9f64..1.0,
    ) {
        let policy = SloPolicy::default();
        let mut alert = BurnAlert::new(&policy, target);
        let mut kinds = Vec::new();
        let (first, second) = if bad_first {
            (n_bad, n_good)
        } else {
            (n_good, n_bad)
        };
        for i in 0..first + second {
            let bad = if bad_first { i < first } else { i >= first };
            if let Some(t) = alert.observe(bad) {
                kinds.push(t.kind);
            }
        }
        assert_no_flap(&kinds);
        // A fire can only come from a run of bad cycles.
        if n_bad == 0 {
            prop_assert!(kinds.is_empty(), "fired without bad cycles: {kinds:?}");
        }
    }
}
