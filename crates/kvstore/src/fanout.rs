//! Per-shard aggregate fan-out with a staleness bound.
//!
//! The flat enforcement path had every agent poll the global aggregate
//! key each cycle — O(agents) reads per cycle, the hot-path bottleneck
//! at 10⁶ hosts. The aggregation tree inverts that: one driver reads
//! each shard's partial once per cycle (O(shards)), folds them in shard
//! index order (a fixed fold order keeps float sums bit-identical
//! across runs and strategies), and broadcasts the result to every
//! consumer.
//!
//! [`ShardFanout`] is that driver-side fold state. It remembers the
//! last good partial per shard so a dark shard degrades gracefully:
//! within the staleness bound the held partial is served (healthy
//! shards keep metering and nobody unthrottles on a partial fold);
//! beyond the bound the shard is *missing* and the fold refuses to
//! produce an aggregate — fail-static, exactly like the flat path's
//! `Err(KvError)`, because unthrottling on a partial sum is never safe.

use crate::access::{KvError, KvShardAccess};

#[derive(Clone, Copy, Debug)]
struct Held {
    value: f64,
    as_of_ms: u64,
}

/// How one shard's partial was served in a snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ShardRead {
    /// Read live this cycle.
    Fresh(f64),
    /// The shard was unreachable; its last good partial is within the
    /// staleness bound and is served instead.
    Held(f64),
    /// The shard is unreachable and its last good partial (if any) is
    /// older than the staleness bound.
    Missing,
}

/// Driver-side fold state: last good partial per shard plus read
/// accounting for the O(shards) regression gate.
#[derive(Debug)]
pub struct ShardFanout {
    max_staleness_ms: u64,
    partials: Vec<Option<Held>>,
    last_ok: Vec<bool>,
    reads: u64,
    read_failures: u64,
    held_serves: u64,
}

impl ShardFanout {
    /// Fan-out over `shards` shards, serving held partials up to
    /// `max_staleness_ms` old.
    #[must_use]
    pub fn new(shards: usize, max_staleness_ms: u64) -> Self {
        ShardFanout {
            max_staleness_ms,
            partials: vec![None; shards],
            last_ok: vec![false; shards],
            reads: 0,
            read_failures: 0,
            held_serves: 0,
        }
    }

    /// Number of shards folded.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.partials.len()
    }

    /// Record one shard read (success updates the held partial).
    pub fn observe(&mut self, shard: usize, result: Result<f64, KvError>, now_ms: u64) {
        self.reads += 1;
        match result {
            Ok(value) => {
                self.partials[shard] = Some(Held {
                    value,
                    as_of_ms: now_ms,
                });
                self.last_ok[shard] = true;
            }
            Err(_) => {
                self.read_failures += 1;
                self.last_ok[shard] = false;
            }
        }
    }

    /// Classify every shard as of `now_ms`. Call once per cycle after
    /// observing all shards: held serves are counted per snapshot.
    pub fn snapshot(&mut self, now_ms: u64) -> FanoutSnapshot {
        let mut shards = Vec::with_capacity(self.partials.len());
        for (s, partial) in self.partials.iter().enumerate() {
            let read = if self.last_ok[s] {
                match partial {
                    Some(h) => ShardRead::Fresh(h.value),
                    None => ShardRead::Missing,
                }
            } else {
                match partial {
                    // The bound is INCLUSIVE: a partial aged exactly
                    // `max_staleness_ms` is still served. With the
                    // engine's `staleness_ms = staleness_cycles ×
                    // cycle_ms`, a shard that publishes at cycle `c`
                    // and goes dark is held through the read at cycle
                    // `c + staleness_cycles` (age == bound) and turns
                    // Missing one read later — "survive exactly N dark
                    // cycles". An exclusive bound would silently make
                    // `staleness_cycles = 1` mean zero dark-cycle
                    // tolerance. Pinned by
                    // `held_partial_boundary_is_inclusive`.
                    Some(h) if now_ms.saturating_sub(h.as_of_ms) <= self.max_staleness_ms => {
                        self.held_serves += 1;
                        ShardRead::Held(h.value)
                    }
                    _ => ShardRead::Missing,
                }
            };
            shards.push(read);
        }
        FanoutSnapshot { shards }
    }

    /// Read every shard's `prefix` partial from `kv` and snapshot —
    /// the synchronous one-call-per-cycle driver path.
    pub fn refresh<K: KvShardAccess + ?Sized>(
        &mut self,
        kv: &K,
        prefix: &str,
        now_ms: u64,
    ) -> FanoutSnapshot {
        for s in 0..self.partials.len() {
            let result = kv.try_shard_aggregate(prefix, s, now_ms);
            self.observe(s, result, now_ms);
        }
        self.snapshot(now_ms)
    }

    /// Total shard reads issued (the O(shards) regression gate counts
    /// these against cycles × shards).
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Shard reads that returned `Err`.
    #[must_use]
    pub fn read_failures(&self) -> u64 {
        self.read_failures
    }

    /// Partials served from the held copy across all snapshots.
    #[must_use]
    pub fn held_serves(&self) -> u64 {
        self.held_serves
    }
}

/// One cycle's classified per-shard partials, in shard index order.
#[derive(Clone, Debug)]
pub struct FanoutSnapshot {
    shards: Vec<ShardRead>,
}

impl FanoutSnapshot {
    /// Per-shard reads in shard index order.
    #[must_use]
    pub fn shards(&self) -> &[ShardRead] {
        &self.shards
    }

    /// The metering fold: shard-index-order sum over fresh *and* held
    /// partials. Any missing shard poisons the fold (`Err`) — consumers
    /// go fail-static rather than meter on a partial sum.
    ///
    /// # Errors
    ///
    /// [`KvError::ShardUnavailable`] when at least one shard is
    /// [`ShardRead::Missing`].
    pub fn fold(&self) -> Result<f64, KvError> {
        let mut sum = 0.0;
        for read in &self.shards {
            match read {
                ShardRead::Fresh(v) | ShardRead::Held(v) => sum += v,
                ShardRead::Missing => return Err(KvError::ShardUnavailable),
            }
        }
        Ok(sum)
    }

    /// The live (observability) fold: shard-index-order sum over fresh
    /// partials only. During a dark-shard window this is the global
    /// aggregate degraded by exactly the dark shard's contribution.
    #[must_use]
    pub fn fold_live(&self) -> f64 {
        let mut sum = 0.0;
        for read in &self.shards {
            if let ShardRead::Fresh(v) = read {
                sum += v;
            }
        }
        sum
    }

    /// Fresh partial per shard (`None` when the shard read failed).
    #[must_use]
    pub fn fresh_values(&self) -> Vec<Option<f64>> {
        self.shards
            .iter()
            .map(|r| match r {
                ShardRead::Fresh(v) => Some(*v),
                _ => None,
            })
            .collect()
    }

    /// Count of shards served fresh.
    #[must_use]
    pub fn fresh(&self) -> usize {
        self.shards
            .iter()
            .filter(|r| matches!(r, ShardRead::Fresh(_)))
            .count()
    }

    /// Count of shards served from the held copy.
    #[must_use]
    pub fn held(&self) -> usize {
        self.shards
            .iter()
            .filter(|r| matches!(r, ShardRead::Held(_)))
            .count()
    }

    /// Count of shards with no servable partial.
    #[must_use]
    pub fn missing(&self) -> usize {
        self.shards
            .iter()
            .filter(|r| matches!(r, ShardRead::Missing))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ShardedStore, StoreConfig};
    use std::time::Duration;

    #[test]
    fn fresh_fold_sums_in_shard_order() {
        let mut f = ShardFanout::new(3, 100);
        f.observe(0, Ok(1.0), 0);
        f.observe(1, Ok(2.0), 0);
        f.observe(2, Ok(4.0), 0);
        let snap = f.snapshot(0);
        assert_eq!(snap.fold(), Ok(7.0));
        assert_eq!(snap.fold_live(), 7.0);
        assert_eq!((snap.fresh(), snap.held(), snap.missing()), (3, 0, 0));
        assert_eq!(f.reads(), 3);
        assert_eq!(f.read_failures(), 0);
    }

    #[test]
    fn dark_shard_is_held_within_bound_then_missing() {
        let mut f = ShardFanout::new(2, 50);
        f.observe(0, Ok(1.0), 100);
        f.observe(1, Ok(2.0), 100);
        // Shard 1 goes dark at t=150: its t=100 partial is 50 ms old —
        // exactly at the bound, still served.
        f.observe(0, Ok(1.5), 150);
        f.observe(1, Err(KvError::ShardUnavailable), 150);
        let snap = f.snapshot(150);
        assert_eq!(snap.shards()[1], ShardRead::Held(2.0));
        assert_eq!(snap.fold(), Ok(3.5), "held partial keeps the fold whole");
        assert_eq!(snap.fold_live(), 1.5, "live fold degrades by the dark shard");
        // Still dark at t=200: beyond the bound, the fold poisons.
        f.observe(0, Ok(1.5), 200);
        f.observe(1, Err(KvError::ShardUnavailable), 200);
        let snap = f.snapshot(200);
        assert_eq!(snap.shards()[1], ShardRead::Missing);
        assert_eq!(snap.fold(), Err(KvError::ShardUnavailable));
        assert_eq!(snap.fresh_values(), vec![Some(1.5), None]);
        assert_eq!(f.held_serves(), 1);
        assert_eq!(f.read_failures(), 2);
    }

    #[test]
    fn held_partial_boundary_is_inclusive() {
        // Off-by-one pin of the staleness comparison. Publish at
        // t=1000 with a one-cycle bound (1000 ms), then go dark:
        //   age == bound      → Held (the fold stays whole),
        //   age == bound + 1  → Missing (the fold poisons).
        let mut f = ShardFanout::new(1, 1000);
        f.observe(0, Ok(3.0), 1000);
        f.observe(0, Err(KvError::ShardUnavailable), 2000);
        let snap = f.snapshot(2000);
        assert_eq!(snap.shards()[0], ShardRead::Held(3.0));
        assert_eq!(snap.fold(), Ok(3.0), "age == bound must still serve");
        let snap = f.snapshot(2001);
        assert_eq!(snap.shards()[0], ShardRead::Missing);
        assert_eq!(
            snap.fold(),
            Err(KvError::ShardUnavailable),
            "age == bound + 1 must poison the fold"
        );
        assert_eq!(f.held_serves(), 1, "held served exactly once");
    }

    #[test]
    fn never_observed_shard_is_missing() {
        let mut f = ShardFanout::new(2, 1000);
        f.observe(0, Ok(1.0), 0);
        f.observe(1, Err(KvError::ServerDown), 0);
        let snap = f.snapshot(0);
        assert_eq!(snap.shards()[1], ShardRead::Missing);
        assert_eq!(snap.fold(), Err(KvError::ShardUnavailable));
    }

    #[test]
    fn recovery_replaces_the_held_partial() {
        let mut f = ShardFanout::new(1, 10);
        f.observe(0, Ok(5.0), 0);
        f.observe(0, Err(KvError::ShardUnavailable), 5);
        assert_eq!(f.snapshot(5).shards()[0], ShardRead::Held(5.0));
        f.observe(0, Ok(7.0), 20);
        assert_eq!(f.snapshot(20).shards()[0], ShardRead::Fresh(7.0));
        assert_eq!(f.snapshot(20).fold(), Ok(7.0));
    }

    #[test]
    fn refresh_reads_each_shard_once() {
        let store = ShardedStore::new(StoreConfig {
            shards: 4,
            ttl: Duration::from_secs(60),
        });
        for s in 0..4 {
            store.put_in_shard(s, &format!("rates/x/total/s{s}"), (s as f64) + 0.5, 0);
        }
        let mut f = ShardFanout::new(4, 0);
        let snap = f.refresh(&store, "rates/x/total/", 0);
        assert_eq!(snap.fold(), Ok(0.5 + 1.5 + 2.5 + 3.5));
        assert_eq!(f.reads(), 4, "one read per shard per refresh");
        f.refresh(&store, "rates/x/total/", 0);
        assert_eq!(f.reads(), 8);
    }
}
