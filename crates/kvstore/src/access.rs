//! Fallible access to the rate store.
//!
//! The paper's runtime (§5.3) prescribes *fail-static* degradation:
//! when the telemetry plane is unhealthy, agents must keep enforcing
//! the last known decision rather than treating silence as "no
//! traffic". That only works if the type system distinguishes the two:
//! a missing key is **data** (`Ok(None)` — e.g. a drained host), while
//! an unreachable store is **absence of data** (`Err(KvError)`).
//!
//! [`KvAccess`] is the synchronous capability trait every store-like
//! layer implements: the real [`ShardedStore`] (infallible, always
//! `Ok`) and fault-injecting wrappers such as `entitlement-chaos`'s
//! `ChaosStore`. Enforcement agents are written against the trait, so
//! the same agent code runs against a healthy store in production
//! paths and a degraded one under chaos tests.

use crate::store::ShardedStore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a KV operation could not be served. Distinct from `Ok(None)`:
/// absence of a key is data, unavailability is absence of data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvError {
    /// The server task is gone (command channel closed) or a full
    /// outage is in effect.
    ServerDown,
    /// The shard holding the key — or at least one shard spanned by an
    /// aggregate — is unreachable.
    ShardUnavailable,
    /// The operation did not complete within the client's deadline.
    Timeout,
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::ServerDown => write!(f, "kv server unreachable"),
            KvError::ShardUnavailable => write!(f, "kv shard unavailable"),
            KvError::Timeout => write!(f, "kv operation timed out"),
        }
    }
}

impl std::error::Error for KvError {}

/// Synchronous, possibly-degraded access to a rate store.
pub trait KvAccess {
    /// Write a value at logical time `now_ms`.
    fn try_put(&self, key: &str, value: f64, now_ms: u64) -> Result<(), KvError>;

    /// Read a live value. `Ok(None)` means the key is absent or
    /// TTL-expired — a real observation, not a failure.
    fn try_get(&self, key: &str, now_ms: u64) -> Result<Option<f64>, KvError>;

    /// Sum of live values under `prefix`.
    fn try_aggregate(&self, prefix: &str, now_ms: u64) -> Result<f64, KvError>;
}

/// Shard-addressed access for the hierarchical aggregation tree.
///
/// The fleet runtime folds host rates into *per-shard partials* and
/// needs to place and read them by explicit shard index rather than by
/// key hash: fleet shard `s` publishes its two partial keys directly
/// into storage shard `s`, so a `ShardOutage` on storage shard `s`
/// darkens exactly fleet shard `s` and nothing else. The global
/// aggregate stays the plain prefix sum every existing
/// [`AggregateWatch`](crate::AggregateWatch) consumer already reads.
///
/// This is a separate trait (not new methods on [`KvAccess`]) so that
/// flat-path callers and test doubles keep compiling unchanged; only
/// the sharded runtime opts in.
pub trait KvShardAccess: KvAccess {
    /// Number of physical shards the store is split into.
    fn shard_count(&self) -> usize;

    /// Write `key` directly into shard `shard` (bypassing the key
    /// hash). Keys placed this way are visible to prefix aggregation
    /// but not to hash-routed `try_get`.
    fn try_put_shard(&self, shard: usize, key: &str, value: f64, now_ms: u64)
        -> Result<(), KvError>;

    /// Write a batch of keys into one shard. The default loops over
    /// [`try_put_shard`](Self::try_put_shard); stores that can take a
    /// single lock per batch override it.
    fn try_put_shard_batch(
        &self,
        shard: usize,
        entries: &[(String, f64)],
        now_ms: u64,
    ) -> Result<(), KvError> {
        for (key, value) in entries {
            self.try_put_shard(shard, key, *value, now_ms)?;
        }
        Ok(())
    }

    /// Sum of live values under `prefix` within one shard only. An
    /// `Err` means *this shard* is unreachable — other shards may
    /// still be served, which is what lets a dark shard degrade only
    /// its own hosts.
    fn try_shard_aggregate(&self, prefix: &str, shard: usize, now_ms: u64)
        -> Result<f64, KvError>;
}

impl KvAccess for ShardedStore {
    fn try_put(&self, key: &str, value: f64, now_ms: u64) -> Result<(), KvError> {
        self.put(key, value, now_ms);
        Ok(())
    }

    fn try_get(&self, key: &str, now_ms: u64) -> Result<Option<f64>, KvError> {
        Ok(self.get(key, now_ms))
    }

    fn try_aggregate(&self, prefix: &str, now_ms: u64) -> Result<f64, KvError> {
        Ok(self.aggregate_sum(prefix, now_ms))
    }
}

impl KvShardAccess for ShardedStore {
    fn shard_count(&self) -> usize {
        self.shard_count()
    }

    fn try_put_shard(
        &self,
        shard: usize,
        key: &str,
        value: f64,
        now_ms: u64,
    ) -> Result<(), KvError> {
        self.put_in_shard(shard, key, value, now_ms);
        Ok(())
    }

    fn try_put_shard_batch(
        &self,
        shard: usize,
        entries: &[(String, f64)],
        now_ms: u64,
    ) -> Result<(), KvError> {
        self.put_shard_batch(shard, entries, now_ms);
        Ok(())
    }

    fn try_shard_aggregate(
        &self,
        prefix: &str,
        shard: usize,
        now_ms: u64,
    ) -> Result<f64, KvError> {
        Ok(self.aggregate_sum_shard(prefix, shard, now_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use std::time::Duration;

    #[test]
    fn sharded_store_is_infallible() {
        let s = ShardedStore::new(StoreConfig {
            shards: 4,
            ttl: Duration::from_secs(10),
        });
        assert_eq!(s.try_put("k", 1.0, 0), Ok(()));
        assert_eq!(s.try_get("k", 0), Ok(Some(1.0)));
        assert_eq!(s.try_get("absent", 0), Ok(None), "absence is data");
        assert_eq!(s.try_aggregate("k", 0), Ok(1.0));
    }

    #[test]
    fn kv_error_renders() {
        assert_eq!(KvError::ServerDown.to_string(), "kv server unreachable");
        assert_eq!(KvError::ShardUnavailable.to_string(), "kv shard unavailable");
        assert_eq!(KvError::Timeout.to_string(), "kv operation timed out");
    }
}
