//! The async facade: a tokio task owning the store, cloneable clients,
//! and periodic aggregate broadcasting.
//!
//! Agents are tokio tasks; each holds a [`KvClient`]. A service-level
//! aggregator task periodically computes the prefix sum (the service's
//! TotalRate / ConformRate) and broadcasts it on a watch channel every
//! agent subscribes to — fully distributed reads, no controller in the
//! decision path (§5.1's second-generation architecture).
//!
//! Reads are **fallible**: a dead server task surfaces as
//! [`KvError::ServerDown`], never as a phantom `0.0` aggregate (which
//! the fleet would read as "no traffic" and unthrottle on). Callers
//! that cannot tolerate a transient failure wrap calls with a
//! [`RetryPolicy`].

use crate::access::KvError;
use crate::store::{ShardedStore, StoreConfig};
use serde::{Deserialize, Serialize};
use std::future::Future;
use std::sync::Arc;
use std::task::Poll;
use std::time::Duration;
use tokio::sync::{mpsc, oneshot, watch};

/// Commands understood by the server task.
enum Command {
    Put {
        key: String,
        value: f64,
        now_ms: u64,
    },
    Get {
        key: String,
        now_ms: u64,
        reply: oneshot::Sender<Option<f64>>,
    },
    Aggregate {
        prefix: String,
        now_ms: u64,
        reply: oneshot::Sender<f64>,
    },
    ShardAggregate {
        prefix: String,
        shard: usize,
        now_ms: u64,
        reply: oneshot::Sender<f64>,
    },
    PutShardBatch {
        shard: usize,
        entries: Vec<(String, f64)>,
        now_ms: u64,
    },
    Sweep {
        now_ms: u64,
    },
}

/// The server: owns the store, processes commands from clients.
pub struct KvServer {
    store: Arc<ShardedStore>,
    rx: mpsc::Receiver<Command>,
}

/// A cloneable client handle.
#[derive(Clone)]
pub struct KvClient {
    tx: mpsc::Sender<Command>,
    store: Arc<ShardedStore>,
}

/// Retry/timeout/backoff for client operations against a degraded
/// store: `attempts` tries total, exponential backoff starting at
/// `backoff` and capped at `max_backoff`, each attempt bounded by
/// `op_timeout` (None = wait forever on the reply channel).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts (≥ 1).
    pub attempts: u32,
    /// Initial backoff between attempts.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Per-attempt deadline.
    pub op_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            op_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no backoff, no deadline.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            op_timeout: None,
        }
    }

    /// The backoff before retry number `i` (0-based retry index).
    fn backoff_for(&self, i: u32) -> Duration {
        let mut b = self.backoff;
        for _ in 0..i {
            b = (b * 2).min(self.max_backoff);
        }
        b.min(self.max_backoff)
    }
}

/// Bound a future by a deadline; `Err(KvError::Timeout)` on expiry.
/// (The vendored tokio stub has no `tokio::time::timeout`, so this is
/// a minimal two-future race.)
pub async fn with_deadline<T>(
    dur: Duration,
    fut: impl Future<Output = T>,
) -> Result<T, KvError> {
    let mut fut = Box::pin(fut);
    let mut sleep = Box::pin(tokio::time::sleep(dur));
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = fut.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        if sleep.as_mut().poll(cx).is_ready() {
            return Poll::Ready(Err(KvError::Timeout));
        }
        Poll::Pending
    })
    .await
}

impl KvServer {
    /// Create a server and its first client.
    pub fn new(config: StoreConfig) -> (KvServer, KvClient) {
        let (tx, rx) = mpsc::channel(1024);
        let store = Arc::new(ShardedStore::new(config));
        (
            KvServer {
                store: Arc::clone(&store),
                rx,
            },
            KvClient { tx, store },
        )
    }

    /// Run the command loop until all clients drop.
    pub async fn run(mut self) {
        while let Some(cmd) = self.rx.recv().await {
            match cmd {
                Command::Put { key, value, now_ms } => self.store.put(&key, value, now_ms),
                Command::Get { key, now_ms, reply } => {
                    let _ = reply.send(self.store.get(&key, now_ms));
                }
                Command::Aggregate {
                    prefix,
                    now_ms,
                    reply,
                } => {
                    let _ = reply.send(self.store.aggregate_sum(&prefix, now_ms));
                }
                Command::ShardAggregate {
                    prefix,
                    shard,
                    now_ms,
                    reply,
                } => {
                    let _ = reply.send(self.store.aggregate_sum_shard(&prefix, shard, now_ms));
                }
                Command::PutShardBatch {
                    shard,
                    entries,
                    now_ms,
                } => {
                    self.store.put_shard_batch(shard, &entries, now_ms);
                }
                Command::Sweep { now_ms } => {
                    self.store.sweep(now_ms);
                }
            }
        }
    }
}

impl KvClient {
    /// Publish a value. `Err(ServerDown)` when the server task is gone
    /// — publishers may ignore it (UDP-style) but metrics should count.
    pub async fn put(&self, key: &str, value: f64, now_ms: u64) -> Result<(), KvError> {
        self.tx
            .send(Command::Put {
                key: key.to_string(),
                value,
                now_ms,
            })
            .await
            .map_err(|_| KvError::ServerDown)
    }

    /// Read a value. `Ok(None)` = key absent/expired (data);
    /// `Err(ServerDown)` = store unreachable (no data).
    pub async fn get(&self, key: &str, now_ms: u64) -> Result<Option<f64>, KvError> {
        let (reply, rx) = oneshot::channel();
        self.tx
            .send(Command::Get {
                key: key.to_string(),
                now_ms,
                reply,
            })
            .await
            .map_err(|_| KvError::ServerDown)?;
        rx.await.map_err(|_| KvError::ServerDown)
    }

    /// Aggregate a prefix. A dead server is an error, **not** `0.0`:
    /// zero is a legitimate aggregate ("fleet idle") and must never be
    /// conflated with "store unreachable".
    pub async fn aggregate(&self, prefix: &str, now_ms: u64) -> Result<f64, KvError> {
        let (reply, rx) = oneshot::channel();
        self.tx
            .send(Command::Aggregate {
                prefix: prefix.to_string(),
                now_ms,
                reply,
            })
            .await
            .map_err(|_| KvError::ServerDown)?;
        rx.await.map_err(|_| KvError::ServerDown)
    }

    /// Aggregate a prefix within a single shard — the fan-out read the
    /// aggregation-tree driver issues once per shard per cycle
    /// (O(shards) reads, replacing the flat path's per-agent global
    /// polls). Same error discipline as [`KvClient::aggregate`].
    pub async fn shard_aggregate(
        &self,
        prefix: &str,
        shard: usize,
        now_ms: u64,
    ) -> Result<f64, KvError> {
        let (reply, rx) = oneshot::channel();
        self.tx
            .send(Command::ShardAggregate {
                prefix: prefix.to_string(),
                shard,
                now_ms,
                reply,
            })
            .await
            .map_err(|_| KvError::ServerDown)?;
        rx.await.map_err(|_| KvError::ServerDown)
    }

    /// Publish a batch of keys directly into one shard (the sharded
    /// publish path: one command, one store lock, 2×shards keys per
    /// fleet cycle instead of 2×hosts).
    pub async fn put_shard_batch(
        &self,
        shard: usize,
        entries: Vec<(String, f64)>,
        now_ms: u64,
    ) -> Result<(), KvError> {
        self.tx
            .send(Command::PutShardBatch {
                shard,
                entries,
                now_ms,
            })
            .await
            .map_err(|_| KvError::ServerDown)
    }

    /// [`KvClient::aggregate`] under a [`RetryPolicy`]: retries with
    /// exponential backoff, each attempt optionally deadline-bounded.
    pub async fn aggregate_with_retry(
        &self,
        prefix: &str,
        now_ms: u64,
        policy: &RetryPolicy,
    ) -> Result<f64, KvError> {
        self.aggregate_with_retry_counted(prefix, now_ms, policy)
            .await
            .0
    }

    /// [`KvClient::aggregate_with_retry`], also reporting how many
    /// attempts were consumed (≥ 1) so callers can feed retry
    /// histograms.
    pub async fn aggregate_with_retry_counted(
        &self,
        prefix: &str,
        now_ms: u64,
        policy: &RetryPolicy,
    ) -> (Result<f64, KvError>, u32) {
        let mut last = KvError::ServerDown;
        let attempts = policy.attempts.max(1);
        for i in 0..attempts {
            if i > 0 {
                tokio::time::sleep(policy.backoff_for(i - 1)).await;
            }
            let attempt = self.aggregate(prefix, now_ms);
            let outcome = match policy.op_timeout {
                Some(d) => with_deadline(d, attempt).await.and_then(|r| r),
                None => attempt.await,
            };
            match outcome {
                Ok(v) => return (Ok(v), i + 1),
                Err(e) => last = e,
            }
        }
        (Err(last), attempts)
    }

    /// [`KvClient::get`] under a [`RetryPolicy`].
    pub async fn get_with_retry(
        &self,
        key: &str,
        now_ms: u64,
        policy: &RetryPolicy,
    ) -> Result<Option<f64>, KvError> {
        self.get_with_retry_counted(key, now_ms, policy).await.0
    }

    /// [`KvClient::get_with_retry`], also reporting attempts consumed.
    pub async fn get_with_retry_counted(
        &self,
        key: &str,
        now_ms: u64,
        policy: &RetryPolicy,
    ) -> (Result<Option<f64>, KvError>, u32) {
        let mut last = KvError::ServerDown;
        let attempts = policy.attempts.max(1);
        for i in 0..attempts {
            if i > 0 {
                tokio::time::sleep(policy.backoff_for(i - 1)).await;
            }
            let attempt = self.get(key, now_ms);
            let outcome = match policy.op_timeout {
                Some(d) => with_deadline(d, attempt).await.and_then(|r| r),
                None => attempt.await,
            };
            match outcome {
                Ok(v) => return (Ok(v), i + 1),
                Err(e) => last = e,
            }
        }
        (Err(last), attempts)
    }

    /// Request a TTL sweep.
    pub async fn sweep(&self, now_ms: u64) {
        let _ = self.tx.send(Command::Sweep { now_ms }).await;
    }

    /// Direct synchronous read path (bypasses the command queue): used by
    /// simulations where the caller already holds the logical clock.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Shared handle to the backing store (fault-injection wrappers
    /// need ownership to outlive the borrow).
    pub fn store_arc(&self) -> Arc<ShardedStore> {
        Arc::clone(&self.store)
    }
}

/// A periodically-updated aggregate subscription.
///
/// Fail-static at the subscription layer: when an aggregate read
/// fails, nothing is broadcast and subscribers keep observing the last
/// good value instead of a phantom zero.
pub struct AggregateWatch {
    /// The latest aggregate value.
    pub rx: watch::Receiver<f64>,
}

impl AggregateWatch {
    /// Spawn an aggregator task summing `prefix` every `interval`. The
    /// caller supplies the clock (`now_ms`, logical milliseconds) so
    /// this crate stays free of ambient wall-clock reads and
    /// simulations can drive it deterministically.
    pub fn spawn<C>(
        client: KvClient,
        prefix: String,
        interval: Duration,
        clock: C,
    ) -> AggregateWatch
    where
        C: Fn() -> u64 + Send + 'static,
    {
        let (tx, rx) = watch::channel(0.0);
        tokio::spawn(async move {
            loop {
                tokio::time::sleep(interval).await;
                let now_ms = clock();
                match client.aggregate(&prefix, now_ms).await {
                    Ok(sum) => {
                        if tx.send(sum).is_err() {
                            break; // all subscribers gone
                        }
                    }
                    // Server gone: stop broadcasting; subscribers hold
                    // the last good value (fail-static).
                    Err(_) => break,
                }
            }
        });
        AggregateWatch { rx }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn put_get_through_service() {
        let (server, client) = KvServer::new(StoreConfig::default());
        tokio::spawn(server.run());
        client.put("k", 42.0, 0).await.unwrap();
        assert_eq!(client.get("k", 100).await, Ok(Some(42.0)));
        assert_eq!(client.get("missing", 100).await, Ok(None));
    }

    #[tokio::test]
    async fn server_down_is_an_error_not_zero() {
        // The server is dropped without ever running: every client call
        // must surface ServerDown — and an aggregate must NOT read as
        // an innocent 0.0 (that would unthrottle a whole fleet).
        let (server, client) = KvServer::new(StoreConfig::default());
        drop(server);
        assert_eq!(client.put("k", 1.0, 0).await, Err(KvError::ServerDown));
        assert_eq!(client.get("k", 0).await, Err(KvError::ServerDown));
        assert_eq!(
            client.aggregate("rates/", 0).await,
            Err(KvError::ServerDown)
        );
        // Contrast: a *live* server with an absent key is Ok(None) —
        // "value absent" and "server dropped" are different worlds.
        let (server, client) = KvServer::new(StoreConfig::default());
        tokio::spawn(server.run());
        assert_eq!(client.get("k", 0).await, Ok(None));
        assert_eq!(client.aggregate("rates/", 0).await, Ok(0.0));
    }

    #[tokio::test]
    async fn retry_policy_retries_then_gives_up() {
        let (server, client) = KvServer::new(StoreConfig::default());
        drop(server);
        let policy = RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            op_timeout: Some(Duration::from_millis(20)),
        };
        let r = client.aggregate_with_retry("rates/", 0, &policy).await;
        assert_eq!(r, Err(KvError::ServerDown));
        let r = client.get_with_retry("k", 0, &policy).await;
        assert_eq!(r, Err(KvError::ServerDown));
    }

    #[tokio::test]
    async fn retry_policy_succeeds_on_healthy_store() {
        let (server, client) = KvServer::new(StoreConfig::default());
        tokio::spawn(server.run());
        client.put("rates/x/h0", 5.0, 0).await.unwrap();
        let r = client
            .aggregate_with_retry("rates/", 10, &RetryPolicy::default())
            .await;
        assert_eq!(r, Ok(5.0));
    }

    #[tokio::test]
    async fn deadline_times_out_a_stuck_future() {
        let stuck = std::future::pending::<u64>();
        let r = with_deadline(Duration::from_millis(5), stuck).await;
        assert_eq!(r, Err(KvError::Timeout));
        let quick = async { 7u64 };
        let r = with_deadline(Duration::from_millis(50), quick).await;
        assert_eq!(r, Ok(7));
    }

    #[tokio::test]
    async fn many_agents_publish_and_aggregate() {
        let (server, client) = KvServer::new(StoreConfig::default());
        tokio::spawn(server.run());
        let mut handles = Vec::new();
        for h in 0..100 {
            let c = client.clone();
            handles.push(tokio::spawn(async move {
                c.put(&format!("rates/cold/h{h}"), 1.5, 0).await.unwrap();
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
        let sum = client.aggregate("rates/cold/", 100).await.unwrap();
        assert!((sum - 150.0).abs() < 1e-9);
    }

    #[tokio::test]
    async fn aggregate_watch_broadcasts() {
        let (server, client) = KvServer::new(StoreConfig::default());
        tokio::spawn(server.run());
        client.put("rates/x/h0", 10.0, 0).await.unwrap();
        client.put("rates/x/h1", 20.0, 0).await.unwrap();
        let t0 = std::time::Instant::now();
        let mut w = AggregateWatch::spawn(
            client.clone(),
            "rates/x/".to_string(),
            Duration::from_millis(10),
            move || t0.elapsed().as_millis() as u64,
        );
        // Wait for at least one broadcast.
        w.rx.changed().await.unwrap();
        let v = *w.rx.borrow();
        assert!((v - 30.0).abs() < 1e-9, "got {v}");
    }

    #[tokio::test]
    async fn shard_batch_publish_and_shard_aggregate() {
        let (server, client) = KvServer::new(StoreConfig {
            shards: 4,
            ttl: Duration::from_secs(60),
        });
        tokio::spawn(server.run());
        for s in 0..4usize {
            client
                .put_shard_batch(
                    s,
                    vec![
                        (format!("rates/x/total/s{s}"), 10.0 * (s as f64 + 1.0)),
                        (format!("rates/x/conform/s{s}"), 5.0 * (s as f64 + 1.0)),
                    ],
                    0,
                )
                .await
                .unwrap();
        }
        for s in 0..4usize {
            assert_eq!(
                client.shard_aggregate("rates/x/total/", s, 10).await,
                Ok(10.0 * (s as f64 + 1.0))
            );
        }
        // The flat global aggregate still folds over all partials.
        assert_eq!(client.aggregate("rates/x/total/", 10).await, Ok(100.0));
        assert_eq!(client.aggregate("rates/x/conform/", 10).await, Ok(50.0));
        // A dead server errors, never phantom-zeros.
        let (server, client) = KvServer::new(StoreConfig::default());
        drop(server);
        assert_eq!(
            client.shard_aggregate("rates/", 0, 0).await,
            Err(KvError::ServerDown)
        );
        assert_eq!(
            client.put_shard_batch(0, vec![], 0).await,
            Err(KvError::ServerDown)
        );
    }

    #[tokio::test]
    async fn sweep_via_client() {
        let (server, client) = KvServer::new(StoreConfig {
            shards: 4,
            ttl: Duration::from_millis(100),
        });
        tokio::spawn(server.run());
        client.put("old", 1.0, 0).await.unwrap();
        client.sweep(10_000).await;
        // Give the sweep command time to process.
        tokio::time::sleep(Duration::from_millis(20)).await;
        assert_eq!(
            client.get("old", 0).await,
            Ok(None),
            "swept even at old ts"
        );
    }

    #[tokio::test]
    async fn direct_store_access_is_consistent() {
        let (server, client) = KvServer::new(StoreConfig::default());
        tokio::spawn(server.run());
        client.put("k", 7.0, 0).await.unwrap();
        // The async put has been processed once get returns.
        assert_eq!(client.get("k", 0).await, Ok(Some(7.0)));
        assert_eq!(client.store().get("k", 0), Some(7.0));
    }
}
