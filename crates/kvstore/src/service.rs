//! The async facade: a tokio task owning the store, cloneable clients,
//! and periodic aggregate broadcasting.
//!
//! Agents are tokio tasks; each holds a [`KvClient`]. A service-level
//! aggregator task periodically computes the prefix sum (the service's
//! TotalRate / ConformRate) and broadcasts it on a watch channel every
//! agent subscribes to — fully distributed reads, no controller in the
//! decision path (§5.1's second-generation architecture).

use crate::store::{ShardedStore, StoreConfig};
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::{mpsc, oneshot, watch};

/// Commands understood by the server task.
enum Command {
    Put {
        key: String,
        value: f64,
        now_ms: u64,
    },
    Get {
        key: String,
        now_ms: u64,
        reply: oneshot::Sender<Option<f64>>,
    },
    Aggregate {
        prefix: String,
        now_ms: u64,
        reply: oneshot::Sender<f64>,
    },
    Sweep {
        now_ms: u64,
    },
}

/// The server: owns the store, processes commands from clients.
pub struct KvServer {
    store: Arc<ShardedStore>,
    rx: mpsc::Receiver<Command>,
}

/// A cloneable client handle.
#[derive(Clone)]
pub struct KvClient {
    tx: mpsc::Sender<Command>,
    store: Arc<ShardedStore>,
}

impl KvServer {
    /// Create a server and its first client.
    pub fn new(config: StoreConfig) -> (KvServer, KvClient) {
        let (tx, rx) = mpsc::channel(1024);
        let store = Arc::new(ShardedStore::new(config));
        (
            KvServer {
                store: Arc::clone(&store),
                rx,
            },
            KvClient { tx, store },
        )
    }

    /// Run the command loop until all clients drop.
    pub async fn run(mut self) {
        while let Some(cmd) = self.rx.recv().await {
            match cmd {
                Command::Put { key, value, now_ms } => self.store.put(&key, value, now_ms),
                Command::Get { key, now_ms, reply } => {
                    let _ = reply.send(self.store.get(&key, now_ms));
                }
                Command::Aggregate {
                    prefix,
                    now_ms,
                    reply,
                } => {
                    let _ = reply.send(self.store.aggregate_sum(&prefix, now_ms));
                }
                Command::Sweep { now_ms } => {
                    self.store.sweep(now_ms);
                }
            }
        }
    }
}

impl KvClient {
    /// Publish a value (fire-and-forget, like a UDP stats publish).
    pub async fn put(&self, key: &str, value: f64, now_ms: u64) {
        let _ = self
            .tx
            .send(Command::Put {
                key: key.to_string(),
                value,
                now_ms,
            })
            .await;
    }

    /// Read a value.
    pub async fn get(&self, key: &str, now_ms: u64) -> Option<f64> {
        let (reply, rx) = oneshot::channel();
        if self
            .tx
            .send(Command::Get {
                key: key.to_string(),
                now_ms,
                reply,
            })
            .await
            .is_err()
        {
            return None;
        }
        rx.await.ok().flatten()
    }

    /// Aggregate a prefix.
    pub async fn aggregate(&self, prefix: &str, now_ms: u64) -> f64 {
        let (reply, rx) = oneshot::channel();
        if self
            .tx
            .send(Command::Aggregate {
                prefix: prefix.to_string(),
                now_ms,
                reply,
            })
            .await
            .is_err()
        {
            return 0.0;
        }
        rx.await.unwrap_or(0.0)
    }

    /// Request a TTL sweep.
    pub async fn sweep(&self, now_ms: u64) {
        let _ = self.tx.send(Command::Sweep { now_ms }).await;
    }

    /// Direct synchronous read path (bypasses the command queue): used by
    /// simulations where the caller already holds the logical clock.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }
}

/// A periodically-updated aggregate subscription.
pub struct AggregateWatch {
    /// The latest aggregate value.
    pub rx: watch::Receiver<f64>,
}

impl AggregateWatch {
    /// Spawn an aggregator task summing `prefix` every `interval` using
    /// wall-clock milliseconds since `t0`. Returns the watch handle.
    pub fn spawn(client: KvClient, prefix: String, interval: Duration) -> AggregateWatch {
        let (tx, rx) = watch::channel(0.0);
        tokio::spawn(async move {
            let t0 = std::time::Instant::now();
            loop {
                tokio::time::sleep(interval).await;
                let now_ms = t0.elapsed().as_millis() as u64;
                let sum = client.aggregate(&prefix, now_ms).await;
                if tx.send(sum).is_err() {
                    break; // all subscribers gone
                }
            }
        });
        AggregateWatch { rx }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn put_get_through_service() {
        let (server, client) = KvServer::new(StoreConfig::default());
        tokio::spawn(server.run());
        client.put("k", 42.0, 0).await;
        assert_eq!(client.get("k", 100).await, Some(42.0));
        assert_eq!(client.get("missing", 100).await, None);
    }

    #[tokio::test]
    async fn many_agents_publish_and_aggregate() {
        let (server, client) = KvServer::new(StoreConfig::default());
        tokio::spawn(server.run());
        let mut handles = Vec::new();
        for h in 0..100 {
            let c = client.clone();
            handles.push(tokio::spawn(async move {
                c.put(&format!("rates/cold/h{h}"), 1.5, 0).await;
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
        let sum = client.aggregate("rates/cold/", 100).await;
        assert!((sum - 150.0).abs() < 1e-9);
    }

    #[tokio::test]
    async fn aggregate_watch_broadcasts() {
        let (server, client) = KvServer::new(StoreConfig::default());
        tokio::spawn(server.run());
        client.put("rates/x/h0", 10.0, 0).await;
        client.put("rates/x/h1", 20.0, 0).await;
        let mut w = AggregateWatch::spawn(
            client.clone(),
            "rates/x/".to_string(),
            Duration::from_millis(10),
        );
        // Wait for at least one broadcast.
        w.rx.changed().await.unwrap();
        let v = *w.rx.borrow();
        assert!((v - 30.0).abs() < 1e-9, "got {v}");
    }

    #[tokio::test]
    async fn sweep_via_client() {
        let (server, client) = KvServer::new(StoreConfig {
            shards: 4,
            ttl: Duration::from_millis(100),
        });
        tokio::spawn(server.run());
        client.put("old", 1.0, 0).await;
        client.sweep(10_000).await;
        // Give the sweep command time to process.
        tokio::time::sleep(Duration::from_millis(20)).await;
        assert_eq!(client.get("old", 0).await, None, "swept even at old ts");
    }

    #[tokio::test]
    async fn direct_store_access_is_consistent() {
        let (server, client) = KvServer::new(StoreConfig::default());
        tokio::spawn(server.run());
        client.put("k", 7.0, 0).await;
        // The async put has been processed once get returns.
        assert_eq!(client.get("k", 0).await, Some(7.0));
        assert_eq!(client.store().get("k", 0), Some(7.0));
    }
}
