//! # entitlement-kvstore
//!
//! A stand-in for "Meta's internal distributed key-value store" that the
//! enforcement agents publish into (paper §5.1): "Each agent publishes
//! flow rate information (bits/sec) periodically... These rates are
//! aggregated remotely across the entire service and read by the agent
//! periodically."
//!
//! Two layers:
//!
//! * [`store::ShardedStore`] — the synchronous core: a fixed number of
//!   mutex-guarded shards, TTL'd numeric entries, prefix-sum aggregation.
//!   Deterministic and directly testable.
//! * [`service`] — the async facade: a cloneable [`service::KvClient`]
//!   speaking to a tokio task, plus a periodic aggregator broadcasting
//!   prefix sums on a `tokio::sync::watch` channel, which is how a fleet
//!   of agent tasks sees the service-wide TotalRate/ConformRate without
//!   a central controller.
//! * [`access`] — the fallible access layer: [`access::KvError`]
//!   distinguishes "store unreachable" from "key absent" (zero is a
//!   legitimate aggregate; an outage is not), and the
//!   [`access::KvAccess`] trait lets fault-injection wrappers stand in
//!   for the real store so agents can be tested fail-static. The
//!   [`access::KvShardAccess`] extension adds the shard-addressed
//!   publish/fold path the hierarchical aggregation tree runs on.
//! * [`fanout`] — the per-shard aggregate fan-out:
//!   [`fanout::ShardFanout`] folds per-shard partials in shard index
//!   order with a staleness bound, turning the flat path's O(agents)
//!   global polls into O(shards) reads per cycle.
//!
//! This crate is deterministic: no ambient wall-clock or randomness —
//! every operation takes a caller-supplied logical `now_ms`, and
//! [`service::AggregateWatch`] takes the clock as a closure.

#![forbid(unsafe_code)]

pub mod access;
pub mod fanout;
pub mod observed;
pub mod service;
pub mod store;

pub use access::{KvAccess, KvError, KvShardAccess};
pub use fanout::{FanoutSnapshot, ShardFanout, ShardRead};
pub use observed::ObservedKv;
pub use service::{with_deadline, AggregateWatch, KvClient, KvServer, RetryPolicy};
pub use store::{key_hash, ShardedStore, StoreConfig};
