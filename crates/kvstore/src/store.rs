//! The synchronous sharded store core.

// Shard mutexes go through the racecheck sync shim: a plain
// `parking_lot::Mutex` alias normally, a lock-order- and
// happens-before-recording wrapper under `--features racecheck`.
use entitlement_racecheck::sync::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// Store configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Number of shards (power of two recommended).
    pub shards: usize,
    /// Entry time-to-live; stale entries drop out of aggregates (a dead
    /// agent's rate must stop counting against the service).
    pub ttl: Duration,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 16,
            ttl: Duration::from_secs(60),
        }
    }
}

#[derive(Clone, Debug)]
struct Entry {
    value: f64,
    /// Logical write timestamp in milliseconds (caller-supplied clock so
    /// simulations stay deterministic).
    written_ms: u64,
}

/// A sharded, TTL'd, numeric key-value store with prefix aggregation.
pub struct ShardedStore {
    config: StoreConfig,
    shards: Vec<Mutex<HashMap<String, Entry>>>,
}

/// FNV-1a 64-bit: stable across runs, good enough for shard spreading.
/// Public so fault-injection layers can reproduce the key→shard map.
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl ShardedStore {
    /// Create a store.
    pub fn new(config: StoreConfig) -> Self {
        assert!(config.shards > 0);
        let shards = (0..config.shards)
            .map(|_| Mutex::new(HashMap::new()))
            .collect();
        ShardedStore { config, shards }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Entry>> {
        &self.shards[self.shard_index(key)]
    }

    /// The shard a key lives on (fault plans target shards by index).
    pub fn shard_index(&self, key: &str) -> usize {
        (key_hash(key) % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Write a value at logical time `now_ms`.
    pub fn put(&self, key: &str, value: f64, now_ms: u64) {
        self.shard(key).lock().insert(
            key.to_string(),
            Entry {
                value,
                written_ms: now_ms,
            },
        );
    }

    /// Read a live value (TTL-checked against `now_ms`).
    pub fn get(&self, key: &str, now_ms: u64) -> Option<f64> {
        let guard = self.shard(key).lock();
        guard.get(key).and_then(|e| {
            if self.is_live(e, now_ms) {
                Some(e.value)
            } else {
                None
            }
        })
    }

    /// Delete a key; returns whether it existed.
    pub fn delete(&self, key: &str) -> bool {
        self.shard(key).lock().remove(key).is_some()
    }

    fn is_live(&self, e: &Entry, now_ms: u64) -> bool {
        now_ms.saturating_sub(e.written_ms) as u128 <= self.config.ttl.as_millis()
    }

    /// Write a value directly into shard `shard`, bypassing the key
    /// hash (panics if `shard` is out of range).
    ///
    /// The aggregation tree places fleet shard `s`'s partial keys on
    /// storage shard `s` so shard-scoped faults map one-to-one onto
    /// fleet shards. Keys written this way are visible to
    /// [`aggregate_sum`](Self::aggregate_sum) /
    /// [`aggregate_sum_shard`](Self::aggregate_sum_shard) but *not* to
    /// hash-routed [`get`](Self::get) (which would look on the wrong
    /// shard) — partials are aggregate-only state.
    pub fn put_in_shard(&self, shard: usize, key: &str, value: f64, now_ms: u64) {
        self.shards[shard].lock().insert(
            key.to_string(),
            Entry {
                value,
                written_ms: now_ms,
            },
        );
    }

    /// Write a batch of keys into one shard under a single lock
    /// acquisition — the fleet publish path folds 10⁶ hosts into
    /// 2×shards keys per cycle, and batching keeps that to one lock
    /// per shard instead of one per key.
    pub fn put_shard_batch(&self, shard: usize, entries: &[(String, f64)], now_ms: u64) {
        let mut guard = self.shards[shard].lock();
        for (key, value) in entries {
            guard.insert(
                key.clone(),
                Entry {
                    value: *value,
                    written_ms: now_ms,
                },
            );
        }
    }

    /// Sum of live values under `prefix` within one shard only.
    ///
    /// Entries iterate in `HashMap` order, so callers that need
    /// bit-identical sums must ensure at most one distinct value per
    /// `(prefix, shard)` — the aggregation tree does (one partial key
    /// per fleet shard), and the per-host flat path sums equal-valued
    /// keys where order cannot change the result.
    pub fn aggregate_sum_shard(&self, prefix: &str, shard: usize, now_ms: u64) -> f64 {
        let mut sum = 0.0;
        let guard = self.shards[shard].lock();
        for (k, e) in guard.iter() {
            if k.starts_with(prefix) && self.is_live(e, now_ms) {
                sum += e.value;
            }
        }
        sum
    }

    /// Sum of all live values whose key starts with `prefix` — the
    /// service-wide rate aggregation agents read back.
    pub fn aggregate_sum(&self, prefix: &str, now_ms: u64) -> f64 {
        let mut sum = 0.0;
        for shard in &self.shards {
            let guard = shard.lock();
            for (k, e) in guard.iter() {
                if k.starts_with(prefix) && self.is_live(e, now_ms) {
                    sum += e.value;
                }
            }
        }
        sum
    }

    /// Count of live keys under a prefix.
    pub fn count(&self, prefix: &str, now_ms: u64) -> usize {
        let mut n = 0;
        for shard in &self.shards {
            let guard = shard.lock();
            n += guard
                .iter()
                .filter(|(k, e)| k.starts_with(prefix) && self.is_live(e, now_ms))
                .count();
        }
        n
    }

    /// Drop every expired entry (periodic compaction).
    pub fn sweep(&self, now_ms: u64) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut guard = shard.lock();
            let before = guard.len();
            guard.retain(|_, e| self.is_live(e, now_ms));
            removed += before - guard.len();
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ShardedStore {
        ShardedStore::new(StoreConfig {
            shards: 8,
            ttl: Duration::from_secs(10),
        })
    }

    #[test]
    fn key_hash_is_fnv1a_64() {
        // Known FNV-1a 64-bit vectors (offset basis 0xcbf29ce484222325,
        // prime 0x100000001b3).
        assert_eq!(key_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(key_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(key_hash("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn shard_distribution_is_even() {
        // Sequentially-named keys (the agent key shape) must spread
        // across shards instead of clustering; with the broken FNV
        // multiplier the low bits degenerated badly.
        let shards = 16usize;
        let s = ShardedStore::new(StoreConfig {
            shards,
            ttl: Duration::from_secs(10),
        });
        let n = 4000usize;
        let mut counts = vec![0usize; shards];
        for h in 0..n {
            counts[s.shard_index(&format!("rates/7/c2/total/h{h}"))] += 1;
        }
        let expected = n / shards;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "shard {i} has {c} keys (expected ~{expected}): {counts:?}"
            );
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store();
        s.put("rates/cold/h1", 100.0, 0);
        assert_eq!(s.get("rates/cold/h1", 1000), Some(100.0));
        assert_eq!(s.get("rates/cold/h2", 1000), None);
        // Overwrite.
        s.put("rates/cold/h1", 150.0, 2000);
        assert_eq!(s.get("rates/cold/h1", 2000), Some(150.0));
    }

    #[test]
    fn ttl_expires_entries() {
        let s = store();
        s.put("k", 1.0, 0);
        assert_eq!(s.get("k", 10_000), Some(1.0), "exactly at TTL still live");
        assert_eq!(s.get("k", 10_001), None, "past TTL dead");
    }

    #[test]
    fn aggregate_sums_prefix_only() {
        let s = store();
        for h in 0..50 {
            s.put(&format!("rates/cold/h{h}"), 2.0, 0);
        }
        s.put("rates/warm/h0", 100.0, 0);
        assert_eq!(s.aggregate_sum("rates/cold/", 100), 100.0);
        assert_eq!(s.aggregate_sum("rates/", 100), 200.0);
        assert_eq!(s.count("rates/cold/", 100), 50);
    }

    #[test]
    fn dead_agents_fall_out_of_aggregate() {
        let s = store();
        s.put("rates/cold/h1", 10.0, 0);
        s.put("rates/cold/h2", 20.0, 9_000);
        // At t=15s, h1 (written at 0, ttl 10s) is stale; h2 is live.
        assert_eq!(s.aggregate_sum("rates/cold/", 15_000), 20.0);
    }

    #[test]
    fn sweep_removes_expired() {
        let s = store();
        for h in 0..10 {
            s.put(&format!("k{h}"), 1.0, 0);
        }
        s.put("fresh", 1.0, 20_000);
        let removed = s.sweep(20_000);
        assert_eq!(removed, 10);
        assert_eq!(s.get("fresh", 20_000), Some(1.0));
    }

    #[test]
    fn delete_works() {
        let s = store();
        s.put("k", 1.0, 0);
        assert!(s.delete("k"));
        assert!(!s.delete("k"));
        assert_eq!(s.get("k", 0), None);
    }

    #[test]
    fn shard_placed_partials_aggregate_globally() {
        let s = store();
        // One partial per shard, placed by explicit index.
        for sh in 0..s.shard_count() {
            s.put_in_shard(sh, &format!("rates/cold/total/s{sh}"), (sh + 1) as f64, 0);
        }
        // Per-shard sums see exactly their own partial...
        for sh in 0..s.shard_count() {
            assert_eq!(
                s.aggregate_sum_shard("rates/cold/total/", sh, 100),
                (sh + 1) as f64
            );
        }
        // ...and the flat global aggregate every AggregateWatch consumer
        // reads still sees the full fold.
        assert_eq!(s.aggregate_sum("rates/cold/total/", 100), 36.0);
    }

    #[test]
    fn shard_batch_put_lands_in_one_shard() {
        let s = store();
        let entries = vec![
            ("rates/a/s3".to_string(), 1.5),
            ("rates/b/s3".to_string(), 2.5),
        ];
        s.put_shard_batch(3, &entries, 0);
        assert_eq!(s.aggregate_sum_shard("rates/", 3, 10), 4.0);
        for sh in (0..s.shard_count()).filter(|&sh| sh != 3) {
            assert_eq!(s.aggregate_sum_shard("rates/", sh, 10), 0.0);
        }
        // Overwrite within the batch path.
        s.put_shard_batch(3, &[("rates/a/s3".to_string(), 9.0)], 20);
        assert_eq!(s.aggregate_sum_shard("rates/a/", 3, 20), 9.0);
    }

    #[test]
    fn shard_aggregate_respects_ttl() {
        let s = store();
        s.put_in_shard(0, "rates/x/s0", 5.0, 0);
        assert_eq!(s.aggregate_sum_shard("rates/x/", 0, 10_000), 5.0);
        assert_eq!(s.aggregate_sum_shard("rates/x/", 0, 10_001), 0.0);
    }

    #[test]
    fn concurrent_writers() {
        use std::sync::Arc;
        let s = Arc::new(store());
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    s.put(&format!("rates/svc/h{t}_{i}"), 1.0, 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.aggregate_sum("rates/svc/", 100), 8000.0);
    }
}
