//! Telemetry-wrapping store access.
//!
//! [`ObservedKv`] wraps any [`KvAccess`] implementation — the real
//! [`crate::ShardedStore`] or a fault-injecting chaos wrapper — and
//! records per-operation latency histograms, outcome counters, and
//! trace spans into an [`Obs`] bundle. Because it composes over the
//! trait, the same instrumentation sees healthy stores and degraded
//! ones: under a chaos fault plan the `outcome="error"` counters and
//! the latency histograms tell the fail-static story from the store's
//! side.

use crate::access::{KvAccess, KvError, KvShardAccess};
use entitlement_obs::{Counter, Histogram, Obs};

/// Cached metric handles for one operation kind.
struct OpMetrics {
    latency_ms: Histogram,
    ok: Counter,
    err: Counter,
}

/// A [`KvAccess`] decorator recording latency, outcomes, and spans.
pub struct ObservedKv<K> {
    inner: K,
    obs: Obs,
    put: OpMetrics,
    get: OpMetrics,
    aggregate: OpMetrics,
}

impl<K> ObservedKv<K> {
    /// Wrap `inner`, registering the KV metric families in
    /// `obs.registry` (handles are cached, so the per-op cost is a few
    /// atomic updates).
    pub fn new(inner: K, obs: &Obs) -> Self {
        let op_metrics = |op: &str| OpMetrics {
            latency_ms: obs.registry.histogram(
                "entitlement_kv_op_ms",
                "KV operation latency in milliseconds (from the injected clock)",
                &[("op", op)],
            ),
            ok: obs.registry.counter(
                "entitlement_kv_ops_total",
                "KV operations by kind and outcome",
                &[("op", op), ("outcome", "ok")],
            ),
            err: obs.registry.counter(
                "entitlement_kv_ops_total",
                "KV operations by kind and outcome",
                &[("op", op), ("outcome", "error")],
            ),
        };
        ObservedKv {
            inner,
            obs: obs.clone(),
            put: op_metrics("put"),
            get: op_metrics("get"),
            aggregate: op_metrics("aggregate"),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &K {
        &self.inner
    }

    fn observe<T>(
        &self,
        metrics: &OpMetrics,
        phase: &str,
        result: Result<T, KvError>,
        start_ms: u64,
    ) -> Result<T, KvError> {
        let end_ms = self.obs.clock.now_ms();
        metrics.latency_ms.record(end_ms.saturating_sub(start_ms) as f64);
        match &result {
            Ok(_) => metrics.ok.inc(),
            Err(_) => metrics.err.inc(),
        }
        if self.obs.enabled() {
            let outcome = match &result {
                Ok(_) => "ok".to_string(),
                Err(e) => format!("error:{e:?}"),
            };
            // push_child: the sink allocates span ids and parents the
            // op under the currently open span (the agent's cycle), so
            // KV ops land in the causal tree, not as orphan roots.
            self.obs.trace.push_child(entitlement_obs::TraceEvent::new(
                start_ms,
                "kv",
                phase,
                vec![("outcome".to_string(), outcome)],
                end_ms.saturating_sub(start_ms) as f64,
            ));
        }
        result
    }
}

impl<K: KvAccess> KvAccess for ObservedKv<K> {
    fn try_put(&self, key: &str, value: f64, now_ms: u64) -> Result<(), KvError> {
        let start = self.obs.clock.now_ms();
        let r = self.inner.try_put(key, value, now_ms);
        self.observe(&self.put, "put", r, start)
    }

    fn try_get(&self, key: &str, now_ms: u64) -> Result<Option<f64>, KvError> {
        let start = self.obs.clock.now_ms();
        let r = self.inner.try_get(key, now_ms);
        self.observe(&self.get, "get", r, start)
    }

    fn try_aggregate(&self, prefix: &str, now_ms: u64) -> Result<f64, KvError> {
        let start = self.obs.clock.now_ms();
        let r = self.inner.try_aggregate(prefix, now_ms);
        self.observe(&self.aggregate, "aggregate", r, start)
    }
}

/// Shard-addressed ops reuse the `put`/`aggregate` metric families
/// (same op labels) with distinct trace phases, so per-shard publishes
/// and fan-out reads show up in the same dashboards as their flat
/// counterparts.
impl<K: KvShardAccess> KvShardAccess for ObservedKv<K> {
    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn try_put_shard(
        &self,
        shard: usize,
        key: &str,
        value: f64,
        now_ms: u64,
    ) -> Result<(), KvError> {
        let start = self.obs.clock.now_ms();
        let r = self.inner.try_put_shard(shard, key, value, now_ms);
        self.observe(&self.put, "put_shard", r, start)
    }

    fn try_put_shard_batch(
        &self,
        shard: usize,
        entries: &[(String, f64)],
        now_ms: u64,
    ) -> Result<(), KvError> {
        let start = self.obs.clock.now_ms();
        let r = self.inner.try_put_shard_batch(shard, entries, now_ms);
        self.observe(&self.put, "put_shard_batch", r, start)
    }

    fn try_shard_aggregate(
        &self,
        prefix: &str,
        shard: usize,
        now_ms: u64,
    ) -> Result<f64, KvError> {
        let start = self.obs.clock.now_ms();
        let r = self.inner.try_shard_aggregate(prefix, shard, now_ms);
        self.observe(&self.aggregate, "shard_aggregate", r, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ShardedStore, StoreConfig};
    use entitlement_obs::Clock;

    fn flaky_error_store() -> impl KvAccess {
        struct Down;
        impl KvAccess for Down {
            fn try_put(&self, _: &str, _: f64, _: u64) -> Result<(), KvError> {
                Err(KvError::ShardUnavailable)
            }
            fn try_get(&self, _: &str, _: u64) -> Result<Option<f64>, KvError> {
                Err(KvError::ServerDown)
            }
            fn try_aggregate(&self, _: &str, _: u64) -> Result<f64, KvError> {
                Err(KvError::Timeout)
            }
        }
        Down
    }

    #[test]
    fn records_ok_ops_and_latency() {
        let obs = Obs::new(Clock::counting(2));
        let store = ObservedKv::new(ShardedStore::new(StoreConfig::default()), &obs);
        store.try_put("rates/x/h0", 5.0, 0).unwrap();
        assert_eq!(store.try_get("rates/x/h0", 0).unwrap(), Some(5.0));
        assert_eq!(store.try_aggregate("rates/", 0).unwrap(), 5.0);
        let text = obs.registry.render();
        assert!(text.contains("entitlement_kv_ops_total{op=\"put\",outcome=\"ok\"} 1"));
        assert!(text.contains("entitlement_kv_ops_total{op=\"get\",outcome=\"ok\"} 1"));
        assert!(text.contains("entitlement_kv_ops_total{op=\"aggregate\",outcome=\"ok\"} 1"));
        // The counting clock gives every op a 2 ms duration.
        assert!(text.contains("entitlement_kv_op_ms_count{op=\"put\"} 1"));
        let events = obs.trace.events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.span == "kv" && e.dur_ms == 2.0));
    }

    #[test]
    fn records_errors_with_kind() {
        let obs = Obs::new(Clock::manual(10));
        let store = ObservedKv::new(flaky_error_store(), &obs);
        assert!(store.try_put("k", 1.0, 10).is_err());
        assert!(store.try_get("k", 10).is_err());
        assert!(store.try_aggregate("k", 10).is_err());
        let text = obs.registry.render();
        assert!(text.contains("entitlement_kv_ops_total{op=\"put\",outcome=\"error\"} 1"));
        let events = obs.trace.events();
        assert!(events
            .iter()
            .any(|e| e.labels.iter().any(|(_, v)| v == "error:Timeout")));
    }

    #[test]
    fn shard_ops_record_under_flat_metric_families() {
        let obs = Obs::new(Clock::counting(1));
        let store = ObservedKv::new(ShardedStore::new(StoreConfig::default()), &obs);
        store.try_put_shard(2, "rates/x/total/s2", 8.0, 0).unwrap();
        store
            .try_put_shard_batch(3, &[("rates/x/total/s3".to_string(), 4.0)], 0)
            .unwrap();
        assert_eq!(store.try_shard_aggregate("rates/x/total/", 2, 0), Ok(8.0));
        assert_eq!(store.try_shard_aggregate("rates/x/total/", 3, 0), Ok(4.0));
        assert_eq!(KvShardAccess::shard_count(&store), 16);
        let text = obs.registry.render();
        assert!(text.contains("entitlement_kv_ops_total{op=\"put\",outcome=\"ok\"} 2"));
        assert!(text.contains("entitlement_kv_ops_total{op=\"aggregate\",outcome=\"ok\"} 2"));
        let events = obs.trace.events();
        assert!(events.iter().any(|e| e.phase == "put_shard"));
        assert!(events.iter().any(|e| e.phase == "put_shard_batch"));
        assert!(events.iter().any(|e| e.phase == "shard_aggregate"));
    }

    #[test]
    fn disabled_obs_still_counts_but_emits_no_events() {
        let obs = Obs::disabled();
        let store = ObservedKv::new(ShardedStore::new(StoreConfig::default()), &obs);
        store.try_put("k", 1.0, 0).unwrap();
        assert!(obs.trace.is_empty());
        assert!(obs
            .registry
            .render()
            .contains("entitlement_kv_ops_total{op=\"put\",outcome=\"ok\"} 1"));
    }
}
