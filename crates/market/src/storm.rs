//! Seeded admission storms: deterministic load for benchmarking and
//! byte-identical trace replay.

use crate::market::{AdmitDecision, AdmitOutcome, AdmitPath, AdmitRequest, EntitlementMarket};
use crate::slice::SliceId;
use entitlement_core::{DetRng, NpgId, QosBucket, Rate};
use entitlement_obs::Obs;
use entitlement_watch::{AdmitObs, WatchEvaluator, WatchPolicy, WatchReport};
use serde::{Deserialize, Serialize};

/// Parameters of a deterministic admission storm.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StormConfig {
    /// Number of admission requests.
    pub requests: usize,
    /// RNG seed; identical seeds produce identical storms.
    pub seed: u64,
    /// Distinct NPGs issuing requests.
    pub npgs: u32,
    /// Largest single ask, Gbps (asks are uniform in `(0, max]`).
    pub max_ask_gbps: f64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            requests: 10_000,
            seed: 0x1360,
            npgs: 32,
            max_ask_gbps: 5.0,
        }
    }
}

/// Generate the storm's request sequence. Pure function of the config
/// and the market's topology/grid/buckets — no wall clock, no global
/// state.
pub fn generate_storm(
    market: &EntitlementMarket,
    buckets: &[QosBucket],
    config: &StormConfig,
) -> Vec<AdmitRequest> {
    let mut rng = DetRng::new(config.seed);
    let dcs = market.topology().dc_ids();
    let slices: Vec<SliceId> = market.grid().slices().collect();
    let mut out = Vec::with_capacity(config.requests);
    for _ in 0..config.requests {
        let si = rng.usize(dcs.len());
        // Uniform over destinations excluding the source.
        let mut di = rng.usize(dcs.len() - 1);
        if di >= si {
            di += 1;
        }
        let (src, dst) = (dcs[si], dcs[di]);
        out.push(AdmitRequest {
            npg: NpgId(rng.usize(config.npgs.max(1) as usize) as u32),
            bucket: buckets[rng.usize(buckets.len())],
            slice: slices[rng.usize(slices.len())],
            src,
            dst,
            ask: Rate::gbps(rng.range(0.0, config.max_ask_gbps).max(1e-3)),
        });
    }
    out
}

/// Aggregate results of a storm run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct StormReport {
    /// Requests served.
    pub requests: usize,
    /// Fully granted.
    pub granted: usize,
    /// Partially granted.
    pub partial: usize,
    /// Denied.
    pub denied: usize,
    /// Served off the warm index.
    pub index_path: usize,
    /// Served by a sweep (cold, stale, or exhausted slot).
    pub sweep_path: usize,
    /// Total rate granted, Gbps.
    pub granted_gbps: f64,
}

impl StormReport {
    /// Fold one decision into the tallies.
    pub fn tally(&mut self, d: &AdmitDecision) {
        self.requests += 1;
        match d.outcome {
            AdmitOutcome::Granted => self.granted += 1,
            AdmitOutcome::Partial => self.partial += 1,
            AdmitOutcome::Denied => self.denied += 1,
        }
        match d.path {
            AdmitPath::Index => self.index_path += 1,
            AdmitPath::Sweep => self.sweep_path += 1,
        }
        self.granted_gbps += d.granted.as_gbps();
    }
}

/// Drive a storm through the market, tallying outcomes and paths.
pub fn run_storm(
    market: &mut EntitlementMarket,
    requests: &[AdmitRequest],
    obs: &Obs,
) -> StormReport {
    run_storm_watch(market, requests, obs, &WatchPolicy::default()).0
}

/// [`run_storm`] plus the runtime watchdog: every admission also feeds
/// one [`AdmitObs`] into a streaming [`WatchEvaluator`] — the W0103
/// residual-monotonicity monitor (bit-exact against the index's own
/// bps arithmetic) and the W0107 admit-latency CUSUM — emitting
/// `watch`/`admit` (and any `watch`/`violation`, `watch`/`fire`|
/// `clear`) trace events into `obs`. The latency sample is the logical
/// clock delta around each admission, so under a counting clock the
/// sweep path reads strictly slower than the warm index path.
/// Re-folding the saved trace reproduces the returned [`WatchReport`]
/// byte-for-byte.
pub fn run_storm_watch(
    market: &mut EntitlementMarket,
    requests: &[AdmitRequest],
    obs: &Obs,
    watch_policy: &WatchPolicy,
) -> (StormReport, WatchReport) {
    let mut report = StormReport::default();
    let mut watchdog = WatchEvaluator::new(watch_policy.clone());
    for (i, req) in requests.iter().enumerate() {
        let t0 = obs.clock.now_ms();
        let d = market.admit_obs(req, obs);
        let admit_ms = obs.clock.now_ms().saturating_sub(t0) as f64;
        report.tally(&d);
        watchdog.observe_admit(
            obs,
            &AdmitObs {
                request: i as u64,
                ask_bps: req.ask.as_bps(),
                granted_bps: d.granted.as_bps(),
                residual_before_bps: d.residual_before.as_bps(),
                residual_after_bps: d.residual_after.as_bps(),
                admit_ms,
                path: d.path.as_str().to_string(),
            },
        );
    }
    (report, watchdog.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::EntitlementMarket;
    use crate::slice::SliceGrid;
    use entitlement_approval::ApprovalConfig;
    use entitlement_core::Quarter;
    use entitlement_topology::BackboneSpec;

    #[test]
    fn healthy_storm_watch_is_silent_and_refolds_byte_identically() {
        let topo = BackboneSpec::small(7).build();
        let grid = SliceGrid::quarterly(Quarter(0), 30);
        let config = ApprovalConfig {
            max_cuts: 1,
            ..Default::default()
        };
        let mut market = EntitlementMarket::new(topo, grid, config);
        let buckets = QosBucket::approval_order();
        let requests = generate_storm(
            &market,
            &buckets,
            &StormConfig {
                requests: 300,
                ..Default::default()
            },
        );
        let obs = Obs::new(entitlement_obs::Clock::counting(1));
        let (report, watch) =
            run_storm_watch(&mut market, &requests, &obs, &WatchPolicy::default());
        assert_eq!(report.requests, 300);
        assert_eq!(watch.admits, 300);
        assert!(watch.healthy(), "{}", watch.render_text());
        let mut offline = WatchEvaluator::new(WatchPolicy::default());
        offline.fold_trace(&obs.trace.events());
        assert_eq!(offline.report(), watch);
        assert_eq!(offline.report().render_json(), watch.render_json());
    }

    #[test]
    fn storms_are_deterministic_in_the_seed() {
        let topo = BackboneSpec::small(7).build();
        let grid = SliceGrid::quarterly(Quarter(0), 30);
        let config = ApprovalConfig {
            max_cuts: 1,
            ..Default::default()
        };
        let market = EntitlementMarket::new(topo, grid, config);
        let buckets = QosBucket::approval_order();
        let sc = StormConfig {
            requests: 200,
            ..Default::default()
        };
        let a = generate_storm(&market, &buckets, &sc);
        let b = generate_storm(&market, &buckets, &sc);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed, same storm"
        );
        let c = generate_storm(
            &market,
            &buckets,
            &StormConfig {
                seed: sc.seed + 1,
                ..sc
            },
        );
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap(),
            "different seed, different storm"
        );
        for req in &a {
            assert_ne!(req.src, req.dst, "no self-loops");
            assert!(req.ask.as_gbps() > 0.0);
        }
    }
}
