//! Time slices: a [`Period`] chopped into fixed-width admission
//! windows.
//!
//! The paper's contracts are quarterly; Hummingbird-style fine-grained
//! admission needs something between "the whole quarter" and "right
//! now". A [`SliceGrid`] divides an enforcement period into equal
//! slices (the last one absorbs the remainder), and every market
//! entitlement or admission is keyed by the slice it occupies.

use entitlement_core::{Period, Quarter};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of one slice within a [`SliceGrid`], 0-based.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SliceId(pub u32);

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An enforcement period divided into fixed-width time slices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceGrid {
    /// The period the grid covers.
    pub period: Period,
    /// Width of each slice in days (the final slice absorbs any
    /// remainder).
    pub slice_days: u32,
}

impl SliceGrid {
    /// Build a grid; `slice_days` is clamped to at least one day and at
    /// most the whole period.
    pub fn new(period: Period, slice_days: u32) -> SliceGrid {
        SliceGrid {
            period,
            slice_days: slice_days.clamp(1, period.days()),
        }
    }

    /// The grid for a planning quarter.
    pub fn quarterly(quarter: Quarter, slice_days: u32) -> SliceGrid {
        SliceGrid::new(quarter.period(), slice_days)
    }

    /// Number of slices in the grid.
    pub fn slice_count(&self) -> u32 {
        self.period.days() / self.slice_days
    }

    /// All slice ids, in order.
    pub fn slices(&self) -> impl Iterator<Item = SliceId> {
        (0..self.slice_count()).map(SliceId)
    }

    /// The slice containing `day`, if the day falls inside the period.
    pub fn slice_of(&self, day: u32) -> Option<SliceId> {
        if !self.period.contains(day) {
            return None;
        }
        let idx = (day - self.period.start_day) / self.slice_days;
        // The remainder tail belongs to the last full slice.
        Some(SliceId(idx.min(self.slice_count() - 1)))
    }

    /// The days a slice covers (the last slice absorbs the remainder).
    pub fn slice_period(&self, slice: SliceId) -> Option<Period> {
        if slice.0 >= self.slice_count() {
            return None;
        }
        let start = self.period.start_day + slice.0 * self.slice_days;
        let end = if slice.0 + 1 == self.slice_count() {
            self.period.end_day
        } else {
            start + self.slice_days
        };
        Some(Period::new(start, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarterly_grid_partitions_the_period() {
        let grid = SliceGrid::quarterly(Quarter(0), 7);
        assert_eq!(grid.slice_count(), 12, "90 days / 7 = 12 full slices");
        let mut covered = 0;
        for s in grid.slices() {
            covered += grid.slice_period(s).unwrap().days();
        }
        assert_eq!(covered, grid.period.days(), "slices tile the period");
        // The last slice absorbs the 6-day remainder.
        assert_eq!(grid.slice_period(SliceId(11)).unwrap().days(), 13);
    }

    #[test]
    fn slice_of_maps_days_to_slices() {
        let grid = SliceGrid::quarterly(Quarter(1), 30);
        let p = Quarter(1).period();
        assert_eq!(grid.slice_of(p.start_day), Some(SliceId(0)));
        assert_eq!(grid.slice_of(p.start_day + 30), Some(SliceId(1)));
        assert_eq!(grid.slice_of(p.end_day - 1), Some(SliceId(2)));
        assert_eq!(grid.slice_of(p.end_day), None, "outside the period");
        assert_eq!(grid.slice_of(0), None);
    }

    #[test]
    fn degenerate_widths_are_clamped() {
        let grid = SliceGrid::new(Period::new(0, 10), 0);
        assert_eq!(grid.slice_days, 1);
        let grid = SliceGrid::new(Period::new(0, 10), 99);
        assert_eq!(grid.slice_days, 10);
        assert_eq!(grid.slice_count(), 1);
    }
}
