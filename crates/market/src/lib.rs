//! # entitlement-market
//!
//! Approval as a serving system: a time-sliced entitlement store plus a
//! precomputed **residual-availability index** over the approval
//! engine's risk sweep.
//!
//! The batch approval engine (paper §4.3) answers "can this quarter's
//! contracts meet their SLOs?" with a full RSS sweep per decision. A
//! serving system cannot pay that per admission. The market runs the
//! sweep **once** per (region pair, QoS bucket) — against the committed
//! contract background — and caches the SLO-feasible headroom per time
//! slice. Steady-state [`EntitlementMarket::admit`] is then an index
//! lookup plus a decrement; the full sweep only runs when a slot is
//! cold, stale, or exhausted, and its decision re-installs the slot
//! (incremental refresh, never a wholesale rebuild on the serving
//! path).
//!
//! Two invariants carry the design:
//!
//! * **Bit-equal decisions.** Index-path and sweep-path admits share
//!   one headroom kernel ([`pair_headroom`]), so while the index is
//!   fresh an index decision is bitwise identical to the sweep decision
//!   it caches (property-tested in `tests/market_props.rs`).
//! * **Fail-closed freshness.** Any event that can change physical
//!   headroom (contract load, fault, fault clear) bumps the index
//!   epoch before anything else; stale slots are never served, so no
//!   admit after a fault sees pre-fault headroom.

#![forbid(unsafe_code)]

pub mod book;
pub mod explain;
pub mod index;
pub mod market;
pub mod slice;
pub mod storm;

pub use book::{EntitlementBook, EntitlementKind, MarketEntitlement, MarketKey};
pub use explain::{explain_denied, explain_request};
pub use index::{
    pair_headroom, pair_headroom_probe, HeadroomProbe, IndexKey, IndexSlot, ResidualIndex,
    SlotProvenance,
};
pub use market::{
    AdmitDecision, AdmitOutcome, AdmitPath, AdmitRequest, EntitlementMarket,
};
pub use slice::{SliceGrid, SliceId};
pub use storm::{generate_storm, run_storm, run_storm_watch, StormConfig, StormReport};
