//! The entitlement market: approval as a serving system.
//!
//! [`EntitlementMarket`] turns the batch approval engine into an
//! admission server. Contracts load into the [`EntitlementBook`] and
//! become risk-sweep background; [`EntitlementMarket::warm`] runs one
//! upfront sweep per (region pair, bucket) and installs the resulting
//! SLO-feasible headroom into the [`ResidualIndex`] for every time
//! slice. A steady-state [`EntitlementMarket::admit`] is then an index
//! lookup plus a decrement; only a cold or exhausted slot falls back to
//! the full RSS sweep (the same [`pair_headroom`] kernel the warm-up
//! ran), whose decision re-installs the slot — the index refreshes
//! incrementally from decisions, never from scratch.
//!
//! **Fail-closed**: a topology fault ([`EntitlementMarket::apply_fault`])
//! bumps the index epoch before anything else, so no admit after the
//! fault can be served pre-fault headroom. The first admit per key after
//! a fault pays for a sweep against the degraded scenario set.

use crate::book::{EntitlementBook, MarketEntitlement, MarketKey};
use crate::index::{pair_headroom_probe, IndexKey, ResidualIndex};
use crate::slice::{SliceGrid, SliceId};
use entitlement_approval::{negotiate_scenarios, Agreement, ApprovalConfig, ServicePolicy};
use entitlement_core::{NpgId, QosBucket, Rate, RegionId, SloTarget};
use entitlement_hose::HoseRequest;
use entitlement_obs::Obs;
use entitlement_topology::routing::Demand;
use entitlement_topology::{FailureScenario, LinkId, ScenarioSet, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One admission request: an NPG asking for rate on a directed region
/// pair, in one bucket and one time slice.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AdmitRequest {
    /// Who is asking.
    pub npg: NpgId,
    /// Approval bucket.
    pub bucket: QosBucket,
    /// Time slice the entitlement should cover.
    pub slice: SliceId,
    /// Source region.
    pub src: RegionId,
    /// Destination region.
    pub dst: RegionId,
    /// Requested rate.
    pub ask: Rate,
}

/// Which serving path decided an admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmitPath {
    /// Fresh index slot: lookup + decrement, no sweep.
    Index,
    /// Cold/stale/exhausted slot: full RSS sweep, slot re-installed.
    Sweep,
}

impl AdmitPath {
    /// Stable label for metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            AdmitPath::Index => "index",
            AdmitPath::Sweep => "sweep",
        }
    }
}

/// The admission outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmitOutcome {
    /// The full ask was granted.
    Granted,
    /// Some, but not all, of the ask was granted.
    Partial,
    /// Nothing was granted.
    Denied,
}

impl AdmitOutcome {
    /// Stable label for metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            AdmitOutcome::Granted => "granted",
            AdmitOutcome::Partial => "partial",
            AdmitOutcome::Denied => "denied",
        }
    }
}

/// One admission decision.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AdmitDecision {
    /// Rate actually granted (`ask.min(available)`).
    pub granted: Rate,
    /// Granted / partial / denied.
    pub outcome: AdmitOutcome,
    /// Which serving path produced the decision.
    pub path: AdmitPath,
    /// Residual headroom in the served slot before this decision.
    pub residual_before: Rate,
    /// Residual after the decrement: exactly
    /// `(residual_before − granted).clamp_zero()` — the watchdog's
    /// W0103 monitor holds every decision to that equation.
    pub residual_after: Rate,
}

impl AdmitDecision {
    fn new(ask: Rate, granted: Rate, path: AdmitPath) -> AdmitDecision {
        let outcome = if granted.is_zero() {
            AdmitOutcome::Denied
        } else if granted.as_bps() >= ask.as_bps() {
            AdmitOutcome::Granted
        } else {
            AdmitOutcome::Partial
        };
        AdmitDecision {
            granted,
            outcome,
            path,
            residual_before: Rate::ZERO,
            residual_after: Rate::ZERO,
        }
    }
}

/// Shortest-round-trip decimal Gbps for provenance labels
/// (deterministic: no locale, no precision knob).
fn fmt_gbps(r: Rate) -> String {
    format!("{}", r.as_gbps())
}

/// The serving-side entitlement market.
#[derive(Clone, Debug)]
pub struct EntitlementMarket {
    topo: Topology,
    grid: SliceGrid,
    config: ApprovalConfig,
    /// Enumerated once at construction; never re-enumerated on the
    /// serving path.
    scenarios: ScenarioSet,
    /// `scenarios` with the currently dead links appended to every
    /// scenario's failure set. Rebuilt only when faults change.
    effective: ScenarioSet,
    dead_links: Vec<LinkId>,
    book: EntitlementBook,
    /// Committed reserving contracts, merged by `(src, dst)`.
    background: Vec<Demand>,
    index: ResidualIndex,
    /// Rates granted through `admit`, for reporting.
    grants: BTreeMap<MarketKey, Rate>,
    /// Monotone per-market admission ordinal; becomes the stable
    /// `request` label on `market`/`admit` spans so explain/summarize
    /// can address one decision without positional indexing. Counts
    /// every admit, traced or not, so ordinals match across runs.
    admit_seq: u64,
}

impl EntitlementMarket {
    /// Build a market over a topology. Scenario enumeration — the
    /// expensive, combinatorial part — happens once, here.
    pub fn new(topo: Topology, grid: SliceGrid, config: ApprovalConfig) -> EntitlementMarket {
        let scenarios = ScenarioSet::enumerate(&topo, config.max_cuts);
        let effective = scenarios.clone();
        EntitlementMarket {
            topo,
            grid,
            config,
            scenarios,
            effective,
            dead_links: Vec::new(),
            book: EntitlementBook::new(),
            background: Vec::new(),
            index: ResidualIndex::new(),
            grants: BTreeMap::new(),
            admit_seq: 0,
        }
    }

    /// The slice grid admissions are keyed by.
    pub fn grid(&self) -> SliceGrid {
        self.grid
    }

    /// The topology being served.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The committed book.
    pub fn book(&self) -> &EntitlementBook {
        &self.book
    }

    /// The residual index (for inspection and tests).
    pub fn index(&self) -> &ResidualIndex {
        &self.index
    }

    /// Links currently dead.
    pub fn dead_links(&self) -> &[LinkId] {
        &self.dead_links
    }

    /// Total rate granted through `admit` so far under one key.
    pub fn granted(&self, key: &MarketKey) -> Rate {
        self.grants.get(key).copied().unwrap_or(Rate::ZERO)
    }

    /// The SLO an admission in `bucket` is approved against: the
    /// class's default availability target.
    pub fn slo_for(bucket: QosBucket) -> SloTarget {
        SloTarget(bucket.class.default_slo())
    }

    /// Load committed contracts. They cover every slice of the grid,
    /// reserving kinds join the risk-sweep background, and the index is
    /// invalidated: committed load changes physical headroom.
    pub fn load_contracts(&mut self, contracts: &[MarketEntitlement]) {
        for c in contracts {
            self.book.commit_all_slices(&self.grid, c);
        }
        self.background = self.book.reserved_background();
        self.index.invalidate_all();
    }

    /// Mark links dead. The epoch bump comes FIRST: between the fault
    /// and the next per-key sweep no admit may be served pre-fault
    /// headroom (fail-closed).
    pub fn apply_fault(&mut self, links: &[LinkId]) {
        self.index.invalidate_all();
        for l in links {
            if !self.dead_links.contains(l) {
                self.dead_links.push(*l);
            }
        }
        self.effective = self.effective_scenarios();
    }

    /// Clear all faults. Headroom may have *grown*, so the index is
    /// invalidated here too.
    pub fn clear_faults(&mut self) {
        self.index.invalidate_all();
        self.dead_links.clear();
        self.effective = self.scenarios.clone();
    }

    /// The enumerated scenario set with every dead link appended to
    /// every scenario (probabilities unchanged: the dead links are a
    /// certainty, not a scenario).
    fn effective_scenarios(&self) -> ScenarioSet {
        if self.dead_links.is_empty() {
            return self.scenarios.clone();
        }
        let scenarios = self
            .scenarios
            .scenarios
            .iter()
            .map(|s| {
                let mut dead = s.dead_links.clone();
                for l in &self.dead_links {
                    if !dead.contains(l) {
                        dead.push(*l);
                    }
                }
                FailureScenario {
                    dead_links: dead,
                    probability: s.probability,
                    label: s.label.clone(),
                }
            })
            .collect();
        ScenarioSet { scenarios }
    }

    /// Warm the index: one headroom sweep per (DC pair, bucket),
    /// installed for every slice of the grid. This is the single
    /// upfront risk sweep that makes steady-state admits index hits.
    pub fn warm(&mut self, buckets: &[QosBucket], obs: &Obs) {
        let span = obs
            .span("market", "warm")
            .label("buckets", &buckets.len().to_string());
        let dcs = self.topo.dc_ids();
        for &src in &dcs {
            for &dst in &dcs {
                if src == dst {
                    continue;
                }
                for &bucket in buckets {
                    let probe = pair_headroom_probe(
                        &self.topo,
                        &self.effective,
                        &self.background,
                        src,
                        dst,
                        Self::slo_for(bucket),
                        self.config.k_paths,
                        obs,
                    );
                    for slice in self.grid.slices() {
                        self.index.install_with(
                            IndexKey {
                                src,
                                dst,
                                bucket,
                                slice,
                            },
                            probe.headroom,
                            probe.provenance.clone(),
                        );
                    }
                }
            }
        }
        span.finish();
    }

    /// Admit without telemetry.
    pub fn admit(&mut self, req: &AdmitRequest) -> AdmitDecision {
        self.admit_obs(req, &Obs::disabled())
    }

    /// Serve one admission. Index path when the slot is fresh and has
    /// residual; otherwise the sweep path recomputes the pair's
    /// headroom with the *same kernel* the warm-up used and re-installs
    /// the slot under the current epoch — so an index decision is
    /// bit-equal to the sweep decision it caches.
    pub fn admit_obs(&mut self, req: &AdmitRequest, obs: &Obs) -> AdmitDecision {
        let seq = self.admit_seq;
        self.admit_seq += 1;
        let t0 = obs.clock.now_ms();
        let mut span = obs.span("market", "admit");
        let key = IndexKey {
            src: req.src,
            dst: req.dst,
            bucket: req.bucket,
            slice: req.slice,
        };
        let traced = obs.enabled();
        if traced {
            span.add_label("request", &seq.to_string());
            span.add_label("npg", &req.npg.to_string());
            span.add_label("bucket", &req.bucket.to_string());
            span.add_label("slice", &req.slice.to_string());
            span.add_label("src", &req.src.to_string());
            span.add_label("dst", &req.dst.to_string());
            span.add_label("ask_gbps", &fmt_gbps(req.ask));
            span.add_label("epoch", &self.index.epoch().to_string());
        }
        let slot_state = self.index.slot_state(&key);
        if traced {
            obs.event("market", "index_probe", &[("state", slot_state)]);
        }
        let (mut decision, residual_before) = match self.index.fresh_remaining(&key) {
            Some(remaining) if !remaining.is_zero() => {
                let granted = req.ask.min(remaining);
                self.index.consume(&key, granted);
                (
                    AdmitDecision::new(req.ask, granted, AdmitPath::Index),
                    remaining,
                )
            }
            _ => {
                // Cold, stale, or exhausted: fall closed to the sweep.
                let fallback = obs
                    .span("market", "sweep_fallback")
                    .label("reason", slot_state);
                let probe = pair_headroom_probe(
                    &self.topo,
                    &self.effective,
                    &self.background,
                    req.src,
                    req.dst,
                    Self::slo_for(req.bucket),
                    self.config.k_paths,
                    obs,
                );
                fallback.finish();
                self.index.install_with(key, probe.headroom, probe.provenance);
                let available = self.index.fresh_remaining(&key).unwrap_or(Rate::ZERO);
                let granted = req.ask.min(available);
                self.index.consume(&key, granted);
                (
                    AdmitDecision::new(req.ask, granted, AdmitPath::Sweep),
                    available,
                )
            }
        };
        decision.residual_before = residual_before;
        decision.residual_after = (residual_before - decision.granted).clamp_zero();
        if !decision.granted.is_zero() {
            let mkey = MarketKey {
                npg: req.npg,
                bucket: req.bucket,
                slice: req.slice,
            };
            *self.grants.entry(mkey).or_insert(Rate::ZERO) += decision.granted;
        }
        if traced {
            // Decision-provenance ledger: everything `entitlectl
            // explain` needs to reconstruct *why*, carried on the span
            // itself so the trace alone is sufficient evidence.
            span.add_label("granted_gbps", &fmt_gbps(decision.granted));
            span.add_label("residual_before_gbps", &fmt_gbps(residual_before));
            span.add_label(
                "residual_after_gbps",
                &fmt_gbps((residual_before - decision.granted).clamp_zero()),
            );
            if let Some(prov) = self.index.provenance(&key) {
                span.add_label("binding_scenario", &prov.binding_scenario);
                span.add_label("binding_links", &prov.binding_links);
                span.add_label("binding_p", &format!("{}", prov.binding_probability));
                span.add_label("headroom_gbps", &fmt_gbps(prov.headroom));
            }
        }
        span.add_label("path", decision.path.as_str());
        span.add_label("outcome", decision.outcome.as_str());
        span.finish();
        if obs.enabled() {
            let dur_ms = obs.clock.now_ms().saturating_sub(t0);
            obs.registry
                .counter(
                    "entitlement_market_admits_total",
                    "admission decisions by outcome and serving path",
                    &[
                        ("outcome", decision.outcome.as_str()),
                        ("path", decision.path.as_str()),
                    ],
                )
                .inc();
            obs.registry
                .histogram(
                    "entitlement_market_admit_ms",
                    "admission latency by serving path",
                    &[("path", decision.path.as_str())],
                )
                .record(dur_ms as f64);
        }
        decision
    }

    /// Negotiate a hose request against the market's *warm* scenario
    /// set: every round of §8 negotiation reuses the one enumeration
    /// done at construction (plus current faults), so a warm
    /// negotiation is bit-identical to a cold `negotiate` while no
    /// fault is active.
    pub fn negotiate_warm(
        &self,
        request: &HoseRequest,
        slo: SloTarget,
        policy: &mut dyn ServicePolicy,
        max_rounds: usize,
    ) -> Agreement {
        negotiate_scenarios(
            &self.topo,
            request,
            slo,
            policy,
            &self.config,
            max_rounds,
            &self.effective,
        )
    }
}
