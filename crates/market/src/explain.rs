//! Decision provenance: render a human-readable causal explanation of
//! one admission decision from the trace alone.
//!
//! Every `market`/`admit` span carries the decision-provenance ledger
//! as labels (request ordinal, ask/grant, serving path, index epoch,
//! residual headroom before/after, binding failure scenario and its
//! dead links — see [`crate::market::EntitlementMarket::admit_obs`]),
//! and schema-v2 parent ids tie the admit to its `index_probe` /
//! `sweep_fallback` / `risk` descendants. `entitlectl explain` feeds a
//! parsed trace through [`explain_request`]; no market state, topology,
//! or replay is needed — the trace is the audit record.

use entitlement_obs::tree::{build_span_forest, critical_path, SpanForest};
use entitlement_obs::TraceEvent;
use std::fmt::Write as _;

fn label<'a>(e: &'a TraceEvent, key: &str) -> &'a str {
    e.label(key).unwrap_or("?")
}

/// Indices of all `market`/`admit` events, in emit order.
fn admit_events(events: &[TraceEvent]) -> Vec<usize> {
    events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.span == "market" && e.phase == "admit")
        .map(|(i, _)| i)
        .collect()
}

/// Explain one admission decision by its stable `request` ordinal.
///
/// # Errors
///
/// Returns a message when no `market`/`admit` span carries the
/// requested ordinal (or the trace has no admit spans at all).
pub fn explain_request(events: &[TraceEvent], request: u64) -> Result<String, String> {
    let admits = admit_events(events);
    if admits.is_empty() {
        return Err("trace contains no market/admit spans".to_string());
    }
    let want = request.to_string();
    let node = admits
        .iter()
        .copied()
        .find(|&i| events[i].label("request") == Some(want.as_str()))
        .ok_or_else(|| {
            format!(
                "no market/admit span with request ordinal {request} \
                 ({} admits in trace)",
                admits.len()
            )
        })?;
    // Forest reconstruction may fail on traces whose admit spans carry
    // provenance but whose surroundings are malformed; the explanation
    // then degrades to the ledger labels without the causal subtree.
    let forest = build_span_forest(events).ok();
    Ok(render_one(events, forest.as_ref(), node))
}

/// Explain every **denied** admission in the trace, in request order.
/// Returns the count header plus one explanation block per denial;
/// traces with no denials say so explicitly.
///
/// # Errors
///
/// Returns a message when the trace has no admit spans.
pub fn explain_denied(events: &[TraceEvent]) -> Result<String, String> {
    let admits = admit_events(events);
    if admits.is_empty() {
        return Err("trace contains no market/admit spans".to_string());
    }
    let denied: Vec<usize> = admits
        .iter()
        .copied()
        .filter(|&i| events[i].label("outcome") == Some("denied"))
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} admits in trace, {} denied",
        admits.len(),
        denied.len()
    );
    let forest = build_span_forest(events).ok();
    for &node in &denied {
        out.push('\n');
        out.push_str(&render_one(events, forest.as_ref(), node));
    }
    Ok(out)
}

/// The causal explanation of one admit span.
fn render_one(events: &[TraceEvent], forest: Option<&SpanForest>, node: usize) -> String {
    let e = &events[node];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "request #{}: {} asks {} Gbps {}->{} ({}, {})",
        label(e, "request"),
        label(e, "npg"),
        label(e, "ask_gbps"),
        label(e, "src"),
        label(e, "dst"),
        label(e, "bucket"),
        label(e, "slice"),
    );
    let _ = writeln!(
        out,
        "  decision: {} {} Gbps via {} path (index epoch {})",
        label(e, "outcome"),
        label(e, "granted_gbps"),
        label(e, "path"),
        label(e, "epoch"),
    );
    let _ = writeln!(
        out,
        "  residual headroom: {} Gbps before -> {} Gbps after",
        label(e, "residual_before_gbps"),
        label(e, "residual_after_gbps"),
    );
    let _ = writeln!(
        out,
        "  physical headroom: {} Gbps, bound by scenario `{}` (links {}, p={})",
        label(e, "headroom_gbps"),
        label(e, "binding_scenario"),
        label(e, "binding_links"),
        label(e, "binding_p"),
    );
    out.push_str(&verdict(e));
    if let Some(forest) = forest {
        let _ = writeln!(out, "  causal trace:");
        render_subtree(events, forest, node, 2, &mut out);
        let path = critical_path(forest, events, node);
        let hops: Vec<String> = path
            .iter()
            .map(|&i| format!("{}/{}", events[i].span, events[i].phase))
            .collect();
        let _ = writeln!(out, "  critical path: {}", hops.join(" -> "));
    }
    out
}

/// One plain-language sentence naming the bottleneck.
fn verdict(e: &TraceEvent) -> String {
    let pair = format!("{}->{}", label(e, "src"), label(e, "dst"));
    let scenario = label(e, "binding_scenario");
    let links = label(e, "binding_links");
    let headroom_zero = e.label("headroom_gbps") == Some("0");
    let residual_zero = e.label("residual_before_gbps") == Some("0");
    let body = match label(e, "outcome") {
        "denied" if headroom_zero && scenario == "infeasible" => format!(
            "no scenario mass meets the SLO for DC pair {pair}: \
             nothing can be guaranteed at this availability"
        ),
        "denied" if headroom_zero => format!(
            "binding scenario `{scenario}` (dead links {links}) leaves zero \
             SLO-feasible headroom on DC pair {pair}"
        ),
        "denied" if residual_zero => format!(
            "DC pair {pair} has physical headroom (bound by `{scenario}`, links \
             {links}) but earlier grants consumed all of it"
        ),
        "denied" => format!(
            "residual headroom on DC pair {pair} was exhausted below the ask \
             (bottleneck scenario `{scenario}`, links {links})"
        ),
        "partial" => format!(
            "residual headroom on DC pair {pair} covered only part of the ask \
             (bound by `{scenario}`, links {links})"
        ),
        _ => format!("ask fit within the residual headroom of DC pair {pair}"),
    };
    format!("  verdict: {body}\n")
}

/// Indented rendering of the admit span's causal subtree: every
/// descendant with its sorted labels, durations included.
fn render_subtree(
    events: &[TraceEvent],
    forest: &SpanForest,
    node: usize,
    depth: usize,
    out: &mut String,
) {
    let e = &events[node];
    let mut line = format!(
        "{:indent$}{}/{} ts={} dur={}",
        "",
        e.span,
        e.phase,
        e.ts_ms,
        e.dur_ms,
        indent = depth * 2
    );
    // The admit span's own ledger labels are already rendered above;
    // children print theirs inline.
    if depth > 2 {
        for (k, v) in &e.labels {
            let _ = write!(line, " {k}={v}");
        }
    }
    let _ = writeln!(out, "{line}");
    for &c in &forest.nodes[node].children {
        render_subtree(events, forest, c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::EntitlementMarket;
    use crate::slice::SliceGrid;
    use crate::storm::{generate_storm, run_storm, StormConfig};
    use entitlement_approval::ApprovalConfig;
    use entitlement_core::{Quarter, QosBucket};
    use entitlement_obs::{Clock, Obs};
    use entitlement_topology::BackboneSpec;

    fn storm_trace(requests: usize) -> Vec<TraceEvent> {
        let topo = BackboneSpec::small(7).build();
        let grid = SliceGrid::quarterly(Quarter(0), 30);
        let config = ApprovalConfig {
            max_cuts: 1,
            ..Default::default()
        };
        let mut market = EntitlementMarket::new(topo, grid, config);
        let buckets = QosBucket::approval_order();
        let obs = Obs::new(Clock::counting(1));
        market.warm(&buckets, &obs);
        let sc = StormConfig {
            requests,
            max_ask_gbps: 2000.0, // big asks force partial/denied outcomes
            ..Default::default()
        };
        let reqs = generate_storm(&market, &buckets, &sc);
        run_storm(&mut market, &reqs, &obs);
        obs.trace.events()
    }

    #[test]
    fn explains_a_denied_admit_with_binding_scenario_and_pair() {
        let events = storm_trace(300);
        let denied = events
            .iter()
            .find(|e| {
                e.span == "market" && e.phase == "admit" && e.label("outcome") == Some("denied")
            })
            .expect("storm with huge asks must deny something");
        let ordinal: u64 = denied.label("request").unwrap().parse().unwrap();
        let text = explain_request(&events, ordinal).unwrap();
        assert!(text.contains(&format!("request #{ordinal}:")), "{text}");
        assert!(text.contains("decision: denied"), "{text}");
        assert!(text.contains("bound by scenario `"), "{text}");
        let pair = format!(
            "{}->{}",
            denied.label("src").unwrap(),
            denied.label("dst").unwrap()
        );
        assert!(text.contains(&pair), "names the DC pair: {text}");
        assert!(text.contains("causal trace:"), "{text}");
        assert!(text.contains("market/index_probe"), "{text}");
        assert!(text.contains("critical path: market/admit"), "{text}");
    }

    #[test]
    fn explain_is_deterministic_per_seed() {
        let a = storm_trace(120);
        let b = storm_trace(120);
        assert_eq!(
            explain_denied(&a).unwrap(),
            explain_denied(&b).unwrap(),
            "same seed, same explanations"
        );
    }

    #[test]
    fn unknown_ordinal_is_an_error() {
        let events = storm_trace(10);
        let err = explain_request(&events, 999_999).unwrap_err();
        assert!(err.contains("no market/admit span"), "{err}");
        assert!(explain_request(&[], 0).is_err());
    }

    #[test]
    fn denied_listing_counts_match() {
        let events = storm_trace(200);
        let text = explain_denied(&events).unwrap();
        let denied = events
            .iter()
            .filter(|e| {
                e.span == "market" && e.phase == "admit" && e.label("outcome") == Some("denied")
            })
            .count();
        assert!(
            text.starts_with(&format!("200 admits in trace, {denied} denied")),
            "{text}"
        );
        assert_eq!(text.matches("request #").count(), denied, "{text}");
    }
}
