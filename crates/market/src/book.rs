//! The entitlement book: committed, time-sliced entitlements keyed by
//! `(NpgId, QosBucket, slice)`.
//!
//! Contract kinds follow the subscription/quota/usage-based shape of
//! production entitlement configs: subscriptions and quotas *reserve*
//! rate (they become risk-sweep background for admission), usage-based
//! entitlements are metered only and reserve nothing.

use crate::slice::{SliceGrid, SliceId};
use entitlement_approval::merge_background;
use entitlement_core::{NpgId, QosBucket, Rate, RegionId};
use entitlement_topology::routing::Demand;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How an entitlement is charged and whether it reserves capacity.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum EntitlementKind {
    /// Flat-rate reservation for every slice it covers.
    Subscription,
    /// Reservation plus a volume budget; the budget drains as traffic
    /// is metered against it.
    Quota {
        /// Remaining transferable volume, bytes.
        volume_bytes: f64,
    },
    /// Pay-per-use: metered, never reserved, so it contributes no
    /// risk-sweep background.
    UsageBased,
}

impl EntitlementKind {
    /// Whether this kind reserves rate (and therefore backs the
    /// residual index's committed background).
    pub fn reserves(&self) -> bool {
        !matches!(self, EntitlementKind::UsageBased)
    }
}

/// The store key: who, at what priority, when.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct MarketKey {
    /// The entitled network product group.
    pub npg: NpgId,
    /// Approval bucket (class + band).
    pub bucket: QosBucket,
    /// Time slice within the market's grid.
    pub slice: SliceId,
}

/// One committed entitlement: a directed region-pair rate for every
/// slice the market's grid covers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MarketEntitlement {
    /// The entitled network product group.
    pub npg: NpgId,
    /// Approval bucket.
    pub bucket: QosBucket,
    /// Source region.
    pub src: RegionId,
    /// Destination region.
    pub dst: RegionId,
    /// Entitled rate.
    pub rate: Rate,
    /// Contract kind.
    pub kind: EntitlementKind,
}

/// The time-sliced entitlement store. Every committed contract and
/// every admitted grant lands here, keyed by `(npg, bucket, slice)`.
#[derive(Clone, Debug, Default)]
pub struct EntitlementBook {
    entries: BTreeMap<MarketKey, Vec<MarketEntitlement>>,
}

impl EntitlementBook {
    /// Empty book.
    pub fn new() -> EntitlementBook {
        EntitlementBook::default()
    }

    /// Record an entitlement under every slice of the grid (committed
    /// contracts span the whole period).
    pub fn commit_all_slices(&mut self, grid: &SliceGrid, e: &MarketEntitlement) {
        for slice in grid.slices() {
            self.commit(
                MarketKey {
                    npg: e.npg,
                    bucket: e.bucket,
                    slice,
                },
                e.clone(),
            );
        }
    }

    /// Record an entitlement under one key.
    pub fn commit(&mut self, key: MarketKey, e: MarketEntitlement) {
        self.entries.entry(key).or_default().push(e);
    }

    /// All entitlements under one key.
    pub fn get(&self, key: &MarketKey) -> &[MarketEntitlement] {
        self.entries.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.entries.len()
    }

    /// Total rate an NPG holds in one bucket and slice.
    pub fn held(&self, key: &MarketKey) -> Rate {
        self.get(key).iter().map(|e| e.rate).sum()
    }

    /// The reserved background for the risk sweep: every reserving
    /// entitlement of slice 0 (contracts cover every slice at the same
    /// rate, so one slice is the steady-state concurrent load), merged
    /// by `(src, dst)`.
    pub fn reserved_background(&self) -> Vec<Demand> {
        let raw: Vec<Demand> = self
            .entries
            .iter()
            .filter(|(k, _)| k.slice == SliceId(0))
            .flat_map(|(_, es)| es.iter())
            .filter(|e| e.kind.reserves())
            .map(|e| Demand {
                src: e.src,
                dst: e.dst,
                amount: e.rate,
            })
            .collect();
        merge_background(&raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entitlement_core::{QosBand, QosClass, Quarter};

    fn bucket() -> QosBucket {
        QosBucket {
            class: QosClass::C1,
            band: QosBand::Low,
        }
    }

    fn ent(npg: u32, rate_g: f64, kind: EntitlementKind) -> MarketEntitlement {
        MarketEntitlement {
            npg: NpgId(npg),
            bucket: bucket(),
            src: RegionId(0),
            dst: RegionId(1),
            rate: Rate::gbps(rate_g),
            kind,
        }
    }

    #[test]
    fn commit_all_slices_fills_every_slice() {
        let grid = SliceGrid::quarterly(Quarter(0), 30);
        let mut book = EntitlementBook::new();
        book.commit_all_slices(&grid, &ent(1, 10.0, EntitlementKind::Subscription));
        assert_eq!(book.key_count(), 3);
        for slice in grid.slices() {
            let key = MarketKey {
                npg: NpgId(1),
                bucket: bucket(),
                slice,
            };
            assert!((book.held(&key).as_gbps() - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn usage_based_reserves_nothing() {
        let grid = SliceGrid::quarterly(Quarter(0), 30);
        let mut book = EntitlementBook::new();
        book.commit_all_slices(&grid, &ent(1, 10.0, EntitlementKind::Subscription));
        book.commit_all_slices(&grid, &ent(2, 7.0, EntitlementKind::Quota { volume_bytes: 1e15 }));
        book.commit_all_slices(&grid, &ent(3, 99.0, EntitlementKind::UsageBased));
        let bg = book.reserved_background();
        assert_eq!(bg.len(), 1, "one (src, dst) pair, merged: {bg:?}");
        assert!(
            (bg[0].amount.as_gbps() - 17.0).abs() < 1e-9,
            "subscription + quota reserve, usage-based does not: {}",
            bg[0].amount
        );
    }
}
