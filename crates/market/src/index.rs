//! The precomputed residual-availability index.
//!
//! For each `(src, dst, bucket, slice)` the index caches the
//! SLO-feasible headroom the backbone can carry for that pair *on top
//! of* the committed background, derived from one risk sweep. A warm
//! admit is then a lookup plus a decrement — no sweep.
//!
//! **Freshness invariant**: every slot records the index epoch it was
//! built under. Any event that could change physical headroom (contract
//! load, topology fault, fault clear) bumps the epoch, which makes every
//! existing slot stale at once; stale slots are *never* served — the
//! admit path falls closed to the sweep, whose decision re-installs the
//! slot under the current epoch. The index is thus only ever refreshed
//! incrementally, one decided key at a time, never rebuilt wholesale on
//! the serving path.

use crate::book::MarketKey;
use crate::slice::SliceId;
use entitlement_core::{QosBucket, Rate, RegionId, SloTarget};
use entitlement_obs::Obs;
use entitlement_risk::{assess_risk_samples_obs, RiskConfig};
use entitlement_topology::routing::Demand;
use entitlement_topology::{LinkId, ScenarioSet, Topology};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Index key: directed region pair, bucket, slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexKey {
    /// Source region.
    pub src: RegionId,
    /// Destination region.
    pub dst: RegionId,
    /// Approval bucket.
    pub bucket: QosBucket,
    /// Time slice.
    pub slice: SliceId,
}

impl IndexKey {
    /// The index key serving one store key's region pair.
    pub fn for_pair(src: RegionId, dst: RegionId, market: &MarketKey) -> IndexKey {
        IndexKey {
            src,
            dst,
            bucket: market.bucket,
            slice: market.slice,
        }
    }
}

/// One cached headroom slot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexSlot {
    /// Remaining SLO-feasible headroom for the key.
    pub remaining: Rate,
    /// Total granted against this key so far (survives invalidation:
    /// grants are real regardless of index freshness).
    pub consumed: Rate,
    /// Epoch the headroom was computed under.
    pub built_epoch: u64,
}

/// Why a slot's headroom is what it is: the scenario that was binding
/// when the headroom sweep ran. Kept in a side map (not inside
/// [`IndexSlot`], which stays `Copy`) and surfaced in the
/// decision-provenance labels of every admit served off the slot.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotProvenance {
    /// Label of the binding failure scenario (e.g. `ok`,
    /// `cut(r0-r3)`), or `infeasible` when no scenario mass could meet
    /// the SLO.
    pub binding_scenario: String,
    /// The binding scenario's dead links, `+`-joined (`none` when the
    /// healthy scenario binds).
    pub binding_links: String,
    /// The binding scenario's probability.
    pub binding_probability: f64,
    /// The physical SLO-feasible headroom the sweep computed.
    pub headroom: Rate,
}

/// Render a dead-link set for provenance labels: `l3+l7`, or `none`.
#[must_use]
pub fn fmt_links(links: &[LinkId]) -> String {
    if links.is_empty() {
        return "none".to_string();
    }
    let mut out = String::new();
    for (i, l) in links.iter().enumerate() {
        if i > 0 {
            out.push('+');
        }
        let _ = write!(out, "{l}");
    }
    out
}

/// The residual index: headroom slots plus the freshness epoch.
#[derive(Clone, Debug, Default)]
pub struct ResidualIndex {
    slots: BTreeMap<IndexKey, IndexSlot>,
    provenance: BTreeMap<IndexKey, SlotProvenance>,
    epoch: u64,
}

impl ResidualIndex {
    /// Empty (cold) index.
    pub fn new() -> ResidualIndex {
        ResidualIndex::default()
    }

    /// The current freshness epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Invalidate every slot at once by advancing the epoch. O(1): the
    /// slots stay in place but [`ResidualIndex::fresh_remaining`] stops
    /// serving them.
    pub fn invalidate_all(&mut self) {
        self.epoch += 1;
    }

    /// Remaining headroom for a key — only if the slot was built under
    /// the current epoch. Stale slots are never served.
    pub fn fresh_remaining(&self, key: &IndexKey) -> Option<Rate> {
        self.slots
            .get(key)
            .filter(|s| s.built_epoch == self.epoch)
            .map(|s| s.remaining)
    }

    /// Rate already granted against a key (fresh or stale: consumption
    /// is real either way).
    pub fn consumed(&self, key: &IndexKey) -> Rate {
        self.slots.get(key).map_or(Rate::ZERO, |s| s.consumed)
    }

    /// Install (or refresh) a slot from a sweep decision: `headroom` is
    /// the physical SLO-feasible volume for the pair, from which the
    /// key's prior consumption is subtracted.
    pub fn install(&mut self, key: IndexKey, headroom: Rate) {
        let consumed = self.consumed(&key);
        self.slots.insert(
            key,
            IndexSlot {
                remaining: (headroom - consumed).clamp_zero(),
                consumed,
                built_epoch: self.epoch,
            },
        );
    }

    /// [`ResidualIndex::install`] plus the sweep's provenance record,
    /// so later index-path admits can still name the binding scenario
    /// without re-sweeping.
    pub fn install_with(&mut self, key: IndexKey, headroom: Rate, provenance: SlotProvenance) {
        self.install(key, headroom);
        self.provenance.insert(key, provenance);
    }

    /// Provenance of a key's slot, if a provenance-carrying install
    /// recorded one. Survives epoch bumps alongside the slot (it
    /// explains the *last computed* headroom, which is what the slot
    /// still holds).
    #[must_use]
    pub fn provenance(&self, key: &IndexKey) -> Option<&SlotProvenance> {
        self.provenance.get(key)
    }

    /// Decrement a slot after a grant.
    pub fn consume(&mut self, key: &IndexKey, granted: Rate) {
        if let Some(slot) = self.slots.get_mut(key) {
            slot.remaining = (slot.remaining - granted).clamp_zero();
            slot.consumed += granted;
        }
    }

    /// The serving state of a key's slot, as a stable label: `fresh`
    /// (servable), `exhausted` (fresh but empty), `stale` (built under
    /// an older epoch), or `cold` (never built).
    #[must_use]
    pub fn slot_state(&self, key: &IndexKey) -> &'static str {
        match self.slots.get(key) {
            Some(s) if s.built_epoch == self.epoch && !s.remaining.is_zero() => "fresh",
            Some(s) if s.built_epoch == self.epoch => "exhausted",
            Some(_) => "stale",
            None => "cold",
        }
    }

    /// Number of slots currently fresh.
    pub fn fresh_len(&self) -> usize {
        self.slots
            .values()
            .filter(|s| s.built_epoch == self.epoch)
            .count()
    }

    /// Total number of slots, fresh or stale.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the index holds no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// The shared headroom kernel: the SLO-feasible volume the backbone can
/// carry from `src` to `dst` on top of `background`, under the given
/// scenario set.
///
/// Both the index build and the sweep fallback call exactly this
/// function with exactly the same inputs, which is what makes an
/// index-path decision bit-equal a sweep-path decision while the index
/// is fresh: the cached number *is* the sweep's number.
pub fn pair_headroom(
    topo: &Topology,
    scenarios: &ScenarioSet,
    background: &[Demand],
    src: RegionId,
    dst: RegionId,
    slo: SloTarget,
    k_paths: usize,
) -> Rate {
    pair_headroom_probe(
        topo,
        scenarios,
        background,
        src,
        dst,
        slo,
        k_paths,
        &Obs::disabled(),
    )
    .headroom
}

/// A headroom sweep's full answer: the number plus its provenance.
#[derive(Clone, Debug)]
pub struct HeadroomProbe {
    /// SLO-feasible volume for the pair.
    pub headroom: Rate,
    /// Which scenario was binding and why.
    pub provenance: SlotProvenance,
}

/// [`pair_headroom`] keeping the per-scenario evidence: the same
/// sweep, but instead of folding the samples into a curve and reading
/// one point, the binding scenario (the one at which cumulative
/// probability first covers the SLO, in admitted-volume order) is
/// identified and recorded. `probe.headroom` is bit-equal to
/// [`pair_headroom`]'s return value; the provenance is free.
///
/// Telemetry (`risk` sweep/merge/scenario spans, sweep histograms)
/// lands in `obs` when enabled.
#[allow(clippy::too_many_arguments)]
pub fn pair_headroom_probe(
    topo: &Topology,
    scenarios: &ScenarioSet,
    background: &[Demand],
    src: RegionId,
    dst: RegionId,
    slo: SloTarget,
    k_paths: usize,
    obs: &Obs,
) -> HeadroomProbe {
    // Probe with the source's full egress: no admissible volume can
    // exceed it, so the curve's SLO point is the true headroom.
    let probe = Demand {
        src,
        dst,
        amount: topo.egress_capacity(src),
    };
    let samples = assess_risk_samples_obs(
        topo,
        &[probe],
        scenarios,
        &RiskConfig {
            k_paths,
            background: background.to_vec(),
            workers: 1,
            dedup: true,
        },
        obs,
    );
    match samples.binding_scenario(0, slo.availability()) {
        Some(b) => {
            let scenario = &scenarios.scenarios[b];
            HeadroomProbe {
                headroom: samples.samples[0][b].0,
                provenance: SlotProvenance {
                    binding_scenario: scenario.label.clone(),
                    binding_links: fmt_links(&scenario.dead_links),
                    binding_probability: scenario.probability,
                    headroom: samples.samples[0][b].0,
                },
            }
        }
        None => HeadroomProbe {
            headroom: Rate::ZERO,
            provenance: SlotProvenance {
                binding_scenario: "infeasible".to_string(),
                binding_links: "none".to_string(),
                binding_probability: 0.0,
                headroom: Rate::ZERO,
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entitlement_core::{QosBand, QosClass};

    fn key(slice: u32) -> IndexKey {
        IndexKey {
            src: RegionId(0),
            dst: RegionId(1),
            bucket: QosBucket {
                class: QosClass::C1,
                band: QosBand::Low,
            },
            slice: SliceId(slice),
        }
    }

    #[test]
    fn stale_slots_are_never_served() {
        let mut idx = ResidualIndex::new();
        idx.install(key(0), Rate::gbps(100.0));
        assert_eq!(idx.fresh_remaining(&key(0)), Some(Rate::gbps(100.0)));
        idx.invalidate_all();
        assert_eq!(idx.fresh_remaining(&key(0)), None, "stale after epoch bump");
        assert_eq!(idx.len(), 1, "the slot itself survives");
        assert_eq!(idx.fresh_len(), 0);
    }

    #[test]
    fn consumption_survives_invalidation_and_reinstall() {
        let mut idx = ResidualIndex::new();
        idx.install(key(0), Rate::gbps(100.0));
        idx.consume(&key(0), Rate::gbps(30.0));
        assert_eq!(idx.fresh_remaining(&key(0)), Some(Rate::gbps(70.0)));
        idx.invalidate_all();
        // Re-install with reduced physical headroom: prior grants still
        // count against it.
        idx.install(key(0), Rate::gbps(50.0));
        assert_eq!(idx.fresh_remaining(&key(0)), Some(Rate::gbps(20.0)));
        assert_eq!(idx.consumed(&key(0)), Rate::gbps(30.0));
    }

    #[test]
    fn provenance_rides_installs_and_survives_epochs() {
        let mut idx = ResidualIndex::new();
        assert_eq!(idx.provenance(&key(0)), None);
        let prov = SlotProvenance {
            binding_scenario: "cut(r0-r3)".to_string(),
            binding_links: "l3+l7".to_string(),
            binding_probability: 0.01,
            headroom: Rate::gbps(40.0),
        };
        idx.install_with(key(0), Rate::gbps(40.0), prov.clone());
        assert_eq!(idx.provenance(&key(0)), Some(&prov));
        idx.invalidate_all();
        // The slot is stale but the explanation of its last headroom
        // computation remains addressable.
        assert_eq!(idx.provenance(&key(0)), Some(&prov));
    }

    #[test]
    fn link_sets_render_for_labels() {
        assert_eq!(fmt_links(&[]), "none");
        assert_eq!(fmt_links(&[LinkId(3)]), "l3");
        assert_eq!(fmt_links(&[LinkId(3), LinkId(7)]), "l3+l7");
    }

    #[test]
    fn consume_clamps_at_zero() {
        let mut idx = ResidualIndex::new();
        idx.install(key(1), Rate::gbps(10.0));
        idx.consume(&key(1), Rate::gbps(25.0));
        assert_eq!(idx.fresh_remaining(&key(1)), Some(Rate::ZERO));
        assert_eq!(idx.consumed(&key(1)), Rate::gbps(25.0));
    }
}
