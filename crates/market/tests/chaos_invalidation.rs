//! Chaos integration: burst admission across a link cut.
//!
//! The invariant under test is the fail-closed rule — after a topology
//! fault, **no admit may be served pre-fault headroom**. The fault
//! schedule comes from a deterministic `entitlement_chaos::FaultPlan`
//! with a `LinkCut` window; the market must route every first-touch
//! admit after the cut down the sweep path (degraded scenarios), and
//! again after the cut heals (headroom may have grown back).

use entitlement_approval::ApprovalConfig;
use entitlement_chaos::{Fault, FaultKind, FaultPlan, TimeWindow};
use entitlement_core::{QosBand, QosBucket, QosClass, Quarter};
use entitlement_market::{
    generate_storm, AdmitPath, EntitlementMarket, SliceGrid, StormConfig,
};
use entitlement_topology::{BackboneSpec, LinkId};

fn market() -> EntitlementMarket {
    let topo = BackboneSpec::small(0x1360).build();
    EntitlementMarket::new(
        topo,
        SliceGrid::quarterly(Quarter(0), 30),
        ApprovalConfig {
            tms_per_hose: 2,
            max_cuts: 1,
            ..Default::default()
        },
    )
}

fn buckets() -> Vec<QosBucket> {
    vec![QosBucket {
        class: QosClass::C3,
        band: QosBand::Low,
    }]
}

#[test]
fn admits_fail_closed_to_sweep_across_a_link_cut() {
    let plan = FaultPlan {
        seed: 19,
        faults: vec![Fault {
            window: TimeWindow::new(1000, 5000),
            kind: FaultKind::LinkCut { links: vec![0, 3] },
        }],
    };

    let mut market = market();
    market.warm(&buckets(), &entitlement_obs::Obs::disabled());
    let storm = generate_storm(
        &market,
        &buckets(),
        &StormConfig {
            requests: 60,
            seed: 7,
            npgs: 4,
            max_ask_gbps: 2.0,
        },
    );

    // Phase 1 (t=0, before the window): everything rides the warm index.
    let mut cut_applied = false;
    let mut first_touch_after_cut = 0usize;
    let mut index_before_refresh = 0usize;
    let mut seen_keys: Vec<String> = Vec::new();
    for (i, req) in storm.iter().enumerate() {
        // Advance logical time 100 ms per request: the cut lands
        // mid-storm, exactly the "burst admission during failure" case.
        let now_ms = i as u64 * 100;
        let cuts = plan.cut_links(now_ms);
        if !cuts.is_empty() && !cut_applied {
            market.apply_fault(&cuts.iter().map(|&l| LinkId(l)).collect::<Vec<_>>());
            cut_applied = true;
            seen_keys.clear();
            assert_eq!(
                market.index().fresh_len(),
                0,
                "the cut must invalidate every slot before any admit"
            );
        }
        let d = market.admit(req);
        if cut_applied {
            let key = format!("{:?}>{:?}/{}/{}", req.src, req.dst, req.bucket, req.slice);
            if !seen_keys.contains(&key) {
                first_touch_after_cut += 1;
                if d.path == AdmitPath::Index {
                    index_before_refresh += 1;
                }
                seen_keys.push(key);
            }
        } else {
            assert_eq!(d.path, AdmitPath::Index, "warm slot before the cut");
        }
    }
    assert!(cut_applied, "the fault window must land inside the storm");
    assert!(first_touch_after_cut > 0, "storm must touch keys post-cut");
    assert_eq!(
        index_before_refresh, 0,
        "{index_before_refresh} first-touch admits were served stale pre-cut headroom"
    );
}

#[test]
fn healing_the_cut_invalidates_again() {
    let mut market = market();
    market.warm(&buckets(), &entitlement_obs::Obs::disabled());
    market.apply_fault(&[LinkId(0)]);
    assert_eq!(market.index().fresh_len(), 0);
    let storm = generate_storm(
        &market,
        &buckets(),
        &StormConfig {
            requests: 5,
            seed: 1,
            npgs: 2,
            max_ask_gbps: 1.0,
        },
    );
    let d = market.admit(&storm[0]);
    assert_eq!(d.path, AdmitPath::Sweep, "first touch after fault sweeps");
    let d = market.admit(&storm[0]);
    assert_eq!(d.path, AdmitPath::Index, "refreshed slot serves again");

    // Healing restores capacity — which also must not be served from
    // the degraded-era slots.
    market.clear_faults();
    assert_eq!(market.index().fresh_len(), 0, "heal invalidates too");
    let d = market.admit(&storm[0]);
    assert_eq!(d.path, AdmitPath::Sweep);
}
