//! Property tests for the market's two load-bearing claims:
//!
//! * **index-path == sweep-path**: a warmed market and a cold market
//!   serve bit-identical grant sequences for any seeded storm — the
//!   warm index only ever returns the number the sweep would have
//!   computed;
//! * **warm negotiation == cold negotiation**: reusing the market's
//!   one-shot scenario enumeration across §8 rounds returns the same
//!   `Agreement`, byte for byte.

use entitlement_approval::{negotiate, ApprovalConfig, ThresholdPolicy};
use entitlement_core::{
    Direction, NpgId, QosBand, QosBucket, QosClass, Quarter, Rate, RegionId, SloTarget,
};
use entitlement_hose::HoseRequest;
use entitlement_market::{
    generate_storm, EntitlementKind, EntitlementMarket, MarketEntitlement, SliceGrid, StormConfig,
};
use entitlement_topology::BackboneSpec;
use proptest::prelude::*;

const TOPO_SEEDS: [u64; 3] = [0x1360, 41, 7];

fn config() -> ApprovalConfig {
    ApprovalConfig {
        tms_per_hose: 2,
        max_cuts: 1,
        ..Default::default()
    }
}

fn buckets() -> Vec<QosBucket> {
    vec![
        QosBucket {
            class: QosClass::C1,
            band: QosBand::Low,
        },
        QosBucket {
            class: QosClass::C3,
            band: QosBand::High,
        },
    ]
}

fn contracts(topo_dcs: &[RegionId]) -> Vec<MarketEntitlement> {
    vec![
        MarketEntitlement {
            npg: NpgId(100),
            bucket: buckets()[0],
            src: topo_dcs[0],
            dst: topo_dcs[1],
            rate: Rate::gbps(40.0),
            kind: EntitlementKind::Subscription,
        },
        MarketEntitlement {
            npg: NpgId(101),
            bucket: buckets()[1],
            src: topo_dcs[1],
            dst: topo_dcs[2],
            rate: Rate::gbps(25.0),
            kind: EntitlementKind::Quota { volume_bytes: 1e15 },
        },
    ]
}

proptest! {
    // Every case runs real risk sweeps; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A warmed market (every admit rides the index) and a cold market
    /// (the first admit per key sweeps) grant bit-identical rates for
    /// the same storm. This is the index-freshness contract: the cached
    /// number IS the sweep's number.
    #[test]
    fn warm_index_decisions_bit_equal_cold_sweep_decisions(
        topo_seed in 0usize..3,
        storm_seed in 0u64..1000,
    ) {
        let topo = BackboneSpec::small(TOPO_SEEDS[topo_seed]).build();
        let grid = SliceGrid::quarterly(Quarter(0), 30);
        let dcs = topo.dc_ids();

        let mut warm = EntitlementMarket::new(topo.clone(), grid, config());
        warm.load_contracts(&contracts(&dcs));
        warm.warm(&buckets(), &entitlement_obs::Obs::disabled());

        let mut cold = EntitlementMarket::new(topo, grid, config());
        cold.load_contracts(&contracts(&dcs));
        // No warm(): every first touch per key goes down the sweep path.

        let storm = generate_storm(&warm, &buckets(), &StormConfig {
            requests: 40,
            seed: storm_seed,
            npgs: 4,
            max_ask_gbps: 30.0,
        });
        for req in &storm {
            let a = warm.admit(req);
            let b = cold.admit(req);
            prop_assert_eq!(
                a.granted.as_bps().to_bits(),
                b.granted.as_bps().to_bits(),
                "warm grant {} != cold grant {} for {:?}",
                a.granted, b.granted, req
            );
            prop_assert_eq!(a.outcome, b.outcome);
        }
    }

    /// `negotiate_warm` against the market's cached enumeration returns
    /// the same Agreement as a cold `negotiate`, byte for byte, for any
    /// seed × topology.
    #[test]
    fn warm_negotiation_matches_cold(
        topo_seed in 0usize..3,
        ask_g in 100u64..20_000,
    ) {
        let topo = BackboneSpec::small(TOPO_SEEDS[topo_seed]).build();
        let dcs = topo.dc_ids();
        let hose = HoseRequest::general(
            NpgId(5),
            QosClass::C2,
            dcs[0],
            Direction::Egress,
            Rate::gbps(ask_g as f64),
            dcs[1..].iter().copied(),
        );
        let slo = SloTarget::new(0.99).unwrap();
        let cfg = config();
        let market = EntitlementMarket::new(
            topo.clone(),
            SliceGrid::quarterly(Quarter(0), 30),
            cfg.clone(),
        );

        let mut policy_a = ThresholdPolicy { accept_fraction: 0.8, patience: 2 };
        let mut policy_b = ThresholdPolicy { accept_fraction: 0.8, patience: 2 };
        let warm = market.negotiate_warm(&hose, slo, &mut policy_a, 5);
        let cold = negotiate(&topo, &hose, slo, &mut policy_b, &cfg, 5);
        prop_assert_eq!(
            serde_json::to_string(&warm).unwrap(),
            serde_json::to_string(&cold).unwrap()
        );
    }
}
