//! # network-entitlement
//!
//! A from-scratch Rust reproduction of *Network Entitlement:
//! Contract-based Network Sharing with Agility and SLO Guarantees*
//! (Ahuja et al., SIGCOMM 2022) — Meta's production WAN bandwidth
//! reservation framework.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`core`] — contracts, QoS classes, rates, SLIs, deterministic RNG;
//! * [`topology`] — the backbone WAN substrate (graph, generator,
//!   routing, max-flow, failure scenarios);
//! * [`workload`] — synthetic Meta-like services, patterns, matrices,
//!   incidents, demand histories;
//! * [`forecast`] — the §4.1 demand-forecast pipeline (decomposable
//!   time-series model + quantile GBDT);
//! * [`hose`] — pipe/hose/segmented-hose models, Algorithm 1,
//!   representative traffic matrices, hose coverage;
//! * [`obs`] — the telemetry core (counters/gauges/histograms, span
//!   traces as JSONL, Prometheus text export — see `src/telemetry.rs`
//!   for the CLI plumbing);
//! * [`risk`] — the Risk Simulation System (availability curves);
//! * [`approval`] — Algorithm 2 (`Hose_Approval` / `Pipe_Approval`);
//! * [`market`] — approval as a serving system: time-sliced entitlement
//!   store with a warm residual-availability index, fail-closed index
//!   invalidation, and seeded admission storms (`entitlectl market`);
//! * [`simnet`] — the enforcement-side network simulator;
//! * [`kvstore`] — the distributed rate-aggregation store;
//! * [`chaos`] — deterministic fault injection for the runtime
//!   (fault plans, degraded stores, fail-static drills);
//! * [`enforcement`] — metering, marking, BPF-style classification,
//!   agents, the §6 drill, and the §7.4 convergence simulation;
//! * [`analyzer`] — static diagnostics over contracts, hoses, pipes,
//!   topologies, and availability curves (`entitlectl lint`);
//! * [`slo`] — windowed SLO evaluation over the obs outputs:
//!   attainment, multi-window burn-rate alerts, utilization audit, and
//!   run-to-run regression tracking (`entitlectl slo report|audit`);
//! * [`watch`] — the runtime watchdog: streaming invariant monitors
//!   (`W01xx`) and EWMA/CUSUM anomaly detectors over live SLI streams,
//!   with offline trace refold (`entitlectl watch`).
//!
//! ## Quickstart
//!
//! ```
//! use network_entitlement::prelude::*;
//!
//! // A backbone, a hose request, and an SLO-checked approval:
//! let topo = BackboneSpec::small(7).build();
//! let dcs = topo.dc_ids();
//! let hose = HoseRequest::general(
//!     NpgId(0), QosClass::C1, dcs[0], Direction::Egress,
//!     Rate::gbps(200.0), dcs[1..].iter().copied(),
//! );
//! let approvals = hose_approval(
//!     &topo, &[hose], &[SloTarget::new(0.99).unwrap()],
//!     &ApprovalConfig::default(),
//! );
//! assert!(approvals[0].approved_total.as_bps() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod telemetry;

pub use entitlement_analyzer as analyzer;
pub use entitlement_chaos as chaos;
pub use entitlement_approval as approval;
pub use entitlement_core as core;
pub use entitlement_enforcement as enforcement;
pub use entitlement_forecast as forecast;
pub use entitlement_hose as hose;
pub use entitlement_kvstore as kvstore;
pub use entitlement_market as market;
pub use entitlement_obs as obs;
pub use entitlement_risk as risk;
pub use entitlement_simnet as simnet;
pub use entitlement_slo as slo;
pub use entitlement_topology as topology;
pub use entitlement_watch as watch;
pub use entitlement_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use entitlement_approval::{hose_approval, ApprovalConfig, ApprovalSummary, HoseApproval};
    pub use entitlement_core::{
        Direction, Entitlement, EntitlementContract, HostId, NpgId, Period, QosClass, Quarter,
        Rate, RegionId, SloTarget,
    };
    pub use entitlement_chaos::{Fault, FaultKind, FaultPlan, TimeWindow};
    pub use entitlement_enforcement::{
        run_drill, run_drill_obs, run_drill_slo, run_drill_watch, Agent, AgentConfig, ContractDb,
        DrillConfig,
        Marker, MarkingStrategy, Meter,
        StatefulMeter, StatelessMeter,
    };
    pub use entitlement_forecast::{ForecastPipeline, PipelineConfig, QuarterForecast};
    pub use entitlement_hose::{
        generate_tms, segment_flow_series, HoseRequest, HoseSegment, TmGenConfig,
    };
    pub use entitlement_market::{
        AdmitDecision, AdmitOutcome, AdmitPath, AdmitRequest, EntitlementBook, EntitlementKind,
        EntitlementMarket, MarketEntitlement, MarketKey, ResidualIndex, SliceGrid, SliceId,
        StormConfig, StormReport,
    };
    pub use entitlement_obs::{Clock, Obs};
    pub use entitlement_risk::{
        assess_risk, assess_risk_detailed, assess_risk_detailed_obs, AvailabilityCurve,
        RiskAssessment, RiskConfig,
    };
    pub use entitlement_simnet::{Bottleneck, MarkingCommand, World, WorldConfig};
    pub use entitlement_slo::{
        BenchRecord, BenchTolerance, BurnAlert, SloEvaluator, SloPolicy, SloReport,
    };
    pub use entitlement_topology::{BackboneSpec, ScenarioSet, Topology};
    pub use entitlement_watch::{WatchEvaluator, WatchPolicy, WatchReport};
    pub use entitlement_workload::{
        HistorySpec, Incident, MatrixSpec, ServiceCatalog, TrafficMatrix, TrafficPattern,
    };
}
