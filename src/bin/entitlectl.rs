//! `entitlectl` — the operator CLI for the entitlement workspace.
//!
//! ```text
//! entitlectl plan   --out contracts.json [--seed N] [--slo 0.99]
//!                   [--workers N] [--no-dedup]
//!     Run a quarterly granting cycle on a synthetic backbone + catalog
//!     and write the approved contracts as a JSON snapshot.
//!
//! entitlectl show   --db contracts.json [--npg N]
//!     Print the stored contracts.
//!
//! entitlectl check  --db contracts.json --npg N --qos c2 --region R --rate GBPS
//!                   [--risk [--seed N] [--slo 0.99] [--workers N] [--no-dedup]]
//!     Ask whether a planned rate fits the stored entitlement
//!     (the service-team pre-launch question). With --risk, also sweep
//!     the failure scenarios and report what availability the network
//!     itself could give that rate.
//!
//! The sweep flags apply wherever the risk simulator runs: --workers N
//! fans the scenario sweep out over N threads (0 = one per core) and
//! --no-dedup disables routing each distinct failure set once. Both
//! change only wall-clock time, never results.
//!
//! entitlectl drill  [--hosts N] [--csv out.csv] [--faults plan.json]
//!                   [--trace out.jsonl] [--metrics out.prom]
//!     Run the §6 enforcement drill and optionally dump every series
//!     as CSV. With --faults, a JSON fault plan (see
//!     examples/faults/) is injected between the metering agent and
//!     the KV store — shard outages, dropped publishes, stale reads,
//!     clock skew — and the run summary reports how many cycles ran
//!     fail-static on the held decision.
//!
//! entitlectl drill  --hosts N --shards S [--strategy det|par]
//!                   [--workers N] [--cycles N] [--seed N]
//!                   [--faults plan.json] [--trace/--metrics ...]
//!     With --shards (or --strategy), run the hierarchical sharded
//!     fleet engine instead: hosts publish per-shard partials, the
//!     driver folds them in shard order, every host meters on the
//!     fold. `det` runs single-threaded; `par` fans the host passes
//!     over worker threads — results are bit-identical either way
//!     (the equivalence harness proves it), so --strategy/--workers
//!     change only wall-clock time. Prints agents/sec and the p99
//!     cycle span; demand is fixed at 10G/host vs a 5G/host
//!     entitlement so the fleet settles near half marked. Fault-plan
//!     shard outages target fleet shards by index (fail-static holds
//!     per shard).
//!
//! --trace out.jsonl / --metrics out.prom (drill, check --risk)
//!     Collect structured span events (JSONL, one event per line with
//!     ts_ms/span/phase/labels/dur_ms) and/or a Prometheus text
//!     snapshot of every counter/gauge/histogram the run touched.
//!     Timestamps come from a deterministic logical clock, so the same
//!     seed writes byte-identical traces. `drill --trace` also runs a
//!     small traced approval round first, so one file covers the
//!     approval, risk, KV, and agent span families.
//!
//! entitlectl obs summarize <trace.jsonl> [--metrics m.prom]
//!                          [--by-label KEY] [--tree]
//!     Validate a trace file against the span schema and print a
//!     per-(span, phase) latency table (count, total, mean, p50, p95,
//!     p99.9, max). Durations are per-event self-time — children are
//!     subtracted out of their parents — so the per-phase totals are
//!     additive instead of counting nested spans twice. With
//!     --by-label KEY, print an additional breakdown with one row per
//!     distinct value of that label (events without it pool under
//!     `(unlabelled)`). With --tree, also reconstruct the schema-v2
//!     span forest and print the aggregated call tree (count, total vs
//!     self time per stack path) plus the critical path through the
//!     longest root span. With --metrics, also validate the Prometheus
//!     text file. Exits 1 when either file fails validation.
//!
//! entitlectl obs flame <trace.jsonl> [--out stacks.folded]
//!     Export the trace as folded stacks ("span/phase;... <self-µs>",
//!     one line per distinct stack path, deterministic order) — the
//!     input format of every flamegraph renderer. Byte-identical for
//!     same-seed traces.
//!
//! entitlectl obs diff <a> <b>
//!     Structural diff of two trace (JSONL) or Prometheus text files:
//!     prints the first divergent line with parsed context (span,
//!     phase, ids, per-label differences / metric name) instead of a
//!     bare byte offset. Exits 0 when byte-identical, 1 on divergence,
//!     2 on usage errors. The CI determinism gates run this instead of
//!     `cmp` so a regression names the first differing event.
//!
//! entitlectl obs diff --counters <a.prom> <b.prom>
//!     Two-snapshot counter audit instead of a byte diff: both files
//!     must be valid Prometheus text, and every sample of a
//!     `# TYPE … counter` family in the first snapshot must still
//!     exist in the second with an equal-or-larger value. Counters are
//!     monotone, so a decrease or disappearance between snapshots of
//!     the same process is reported as a violation (exit 1). Gauges
//!     and histogram buckets are ignored.
//!
//! entitlectl watch <trace.jsonl> [--json] [--follow [--idle-ms N]]
//!     Re-fold the runtime watchdog over a recorded trace (any
//!     `drill`/`market --trace` output): replay the `watch`/`cycle`,
//!     `watch`/`shards` and `watch`/`admit` observation events through
//!     the streaming evaluator — invariant monitors W0101–W0104 and
//!     anomaly detectors W0105–W0107 — and print the watch report
//!     (byte-identical to the one the live run computed). Exits 1
//!     when the stream is unhealthy. With --follow, tail the file
//!     instead: fold complete lines as they are appended, print each
//!     violation and detector transition as it happens, and finish
//!     with the full report once the file stops growing for
//!     --idle-ms milliseconds (default 2000).
//!
//! --watch (drill, market)
//!     Run the streaming watchdog alongside the drill/fleet/storm and
//!     print its report after the run summary; exits 1 when the
//!     watchdog saw a violation or a detector is still firing. On
//!     `market`, the watch fold runs on the deterministic
//!     counting-clock storm (the same one --trace records), so admit
//!     latency is logical instrumentation density, not wall noise.
//!
//! entitlectl explain <trace.jsonl> (--request N | --all-denied)
//!     Render the decision provenance of admission decisions from a
//!     `market --trace` recording alone: the ask, the outcome and
//!     serving path, index epoch and probe state, residual headroom
//!     before/after, the binding failure scenario with its dead links
//!     and probability, the causal span subtree, and the critical
//!     path. --all-denied explains every denied admit in request
//!     order; exits 1 when the request ordinal is absent.
//!
//! entitlectl slo report <trace.jsonl> [--json] [policy flags]
//!     Fold the `slo`/`interval` events of a recorded trace (any
//!     `drill --trace` output) through the windowed SLO evaluator and
//!     print per-(entity, QoS) attainment, the utilization audit, and
//!     the burn-rate alert timeline. Policy flags: --fast N --slow N
//!     (window sizes, cycles), --fast-burn X --slow-burn X
//!     (thresholds), --clear-fraction X, --hysteresis N,
//!     --tolerance X (delivery slack), --under-util X --over-util X
//!     (audit bands). An invalid policy prints its E06xx findings and
//!     exits 2.
//!
//! entitlectl slo audit <trace.jsonl> [--bench-name NAME]
//!                      [--bench-dir DIR] [--write-bench] [--seed N]
//!                      [policy flags]
//!     `slo report` as a gate: exits 1 when any entity misses its SLO
//!     target, or — with --bench-name — when the run regresses against
//!     the committed `BENCH_<name>.json` baseline (p50/p99 cycle
//!     latency, delivered throughput, attainment; tolerances per
//!     crates/slo). --write-bench (re)writes the baseline after the
//!     diff.
//!
//! entitlectl market [--requests N] [--seed N] [--slice-days D]
//!                   [--max-ask GBPS] [--contracts file.json]
//!                   [--faults plan.json]
//!                   [--trace out.jsonl] [--metrics out.prom]
//!     Serve a seeded admission storm through the entitlement market:
//!     load contracts (a JSON array of market entitlements, or a
//!     deterministic synthetic book), warm the residual-availability
//!     index with one upfront risk sweep, then admit N requests and
//!     print admits/sec plus p50/p99 admit latency in µs (wall clock),
//!     outcome and serving-path counts. With --faults, any LinkCut
//!     windows in the plan are applied mid-storm and the index fails
//!     closed to the sweep path. --trace/--metrics re-run the storm
//!     under the deterministic counting clock (byte-identical per
//!     seed), emitting market/admit spans, slo/interval events (one
//!     per storm chunk), and the admits_total counters.
//!
//! entitlectl negotiate --rate GBPS [--accept FRACTION] [--seed N]
//!     Negotiate an oversized egress request against the backbone
//!     (§8 bandwidth negotiation) and print the agreement.
//!
//! entitlectl topo [--seed N] [--dot out.dot]
//!     Generate a backbone and print (or write) its Graphviz DOT
//!     rendering.
//!
//! entitlectl lint <bundle.json> [--json] [--list-rules]
//!     Run the static analyzer over a contract snapshot (bare JSON
//!     array, e.g. a `plan` output) or a lint bundle object with any
//!     of: contracts, hoses, pipes, flows, topology, approval_order,
//!     npgs, curves. Prints diagnostics with stable codes (E01xx
//!     contracts, E02xx hoses, E03xx ordering, E04xx topology, E05xx
//!     curves); exits 1 when any error-severity diagnostic fires, 0
//!     otherwise. --json emits the report as JSON; --list-rules prints
//!     the rule catalog and exits.
//! ```

use network_entitlement::chaos::FaultPlan;
use network_entitlement::core::DetRng;
use network_entitlement::enforcement::drill::{run_drill_obs, run_drill_watch, DrillConfig};
use network_entitlement::enforcement::{
    run_fleet_engine_slo, run_fleet_engine_watch, FleetConfig, FleetStrategy,
};
use network_entitlement::hose::segment::FlowSeries;
use network_entitlement::prelude::*;
use network_entitlement::slo::{BenchRecord, BenchTolerance, SloEvaluator, SloPolicy};
use network_entitlement::watch::{WatchEvaluator, WatchPolicy, WatchReport};
use network_entitlement::telemetry::{traced_approval_preamble, TelemetrySpec};
use network_entitlement::workload::matrix::MatrixSpec;
use network_entitlement::workload::ontology::CatalogSpec;
use std::collections::BTreeMap;

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The risk-sweep knobs shared by every subcommand that runs the risk
/// simulator: `(--workers N, !--no-dedup)`.
fn sweep_args(args: &[String]) -> (usize, bool) {
    let workers = arg_value(args, "--workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let dedup = !args.iter().any(|a| a == "--no-dedup");
    (workers, dedup)
}

fn parse_qos(s: &str) -> Option<QosClass> {
    match s.to_ascii_lowercase().as_str() {
        "c1" | "a" => Some(QosClass::C1),
        "c2" | "b" => Some(QosClass::C2),
        "c3" | "c" => Some(QosClass::C3),
        "c4" | "d" => Some(QosClass::C4),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("plan") => plan(&args),
        Some("show") => show(&args),
        Some("check") => check(&args),
        Some("drill") => drill(&args),
        Some("market") => market_cmd(&args),
        Some("negotiate") => negotiate_cmd(&args),
        Some("topo") => topo_cmd(&args),
        Some("lint") => lint_cmd(&args),
        Some("obs") => obs_cmd(&args),
        Some("slo") => slo_cmd(&args),
        Some("watch") => watch_cmd(&args),
        Some("explain") => explain_cmd(&args),
        _ => {
            eprintln!("usage: entitlectl <plan|show|check|drill|market|negotiate|topo|lint|obs|slo|watch|explain> [options]");
            eprintln!("see the module docs of src/bin/entitlectl.rs");
            std::process::exit(2);
        }
    }
}

fn plan(args: &[String]) {
    let out = arg_value(args, "--out").unwrap_or_else(|| "contracts.json".into());
    let seed: u64 = arg_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE17);
    let slo_v: f64 = arg_value(args, "--slo")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.99);
    let slo = SloTarget::new(slo_v).expect("valid --slo in (0,1]");

    let topo = BackboneSpec {
        seed,
        ..Default::default()
    }
    .build();
    let catalog = ServiceCatalog::generate(&CatalogSpec {
        tail_services: 200,
        seed,
        ..Default::default()
    });
    eprintln!(
        "planning on {} regions for {} services (slo {slo})...",
        topo.region_count(),
        catalog.services().len()
    );

    // High-touch hoses via segmentation, exactly like the capacity
    // planning example but trimmed for CLI latency.
    let mut rng = DetRng::new(seed);
    let mut hoses = Vec::new();
    for service in catalog.high_touch(0.75) {
        for &qos in service.rate_by_class.keys() {
            let tm = TrafficMatrix::synthesize(&topo, service, qos, &MatrixSpec::default());
            for (src, egress) in tm.egress_by_src() {
                if egress.as_gbps() < 50.0 {
                    continue;
                }
                let mut flows = FlowSeries::new();
                for (&(s, d), &r) in &tm.demands {
                    if s == src {
                        let j = rng.range(0.02, 0.08);
                        flows.insert(
                            d,
                            (0..12)
                                .map(|t| r.as_bps() * (1.0 + j * (t as f64).sin()))
                                .collect(),
                        );
                    }
                }
                if flows.len() < 2 {
                    continue;
                }
                if let Ok(h) =
                    segment_flow_series(service.npg, qos, src, Direction::Egress, egress, &flows)
                {
                    hoses.push(h);
                }
            }
        }
    }
    let slos = vec![slo; hoses.len()];
    let (workers, dedup) = sweep_args(args);
    let approvals = hose_approval(
        &topo,
        &hoses,
        &slos,
        &ApprovalConfig {
            tms_per_hose: 4,
            max_cuts: 1,
            workers,
            dedup,
            ..Default::default()
        },
    );
    let summary = ApprovalSummary::from_approvals(&approvals);
    eprintln!(
        "approved {:.1}% of {} across {} hoses",
        summary.approval_rate() * 100.0,
        summary.requested,
        summary.total_hoses
    );

    let db = ContractDb::new();
    for a in &approvals {
        if a.approved_total.is_zero() {
            continue;
        }
        db.insert(
            a.request.npg,
            a.slo,
            vec![Entitlement {
                npg: a.request.npg,
                qos: a.request.qos,
                region: a.request.region,
                direction: a.request.direction,
                entitled_rate: a.approved_total,
                period: Quarter(0).period(),
            }],
        )
        .expect("valid contract");
    }
    db.save(std::path::Path::new(&out)).expect("write contracts");
    println!("{} contracts written to {out}", db.len());
}

fn load_db(args: &[String]) -> ContractDb {
    let path = arg_value(args, "--db").unwrap_or_else(|| "contracts.json".into());
    ContractDb::load(std::path::Path::new(&path)).unwrap_or_else(|e| {
        eprintln!("cannot load {path}: {e}");
        std::process::exit(1);
    })
}

fn show(args: &[String]) {
    use std::io::Write;
    let db = load_db(args);
    let filter: Option<u32> = arg_value(args, "--npg").and_then(|s| s.parse().ok());
    let json = db.snapshot();
    let contracts: Vec<EntitlementContract> = serde_json_from(&json);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    // A closed pipe (e.g. `entitlectl show | head`) just ends the output.
    let _ = writeln!(
        out,
        "{:<12} {:<14} {:>6} {:>8} {:>8} {:>16} {:>14}",
        "contract", "npg", "qos", "region", "dir", "entitled", "period"
    );
    'outer: for c in contracts {
        if let Some(n) = filter {
            if c.npg != NpgId(n) {
                continue;
            }
        }
        for e in &c.entitlements {
            let line = format!(
                "{:<12} {:<14} {:>6} {:>8} {:>8} {:>16} {:>14}",
                format!("#{}", c.id.0),
                format!("{}", c.npg),
                format!("{}", e.qos),
                format!("{}", e.region),
                format!("{}", e.direction),
                format!("{}", e.entitled_rate),
                format!("{}", e.period),
            );
            if writeln!(out, "{line}").is_err() {
                break 'outer;
            }
        }
    }
}

fn check(args: &[String]) {
    let db = load_db(args);
    let npg = NpgId(
        arg_value(args, "--npg")
            .and_then(|s| s.parse().ok())
            .expect("--npg N"),
    );
    let qos_arg = arg_value(args, "--qos").unwrap_or_else(|| {
        eprintln!("check requires --qos <c1|c2|c3|c4>");
        std::process::exit(2);
    });
    let qos = parse_qos(&qos_arg).unwrap_or_else(|| {
        eprintln!("unknown QoS class '{qos_arg}'; expected c1..c4 (or a..d)");
        std::process::exit(2);
    });
    let region = RegionId(
        arg_value(args, "--region")
            .and_then(|s| s.parse().ok())
            .expect("--region R"),
    );
    let rate = Rate::gbps(
        arg_value(args, "--rate")
            .and_then(|s| s.parse().ok())
            .expect("--rate GBPS"),
    );
    let mut exit_code = 0;
    match db.entitled_rate(npg, qos, region, Direction::Egress, 0) {
        None => {
            println!("no entitlement found for {npg} {qos} {region} egress");
            std::process::exit(1);
        }
        Some(entitled) => {
            if rate.as_bps() <= entitled.as_bps() {
                println!(
                    "OK: {rate} fits within the {entitled} entitlement ({:.0}% headroom)",
                    (1.0 - rate.as_bps() / entitled.as_bps()) * 100.0
                );
            } else {
                println!(
                    "OVER: {rate} exceeds the {entitled} entitlement; the excess \
                     will be remarked and dropped first under congestion"
                );
                exit_code = 3;
            }
        }
    }
    if args.iter().any(|a| a == "--risk") {
        check_risk(args, region, rate);
    }
    std::process::exit(exit_code);
}

/// Flush `--trace`/`--metrics` outputs, printing one line per file (or
/// the error, exiting 1).
fn write_telemetry(tele: &TelemetrySpec, obs: &network_entitlement::obs::Obs) {
    match tele.write(obs) {
        Ok(lines) => {
            for line in lines {
                eprintln!("{line}");
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// The `check --risk` what-if: sweep the failure scenarios of the
/// planning backbone and report the availability the network could give
/// the planned rate, independent of what the contract says.
fn check_risk(args: &[String], region: RegionId, rate: Rate) {
    use network_entitlement::topology::routing::Demand;

    let seed: u64 = arg_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE17);
    let slo_v: f64 = arg_value(args, "--slo")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.99);
    let (workers, dedup) = sweep_args(args);

    let topo = BackboneSpec {
        seed,
        ..Default::default()
    }
    .build();
    let dcs = topo.dc_ids();
    let remotes: Vec<RegionId> = dcs.iter().copied().filter(|&r| r != region).collect();
    if remotes.is_empty() || !dcs.contains(&region) {
        eprintln!("--risk: region {region} is not a DC of the seed-{seed} backbone");
        return;
    }
    // Hose-style spread: the planned rate split evenly across remotes.
    let per_remote = rate * (1.0 / remotes.len() as f64);
    let demands: Vec<Demand> = remotes
        .iter()
        .map(|&dst| Demand {
            src: region,
            dst,
            amount: per_remote,
        })
        .collect();
    let tele = TelemetrySpec::from_args(args);
    let obs = tele.make_obs();
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    let assessment = assess_risk_detailed_obs(
        &topo,
        &demands,
        &scenarios,
        &RiskConfig {
            workers,
            dedup,
            ..Default::default()
        },
        &obs,
    );
    // A demand's availability at its full share; the hose carries the
    // planned rate only when every pipe does.
    let worst = assessment
        .curves
        .iter()
        .zip(&demands)
        .map(|(c, d)| c.availability_of(d.amount))
        .fold(1.0_f64, f64::min);
    let at_slo: Rate = assessment
        .curves
        .iter()
        .map(|c| c.bandwidth_at(slo_v))
        .sum();
    println!(
        "risk: {rate} from {region} survives with availability {worst:.5} \
         (network could carry {at_slo} at the {slo_v} SLO; routed {} of {} scenarios{})",
        assessment.routed_scenarios,
        assessment.total_scenarios,
        if dedup { ", dedup on" } else { ", dedup off" },
    );
    write_telemetry(&tele, &obs);
}

fn drill(args: &[String]) {
    if args.iter().any(|a| a == "--shards" || a == "--strategy") {
        return fleet_drill(args);
    }
    let hosts: usize = arg_value(args, "--hosts")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let faults = arg_value(args, "--faults").map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        FaultPlan::from_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse fault plan {path}: {e}");
            std::process::exit(2);
        })
    });
    let faulted = faults.as_ref().is_some_and(|p| !p.is_empty());
    let seed: u64 = arg_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| DrillConfig::default().seed);
    let tele = TelemetrySpec::from_args(args);
    let obs = tele.make_obs();
    if tele.requested() {
        // One traced approval round first, so the trace file covers the
        // approval and risk span families alongside the drill's own
        // agent/KV spans.
        traced_approval_preamble(seed, &obs);
    }
    let config = DrillConfig {
        hosts,
        seed,
        faults,
        ..Default::default()
    };
    let want_watch = args.iter().any(|a| a == "--watch");
    let (recorder, watch_report) = if want_watch {
        let (recorder, _slo, watch) = run_drill_watch(
            &config,
            &obs,
            &SloPolicy::default(),
            &WatchPolicy::default(),
        );
        (recorder, Some(watch))
    } else {
        (run_drill_obs(&config, &obs), None)
    };
    if let Some(csv) = arg_value(args, "--csv") {
        let names: Vec<&str> = vec![
            "rate_total_tbps",
            "rate_conform_tbps",
            "rate_entitled_tbps",
            "loss_conf",
            "loss_nonconf",
            "rtt_conf_ms",
            "rtt_nonconf_ms",
            "syn_conf",
            "syn_nonconf",
            "read_latency_s",
            "write_latency_s",
            "block_errors",
            "marked_fraction",
            "kv_unavailable",
            "fail_static",
            "staleness_ms",
        ];
        let mut outbuf = String::from("minute");
        for n in &names {
            outbuf.push(',');
            outbuf.push_str(n);
        }
        outbuf.push('\n');
        let series: BTreeMap<&str, Vec<f64>> =
            names.iter().map(|&n| (n, recorder.series(n))).collect();
        for (i, t) in recorder.times.iter().enumerate() {
            outbuf.push_str(&format!("{:.2}", t / 60.0));
            for n in &names {
                outbuf.push_str(&format!(",{}", series[n][i]));
            }
            outbuf.push('\n');
        }
        std::fs::write(&csv, outbuf).expect("write csv");
        println!("{} ticks written to {csv}", recorder.len());
    } else {
        let conf_loss_max = recorder
            .series("loss_conf")
            .into_iter()
            .fold(0.0f64, f64::max);
        println!(
            "drill complete: {} ticks, max conforming loss {:.4}%",
            recorder.len(),
            conf_loss_max * 100.0
        );
    }
    if faulted {
        let unavailable: f64 = recorder.series("kv_unavailable").iter().sum();
        let fail_static = recorder
            .series("fail_static")
            .last()
            .copied()
            .unwrap_or(0.0);
        let max_staleness = recorder
            .series("staleness_ms")
            .into_iter()
            .fold(0.0f64, f64::max);
        println!(
            "fault plan: {unavailable} tick(s) with the KV store unavailable; \
{fail_static} cycle(s) held the last decision (fail-static); \
max aggregate staleness {:.0} s",
            max_staleness / 1000.0
        );
    }
    if let Some(watch) = &watch_report {
        print!("{}", watch.render_text());
    }
    write_telemetry(&tele, &obs);
    if watch_report.as_ref().is_some_and(|w| !w.healthy()) {
        std::process::exit(1);
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// `drill --shards/--strategy`: the hierarchical sharded fleet engine.
///
/// Runs once against a wall clock for the perf headline (agents/sec
/// and cycle latency percentiles come from real elapsed time), then —
/// only if telemetry files were requested — once more under the
/// deterministic counting clock, so `--trace`/`--metrics` output stays
/// byte-identical per seed as the CLI contract promises.
fn fleet_drill(args: &[String]) {
    let hosts: usize = arg_value(args, "--hosts")
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let shards: usize = arg_value(args, "--shards")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let strategy_arg = arg_value(args, "--strategy").unwrap_or_else(|| "det".to_string());
    let Some(strategy) = FleetStrategy::parse(&strategy_arg) else {
        eprintln!("--strategy expects `det` or `par`, got `{strategy_arg}`");
        std::process::exit(2);
    };
    let workers: usize = match arg_value(args, "--workers") {
        Some(s) if s.trim() == "0" => {
            // 0 is the *internal* "auto" sentinel; accepting it
            // explicitly would look like "no workers" and silently
            // mean "all cores". Omit the flag for auto.
            eprintln!("--workers 0 is not a worker count; omit --workers to auto-size");
            std::process::exit(2);
        }
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("--workers expects a positive integer, got `{s}`");
            std::process::exit(2);
        }),
        None => 0,
    };
    let cycles: usize = arg_value(args, "--cycles")
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let seed: u64 = arg_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD217);
    let faults = arg_value(args, "--faults").map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        FaultPlan::from_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse fault plan {path}: {e}");
            std::process::exit(2);
        })
    });
    let config = FleetConfig {
        hosts,
        shards,
        strategy,
        workers,
        cycles,
        seed,
        faults,
        // 10G offered per host vs a 5G/host entitlement: the fleet
        // settles near half marked, the regime the paper enforces in.
        entitled: Rate::gbps(5.0 * hosts as f64),
        per_host_rate: Rate::gbps(10.0),
        ..FleetConfig::default()
    };

    let want_watch = args.iter().any(|a| a == "--watch");
    let wall_obs = Obs::new(Clock::wall());
    let started = std::time::Instant::now();
    // The fleet watchdog folds only deterministic SLI streams (rates,
    // shard partials, held/missing counts), so running it on the
    // wall-clock pass cannot produce clock-dependent verdicts.
    let (out, report, watch_report) = if want_watch {
        let (o, r, w) = run_fleet_engine_watch(
            &config,
            &wall_obs,
            &SloPolicy::default(),
            &WatchPolicy::default(),
        )
        .unwrap_or_else(|e| {
            eprintln!("invalid fleet config: {e}");
            std::process::exit(2);
        });
        (o, r, Some(w))
    } else {
        let (o, r) = run_fleet_engine_slo(&config, &wall_obs, &SloPolicy::default())
            .unwrap_or_else(|e| {
                eprintln!("invalid fleet config: {e}");
                std::process::exit(2);
            });
        (o, r, None)
    };
    let wall_s = started.elapsed().as_secs_f64();

    let mut cycle_ms: Vec<f64> = wall_obs
        .trace
        .events()
        .iter()
        .filter(|e| e.span == "agent" && e.phase == "cycle")
        .map(|e| e.dur_ms)
        .collect();
    cycle_ms.sort_by(f64::total_cmp);
    println!(
        "fleet drill: {hosts} hosts / {shards} shards, strategy {} — {cycles} cycles in {wall_s:.3}s",
        strategy.as_str()
    );
    if matches!(strategy, FleetStrategy::Parallel) {
        // Provenance for perf numbers: an instrumented binary routes
        // every atomic/mutex/watch op through the racecheck shims, so
        // its timings are not comparable to production builds.
        println!(
            "  parallel path: {}",
            if cfg!(feature = "racecheck") {
                "racecheck-instrumented build (timings NOT representative; \
                 rebuild without --features racecheck for perf numbers)"
            } else {
                "uninstrumented build (schedule equivalence proven separately \
                 by `cargo run -p xtask -- racecheck`)"
            }
        );
    }
    println!(
        "  {:.0} agents/sec; cycle p50 {:.2} ms, p99 {:.2} ms",
        (hosts * cycles) as f64 / wall_s,
        percentile(&cycle_ms, 0.50),
        percentile(&cycle_ms, 0.99),
    );
    let delivered = out.cycles.last().map_or(0.0, |c| c.live_conform);
    println!(
        "  marked fraction {:.4}; conforming {:.3} of {:.3} Tbps offered; attainment {:.4}",
        out.marked_fraction,
        delivered / 1e12,
        out.demand_bps / 1e12,
        report.entities.first().map_or(1.0, |e| e.attainment),
    );
    if config.faults.is_some() {
        let publish_failures: u64 = out.shard_stats.iter().map(|s| s.publish_failures).sum();
        let held: u64 = out.shard_stats.iter().map(|s| s.held_serves).sum();
        println!(
            "  fault plan: {} cycle(s) fleet-wide fail-static; {held} held shard serve(s); \
{publish_failures} shard publish failure(s)",
            out.fail_static_cycles
        );
    }

    if let Some(watch) = &watch_report {
        print!("{}", watch.render_text());
    }
    let tele = TelemetrySpec::from_args(args);
    if tele.requested() {
        let obs = tele.make_obs();
        let _ = run_fleet_engine_slo(&config, &obs, &SloPolicy::default());
        write_telemetry(&tele, &obs);
    }
    if watch_report.as_ref().is_some_and(|w| !w.healthy()) {
        std::process::exit(1);
    }
}

/// Load and schema-validate the trace file named by the first non-flag
/// argument after the subcommand words (`args[skip..]`), exiting with
/// the CLI's usual codes on failure.
fn load_trace(args: &[String], skip: usize, usage: &str) -> Vec<network_entitlement::obs::TraceEvent> {
    let path = args[skip..]
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, skip, a))
        .unwrap_or_else(|| {
            eprintln!("usage: {usage}");
            std::process::exit(2);
        });
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    network_entitlement::obs::parse_trace(&text).unwrap_or_else(|e| {
        eprintln!("{path}: invalid trace: {e}");
        std::process::exit(1);
    })
}

/// Flags that take no value — the token after one of these is a
/// positional argument, not the flag's operand.
const BOOLEAN_FLAGS: &[&str] = &[
    "--json",
    "--write-bench",
    "--tree",
    "--all-denied",
    "--follow",
    "--watch",
    "--counters",
];

/// Whether `candidate` is the value of a `--flag value` pair (so a
/// positional scan can skip it).
fn is_flag_value(args: &[String], skip: usize, candidate: &str) -> bool {
    args[skip..].windows(2).any(|w| {
        w[0].starts_with("--") && !BOOLEAN_FLAGS.contains(&w[0].as_str()) && w[1] == candidate
    })
}

fn obs_cmd(args: &[String]) {
    use network_entitlement::obs::{
        summarize_trace, summarize_trace_by_label, validate_prometheus,
    };

    const USAGE: &str = "entitlectl obs <summarize|flame|diff> ...\n\
         entitlectl obs summarize <trace.jsonl> [--metrics m.prom] [--by-label KEY] [--tree]\n\
         entitlectl obs flame <trace.jsonl> [--out stacks.folded]\n\
         entitlectl obs diff [--counters] <a> <b>";
    match args.get(1).map(String::as_str) {
        Some("summarize") => {}
        Some("flame") => return obs_flame(args, USAGE),
        Some("diff") => return obs_diff(args, USAGE),
        _ => {
            eprintln!("usage: {USAGE}");
            std::process::exit(2);
        }
    }
    let events = load_trace(args, 2, USAGE);
    print!("{}", summarize_trace(&events));
    if let Some(key) = arg_value(args, "--by-label") {
        println!();
        print!("{}", summarize_trace_by_label(&events, &key));
    }
    if args.iter().any(|a| a == "--tree") {
        use network_entitlement::obs::{render_critical_path, render_span_tree};
        match render_span_tree(&events) {
            Ok(tree) => {
                println!();
                print!("{tree}");
                println!();
                print!("{}", render_critical_path(&events));
            }
            Err(e) => {
                eprintln!("cannot build span tree: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(mpath) = arg_value(args, "--metrics") {
        let mtext = std::fs::read_to_string(&mpath).unwrap_or_else(|e| {
            eprintln!("cannot read {mpath}: {e}");
            std::process::exit(1);
        });
        match validate_prometheus(&mtext) {
            Ok(samples) => println!("{mpath}: {samples} valid metric sample(s)"),
            Err(e) => {
                eprintln!("{mpath}: invalid metrics: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// `obs flame`: export a trace as flamegraph folded stacks.
fn obs_flame(args: &[String], usage: &str) {
    use network_entitlement::obs::flamegraph_folded;
    let events = load_trace(args, 2, usage);
    let folded = flamegraph_folded(&events).unwrap_or_else(|e| {
        eprintln!("cannot build flamegraph: {e}");
        std::process::exit(1);
    });
    match arg_value(args, "--out") {
        Some(path) => {
            std::fs::write(&path, &folded).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "{} stack(s) written to {path}; render with e.g. flamegraph.pl",
                folded.lines().count()
            );
        }
        None => print!("{folded}"),
    }
}

/// `obs diff`: structural first-divergence diff of two telemetry files.
/// Trace (JSONL) vs Prometheus text is auto-detected from the first
/// non-blank line; exit 0 identical, 1 divergent, 2 usage. With
/// `--counters`, a monotonicity audit of two Prometheus snapshots
/// instead: counter-family samples may not decrease or disappear from
/// the first to the second.
fn obs_diff(args: &[String], usage: &str) {
    use network_entitlement::obs::{diff_counters, diff_prometheus, diff_traces};
    let mut paths = args[2..].iter().filter(|a| !a.starts_with("--"));
    let (Some(pa), Some(pb)) = (paths.next(), paths.next()) else {
        eprintln!("usage: {usage}");
        std::process::exit(2);
    };
    let read = |p: &String| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let (a, b) = (read(pa), read(pb));
    if args.iter().any(|arg| arg == "--counters") {
        match diff_counters(&a, &b) {
            Ok(violations) if violations.is_empty() => {
                println!("{pa} -> {pb}: counters monotone");
            }
            Ok(violations) => {
                eprintln!("{pa} -> {pb}:");
                for v in &violations {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
        return;
    }
    let is_trace = |t: &str| {
        t.lines()
            .find(|l| !l.trim().is_empty())
            .is_some_and(|l| l.trim_start().starts_with('{'))
    };
    let report = if is_trace(&a) || is_trace(&b) {
        diff_traces(&a, &b)
    } else {
        diff_prometheus(&a, &b)
    };
    match report {
        None => println!("{pa} and {pb}: identical"),
        Some(r) => {
            eprintln!("{pa} vs {pb}:");
            eprint!("{r}");
            std::process::exit(1);
        }
    }
}

/// `explain`: render decision provenance from a `market --trace`
/// recording — no market state or replay, just the trace.
fn explain_cmd(args: &[String]) {
    use network_entitlement::market::{explain_denied, explain_request};
    const USAGE: &str = "entitlectl explain <trace.jsonl> (--request N | --all-denied)";
    let events = load_trace(args, 1, USAGE);
    let rendered = if args.iter().any(|a| a == "--all-denied") {
        explain_denied(&events)
    } else if let Some(id) = arg_value(args, "--request") {
        let id: u64 = id.parse().unwrap_or_else(|_| {
            eprintln!("--request expects the request ordinal (an integer), got `{id}`");
            std::process::exit(2);
        });
        explain_request(&events, id)
    } else {
        eprintln!("usage: {USAGE}");
        std::process::exit(2);
    };
    match rendered {
        Ok(text) => {
            // A closed pipe (`entitlectl explain ... | head`) just ends
            // the output.
            use std::io::Write;
            let _ = std::io::stdout().write_all(text.as_bytes());
        }
        Err(e) => {
            eprintln!("explain: {e}");
            std::process::exit(1);
        }
    }
}

/// Build an [`SloPolicy`] from the shared `slo` policy flags, printing
/// every `E06xx` validation finding and exiting 2 when the result is
/// nonsense.
fn slo_policy(args: &[String]) -> SloPolicy {
    let mut p = SloPolicy::default();
    let usize_flag = |name: &str, dflt: usize| {
        arg_value(args, name).map_or(dflt, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("{name} expects an integer, got `{s}`");
                std::process::exit(2);
            })
        })
    };
    let f64_flag = |name: &str, dflt: f64| {
        arg_value(args, name).map_or(dflt, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("{name} expects a number, got `{s}`");
                std::process::exit(2);
            })
        })
    };
    p.fast_window = usize_flag("--fast", p.fast_window);
    p.slow_window = usize_flag("--slow", p.slow_window);
    p.hysteresis = usize_flag("--hysteresis", p.hysteresis);
    p.fast_burn = f64_flag("--fast-burn", p.fast_burn);
    p.slow_burn = f64_flag("--slow-burn", p.slow_burn);
    p.clear_fraction = f64_flag("--clear-fraction", p.clear_fraction);
    p.delivery_tolerance = f64_flag("--tolerance", p.delivery_tolerance);
    p.under_utilization = f64_flag("--under-util", p.under_utilization);
    p.over_utilization = f64_flag("--over-util", p.over_utilization);
    let issues = p.validate();
    if !issues.is_empty() {
        for i in &issues {
            eprintln!("{}: {}", i.code, i.message);
        }
        std::process::exit(2);
    }
    p
}

fn slo_cmd(args: &[String]) {
    const USAGE: &str = "entitlectl slo <report|audit> <trace.jsonl> [--json] \
         [--fast N] [--slow N] [--fast-burn X] [--slow-burn X] [--clear-fraction X] \
         [--hysteresis N] [--tolerance X] [--under-util X] [--over-util X] \
         [--bench-name NAME] [--bench-dir DIR] [--write-bench] [--seed N]";
    let mode = match args.get(1).map(String::as_str) {
        Some(m @ ("report" | "audit")) => m.to_string(),
        _ => {
            eprintln!("usage: {USAGE}");
            std::process::exit(2);
        }
    };
    let policy = slo_policy(args);
    let events = load_trace(args, 2, USAGE);
    let mut evaluator = SloEvaluator::new(policy);
    evaluator.fold_trace(&events);
    let report = evaluator.report();
    if report.entities.is_empty() {
        eprintln!("trace carries no slo/interval events (re-run the drill with --trace)");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if mode == "report" {
        return;
    }

    // Audit gates: SLO violations first, then the bench regression
    // diff against the committed baseline.
    let mut failed = report.has_violations();
    if failed {
        eprintln!("audit: SLO violations present");
    }
    if let Some(name) = arg_value(args, "--bench-name") {
        let seed: u64 = arg_value(args, "--seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xD217);
        let record = BenchRecord::from_run(&name, seed, &events, &report);
        let dir = arg_value(args, "--bench-dir").unwrap_or_else(|| ".".into());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
        match std::fs::read_to_string(&path) {
            Ok(prior_text) => {
                let prior = BenchRecord::from_json(&prior_text).unwrap_or_else(|e| {
                    eprintln!("cannot parse baseline {}: {e}", path.display());
                    std::process::exit(2);
                });
                let findings = record.diff(&prior, &BenchTolerance::default());
                if findings.is_empty() {
                    println!("bench: no regression vs {}", path.display());
                } else {
                    for f in &findings {
                        eprintln!("bench regression: {f}");
                    }
                    failed = true;
                }
            }
            Err(_) => {
                eprintln!(
                    "bench: no baseline at {} (pass --write-bench to create it)",
                    path.display()
                );
            }
        }
        if args.iter().any(|a| a == "--write-bench") {
            std::fs::write(&path, record.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(2);
            });
            println!("bench record written to {}", path.display());
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// `watch`: re-fold the runtime watchdog over a recorded trace, or
/// tail a growing trace file with `--follow`.
fn watch_cmd(args: &[String]) {
    const USAGE: &str =
        "entitlectl watch <trace.jsonl> [--json] [--follow [--idle-ms N]]";
    if args.iter().any(|a| a == "--follow") {
        return watch_follow(args, USAGE);
    }
    let events = load_trace(args, 1, USAGE);
    let mut evaluator = WatchEvaluator::new(WatchPolicy::default());
    evaluator.fold_trace(&events);
    let report = evaluator.report();
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if !report.healthy() {
        std::process::exit(1);
    }
}

/// Print the report entries appended since the last poll (live tail
/// output); returns the updated (violations, transitions) watermarks.
fn watch_print_new(report: &WatchReport, seen_v: usize, seen_t: usize) -> (usize, usize) {
    for v in &report.violations[seen_v..] {
        let shard = if v.shard >= 0 {
            format!(" s{}", v.shard)
        } else {
            String::new()
        };
        println!(
            "{} cycle {} {}/{}{}: {}",
            v.code, v.cycle, v.entity, v.qos, shard, v.detail
        );
    }
    for t in &report.transitions[seen_t..] {
        println!(
            "{} {} cycle {} {}/{} stat={}",
            t.code,
            t.kind.as_str(),
            t.cycle,
            t.entity,
            t.qos,
            t.stat
        );
    }
    (report.violations.len(), report.transitions.len())
}

/// `watch --follow`: tail a trace file, folding complete lines as they
/// are appended and printing violations/transitions live. Ends (with
/// the full report) once the file stops growing for `--idle-ms`.
fn watch_follow(args: &[String], usage: &str) {
    let path = args[1..]
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, 1, a))
        .unwrap_or_else(|| {
            eprintln!("usage: {usage}");
            std::process::exit(2);
        });
    let idle_ms: u64 = arg_value(args, "--idle-ms").map_or(2000, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("--idle-ms expects milliseconds, got `{s}`");
            std::process::exit(2);
        })
    });
    let poll = std::time::Duration::from_millis(100);
    let mut evaluator = WatchEvaluator::new(WatchPolicy::default());
    let mut consumed_lines = 0usize;
    let mut consumed_bytes = 0usize;
    let (mut seen_v, mut seen_t) = (0usize, 0usize);
    let mut seen_file = false;
    let mut last_growth = std::time::Instant::now();
    loop {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => {
                seen_file = true;
                t
            }
            Err(e) => {
                // The producer may not have created the file yet; keep
                // waiting until the idle deadline.
                if last_growth.elapsed().as_millis() as u64 >= idle_ms {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(if seen_file { 1 } else { 2 });
                }
                std::thread::sleep(poll);
                continue;
            }
        };
        // Only complete (newline-terminated) lines are folded; a
        // partially written last line waits for the next poll.
        let complete = text.rfind('\n').map_or(0, |i| i + 1);
        if complete > consumed_bytes {
            for line in text[consumed_bytes..complete].lines() {
                consumed_lines += 1;
                if line.trim().is_empty() {
                    continue;
                }
                let events =
                    network_entitlement::obs::parse_trace(line).unwrap_or_else(|e| {
                        eprintln!("{path} line {consumed_lines}: invalid trace: {e}");
                        std::process::exit(1);
                    });
                evaluator.fold_trace(&events);
            }
            consumed_bytes = complete;
            let report = evaluator.report();
            (seen_v, seen_t) = watch_print_new(&report, seen_v, seen_t);
            last_growth = std::time::Instant::now();
        } else if last_growth.elapsed().as_millis() as u64 >= idle_ms {
            break;
        }
        std::thread::sleep(poll);
    }
    let report = evaluator.report();
    println!();
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if !report.healthy() {
        std::process::exit(1);
    }
}

/// `market`: serve a seeded admission storm through the entitlement
/// market — warm residual index, index-path admits, sweep fallback.
///
/// Wall-clock run first for the perf headline (admits/sec, p50/p99
/// admit µs from real elapsed time); then, only when `--trace` /
/// `--metrics` were requested, an identical storm under the counting
/// clock so the telemetry stays byte-identical per seed. Fault windows
/// are applied at logical time = request index (1 ms per admit) in both
/// runs, so the two serve the same decision sequence.
fn market_cmd(args: &[String]) {
    use network_entitlement::core::{QosBand, QosBucket};
    use network_entitlement::market::{
        generate_storm, EntitlementKind, EntitlementMarket, MarketEntitlement, SliceGrid,
        StormConfig, StormReport,
    };
    use network_entitlement::slo::IntervalObs;
    use network_entitlement::topology::LinkId;

    let requests: usize = arg_value(args, "--requests")
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let seed: u64 = arg_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x1360);
    let slice_days: u32 = arg_value(args, "--slice-days")
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let max_ask_gbps: f64 = arg_value(args, "--max-ask")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let (workers, dedup) = sweep_args(args);
    let faults = arg_value(args, "--faults").map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        FaultPlan::from_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse fault plan {path}: {e}");
            std::process::exit(2);
        })
    });

    let topo = BackboneSpec::small(seed).build();
    let dcs = topo.dc_ids();
    let grid = SliceGrid::quarterly(Quarter(0), slice_days);
    let cfg = ApprovalConfig {
        tms_per_hose: 2,
        max_cuts: 1,
        workers,
        dedup,
        ..Default::default()
    };
    // Buckets whose default SLOs are certifiable under the single-cut
    // enumeration: C1/C2 targets (0.9998 / 0.999) demand more
    // probability mass than `max_cuts: 1` scenarios carry, so their
    // headroom is zero and every admit would sweep-deny.
    let buckets: Vec<QosBucket> = [QosClass::C3, QosClass::C4]
        .into_iter()
        .flat_map(|class| {
            [QosBand::Low, QosBand::High]
                .into_iter()
                .map(move |band| QosBucket { class, band })
        })
        .collect();

    let contracts: Vec<MarketEntitlement> = match arg_value(args, "--contracts") {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse contracts {path}: {e}");
                std::process::exit(2);
            })
        }
        None => {
            // A small deterministic synthetic book: subscriptions and a
            // quota on the first DC pairs, plus one usage-based (metered
            // only, reserves nothing).
            let b = buckets[0];
            let mut book = Vec::new();
            for (i, w) in [(0usize, 20.0), (1, 15.0)] {
                book.push(MarketEntitlement {
                    npg: NpgId(100 + i as u32),
                    bucket: b,
                    src: dcs[i % dcs.len()],
                    dst: dcs[(i + 1) % dcs.len()],
                    rate: Rate::gbps(w),
                    kind: EntitlementKind::Subscription,
                });
            }
            book.push(MarketEntitlement {
                npg: NpgId(102),
                bucket: b,
                src: dcs[2 % dcs.len()],
                dst: dcs[0],
                rate: Rate::gbps(10.0),
                kind: EntitlementKind::Quota { volume_bytes: 1e15 },
            });
            book.push(MarketEntitlement {
                npg: NpgId(103),
                bucket: b,
                src: dcs[0],
                dst: dcs[2 % dcs.len()],
                rate: Rate::gbps(50.0),
                kind: EntitlementKind::UsageBased,
            });
            book
        }
    };

    let storm_cfg = StormConfig {
        requests,
        seed,
        npgs: 32,
        max_ask_gbps,
    };
    let build = |obs: &Obs| -> (EntitlementMarket, Vec<network_entitlement::market::AdmitRequest>) {
        let mut market = EntitlementMarket::new(topo.clone(), grid, cfg.clone());
        market.load_contracts(&contracts);
        market.warm(&buckets, obs);
        let storm = generate_storm(&market, &buckets, &storm_cfg);
        (market, storm)
    };

    // Wall-clock run: the perf headline.
    let (mut market, storm) = build(&Obs::disabled());
    let warm_slots = market.index().fresh_len();
    let mut report = StormReport::default();
    let mut lat_us: Vec<f64> = Vec::with_capacity(requests);
    let mut active_cuts: Vec<u32> = Vec::new();
    let started = std::time::Instant::now();
    for (i, req) in storm.iter().enumerate() {
        if let Some(plan) = &faults {
            let cuts = plan.cut_links(i as u64);
            if cuts != active_cuts {
                market.clear_faults();
                if !cuts.is_empty() {
                    let links: Vec<LinkId> = cuts.iter().map(|&l| LinkId(l)).collect();
                    market.apply_fault(&links);
                }
                active_cuts = cuts;
            }
        }
        let t = std::time::Instant::now();
        let d = market.admit(req);
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        report.tally(&d);
    }
    let wall_s = started.elapsed().as_secs_f64();
    lat_us.sort_by(f64::total_cmp);

    println!(
        "market storm: {requests} requests over {} DC pairs x {} buckets x {} slices (seed {seed})",
        dcs.len() * (dcs.len() - 1),
        buckets.len(),
        grid.slice_count(),
    );
    println!(
        "  book: {} contract(s); index warm with {warm_slots} slot(s)",
        contracts.len()
    );
    println!(
        "  {:.0} admits/sec; admit p50 {:.2} µs, p99 {:.2} µs",
        requests as f64 / wall_s,
        percentile(&lat_us, 0.50),
        percentile(&lat_us, 0.99),
    );
    println!(
        "  outcomes: {} granted / {} partial / {} denied; paths: {} index / {} sweep; {:.1} Tbps granted",
        report.granted,
        report.partial,
        report.denied,
        report.index_path,
        report.sweep_path,
        report.granted_gbps / 1000.0,
    );
    if faults.is_some() {
        println!(
            "  fault plan: link cuts applied at logical time = request index (1 ms/admit); \
index fails closed to the sweep path on every cut and heal"
        );
    }

    // Deterministic run: same storm, counting clock. Runs when
    // telemetry files were requested and/or --watch asked for the
    // watchdog fold (admit latency under the counting clock is logical
    // instrumentation density — the sweep path reads the clock more
    // than the warm index path — so detector verdicts stay
    // reproducible, unlike wall-clock microseconds).
    let tele = TelemetrySpec::from_args(args);
    let want_watch = args.iter().any(|a| a == "--watch");
    if tele.requested() || want_watch {
        use network_entitlement::watch::AdmitObs;
        let obs = if tele.requested() {
            tele.make_obs()
        } else {
            // --watch alone: deterministic clock, but nothing retains
            // the trace.
            Obs {
                trace: network_entitlement::obs::TraceSink::disabled(),
                ..Obs::new(Clock::counting(1))
            }
        };
        let (mut market, storm) = build(&obs);
        let mut evaluator = SloEvaluator::new(SloPolicy::default());
        let mut watchdog = WatchEvaluator::new(WatchPolicy::default());
        let chunk = (requests / 16).max(1);
        let mut chunk_granted_bps = 0.0;
        let mut active_cuts: Vec<u32> = Vec::new();
        for (i, req) in storm.iter().enumerate() {
            if let Some(plan) = &faults {
                let cuts = plan.cut_links(i as u64);
                if cuts != active_cuts {
                    market.clear_faults();
                    if !cuts.is_empty() {
                        let links: Vec<LinkId> = cuts.iter().map(|&l| LinkId(l)).collect();
                        market.apply_fault(&links);
                    }
                    active_cuts = cuts;
                }
            }
            let t0 = obs.clock.now_ms();
            let d = market.admit_obs(req, &obs);
            let admit_ms = obs.clock.now_ms().saturating_sub(t0) as f64;
            watchdog.observe_admit(
                &obs,
                &AdmitObs {
                    request: i as u64,
                    ask_bps: req.ask.as_bps(),
                    granted_bps: d.granted.as_bps(),
                    residual_before_bps: d.residual_before.as_bps(),
                    residual_after_bps: d.residual_after.as_bps(),
                    admit_ms,
                    path: d.path.as_str().to_string(),
                },
            );
            chunk_granted_bps += d.granted.as_bps();
            if (i + 1) % chunk == 0 || i + 1 == storm.len() {
                // The SLO tracks delivery of *admitted* volume: every
                // granted bit is delivered, so attainment gates purely
                // on regressions in what the market can grant.
                evaluator.observe(
                    &obs,
                    &IntervalObs {
                        entity: "market".to_string(),
                        qos: "mixed".to_string(),
                        target: 0.99,
                        demand_bps: chunk_granted_bps,
                        delivered_bps: chunk_granted_bps,
                        approved_bps: chunk_granted_bps,
                        measurable: true,
                    },
                );
                chunk_granted_bps = 0.0;
            }
        }
        write_telemetry(&tele, &obs);
        if want_watch {
            let report = watchdog.report();
            print!("{}", report.render_text());
            if !report.healthy() {
                std::process::exit(1);
            }
        }
    }
}

fn negotiate_cmd(args: &[String]) {
    use network_entitlement::approval::negotiate::{negotiate, Agreement, ThresholdPolicy};

    let rate = Rate::gbps(
        arg_value(args, "--rate")
            .and_then(|s| s.parse().ok())
            .expect("--rate GBPS"),
    );
    let accept: f64 = arg_value(args, "--accept")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.8);
    let seed: u64 = arg_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE17);

    let topo = BackboneSpec {
        seed,
        ..BackboneSpec::small(seed)
    }
    .build();
    let dcs = topo.dc_ids();
    let hose = HoseRequest::general(
        NpgId(1),
        QosClass::C2,
        dcs[0],
        Direction::Egress,
        rate,
        dcs[1..].iter().copied(),
    );
    let mut policy = ThresholdPolicy {
        accept_fraction: accept,
        patience: 3,
    };
    let slo = SloTarget::new(0.99).unwrap();
    let (workers, dedup) = sweep_args(args);
    let outcome = negotiate(
        &topo,
        &hose,
        slo,
        &mut policy,
        &ApprovalConfig {
            tms_per_hose: 4,
            max_cuts: 1,
            workers,
            dedup,
            ..Default::default()
        },
        8,
    );
    match outcome {
        Agreement::Accepted {
            granted, rounds, ..
        } => println!("accepted after {rounds} round(s): {granted} guaranteed"),
        Agreement::RiskAccepted {
            guaranteed, rounds, ..
        } => println!(
            "service keeps its {rate} ask after {rounds} round(s); only {guaranteed} is guaranteed — the excess rides at risk"
        ),
        Agreement::Exhausted { best_counter } => {
            println!("no agreement; best counter-proposal was {best_counter}")
        }
    }
}

fn topo_cmd(args: &[String]) {
    let seed: u64 = arg_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE17);
    let topo = BackboneSpec {
        seed,
        ..Default::default()
    }
    .build();
    let dot = topo.to_dot();
    match arg_value(args, "--dot") {
        Some(path) => {
            std::fs::write(&path, dot).expect("write dot file");
            eprintln!(
                "{} regions / {} links written to {path}; render with `dot -Tsvg {path}`",
                topo.region_count(),
                topo.link_count()
            );
        }
        None => print!("{dot}"),
    }
}

fn lint_cmd(args: &[String]) {
    use network_entitlement::analyzer::{Analyzer, LintBundle};

    let analyzer = Analyzer::default();
    if args.iter().any(|a| a == "--list-rules") {
        for info in analyzer.rule_infos() {
            let codes: Vec<&str> = info.codes.iter().map(|c| c.as_str()).collect();
            println!("{:<24} {:<24} {}", info.name, codes.join(","), info.description);
        }
        return;
    }
    // The input file is the first non-flag argument after `lint`.
    let path = args[1..]
        .iter()
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| {
            eprintln!("usage: entitlectl lint <bundle.json> [--json] [--list-rules]");
            std::process::exit(2);
        });
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let bundle = LintBundle::from_json(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    });
    let report = analyzer.run(&bundle);
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.render_json());
    } else if report.diagnostics.is_empty() {
        println!("{path}: clean");
    } else {
        print!("{}", report.render_text());
    }
    if report.has_errors() {
        std::process::exit(1);
    }
}

fn serde_json_from(json: &str) -> Vec<EntitlementContract> {
    serde_json::from_str(json).expect("valid contract snapshot")
}
