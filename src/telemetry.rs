//! CLI-side telemetry plumbing for `entitlectl` and `repro`.
//!
//! Translates the `--trace out.jsonl` / `--metrics out.prom` flags into
//! an [`Obs`] bundle and writes the collected trace/metrics out at the
//! end of a run. The clock is a [`Clock::counting`] source — logical
//! milliseconds that advance on every read — so traces carry non-zero,
//! strictly increasing timestamps while staying byte-identical across
//! runs with the same seed (no wall clock anywhere).

use entitlement_obs::{Clock, Obs};

/// Parsed `--trace` / `--metrics` destinations.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySpec {
    /// JSONL trace output path (`--trace`).
    pub trace: Option<String>,
    /// Prometheus text output path (`--metrics`).
    pub metrics: Option<String>,
}

impl TelemetrySpec {
    /// Scan a raw argument list for `--trace <path>` and
    /// `--metrics <path>`.
    #[must_use]
    pub fn from_args(args: &[String]) -> Self {
        let value = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1).cloned())
        };
        TelemetrySpec {
            trace: value("--trace"),
            metrics: value("--metrics"),
        }
    }

    /// Whether any telemetry output was requested.
    #[must_use]
    pub fn requested(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// Build the [`Obs`] bundle for this run: enabled (with a counting
    /// clock) when any output was requested, disabled otherwise.
    #[must_use]
    pub fn make_obs(&self) -> Obs {
        if self.requested() {
            Obs::new(Clock::counting(1))
        } else {
            Obs::disabled()
        }
    }

    /// Write the requested outputs. Returns one human-readable line per
    /// file written (for the CLI to print), or the first I/O error.
    pub fn write(&self, obs: &Obs) -> Result<Vec<String>, String> {
        let mut written = Vec::new();
        if let Some(path) = &self.trace {
            let jsonl = obs.trace.to_jsonl();
            let events = obs.trace.len();
            std::fs::write(path, jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
            written.push(format!("{events} trace event(s) written to {path}"));
        }
        if let Some(path) = &self.metrics {
            let text = obs.registry.render();
            std::fs::write(path, &text)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            let samples = text.lines().filter(|l| !l.starts_with('#')).count();
            written.push(format!("{samples} metric sample(s) written to {path}"));
        }
        Ok(written)
    }
}

/// A small traced approval round: one hose on the seed backbone through
/// the full `Hose_Approval` pipeline. `entitlectl drill --trace` runs
/// this before the drill so one trace file covers every instrumented
/// span family — approval phases, the risk sweep, KV operations, and
/// agent cycles — without paying for a full planning run.
pub fn traced_approval_preamble(seed: u64, obs: &Obs) {
    use entitlement_approval::{hose_approval_obs, ApprovalConfig};
    use entitlement_core::{Direction, NpgId, QosClass, Rate, SloTarget};
    use entitlement_hose::HoseRequest;
    use entitlement_topology::BackboneSpec;

    let topo = BackboneSpec::small(seed).build();
    let dcs = topo.dc_ids();
    if dcs.len() < 2 {
        return;
    }
    let hose = HoseRequest::general(
        NpgId(1),
        QosClass::C2,
        dcs[0],
        Direction::Egress,
        Rate::gbps(200.0),
        dcs[1..].iter().copied(),
    );
    let Ok(slo) = SloTarget::new(0.99) else { return };
    let _ = hose_approval_obs(
        &topo,
        &[hose],
        &[slo],
        &ApprovalConfig {
            tms_per_hose: 2,
            max_cuts: 1,
            ..Default::default()
        },
        obs,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_flags() {
        let args: Vec<String> = ["drill", "--trace", "t.jsonl", "--metrics", "m.prom"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let spec = TelemetrySpec::from_args(&args);
        assert_eq!(spec.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(spec.metrics.as_deref(), Some("m.prom"));
        assert!(spec.requested());
        assert!(spec.make_obs().enabled());
        assert!(!TelemetrySpec::default().requested());
        assert!(!TelemetrySpec::default().make_obs().enabled());
    }

    #[test]
    fn preamble_covers_approval_and_risk_spans() {
        let obs = Obs::new(Clock::counting(1));
        traced_approval_preamble(7, &obs);
        let phases: std::collections::BTreeSet<String> =
            obs.trace.events().iter().map(|e| e.phase.clone()).collect();
        for p in ["preflight", "gen_demand", "hose_approval", "pipe_approval", "sweep"] {
            assert!(phases.contains(p), "missing {p}: {phases:?}");
        }
    }

    #[test]
    fn preamble_is_deterministic() {
        let run = || {
            let obs = Obs::new(Clock::counting(1));
            traced_approval_preamble(7, &obs);
            obs.trace.to_jsonl()
        };
        assert_eq!(run(), run());
    }
}
